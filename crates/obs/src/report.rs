//! Machine-readable run reports.
//!
//! A [`RunReport`] is an ordered list of named [`Section`]s, each
//! holding counters, scalar values, integer histograms (e.g. escalation
//! rungs) and timing histograms. Reports serialise through the
//! hand-rolled [`crate::json`] writer under the schema
//! `mixsig.run-report/1`.
//!
//! Two serialisations exist:
//!
//! * [`RunReport::to_json_string`] — everything, including real
//!   wall-clock milliseconds;
//! * [`RunReport::canonical_json_string`] — wall-clock sample values
//!   zeroed (counts kept), so the bytes depend only on deterministic
//!   quantities and are identical across worker counts and machines.

use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::json::JsonValue;
use crate::postmortem::Postmortem;
use crate::recorder::Aggregate;

/// Report schema identifier, bumped on breaking layout changes.
pub const SCHEMA: &str = "mixsig.run-report/1";

/// One named group of metrics inside a [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct Section {
    /// Section name, e.g. `campaign.circuit1` or `solver`.
    pub name: String,
    /// Monotonic event counts by name.
    pub counters: BTreeMap<String, u64>,
    /// Scalar observations by name (coverage, thresholds, errors).
    pub values: BTreeMap<String, f64>,
    /// Integer histograms by name (index -> occurrence count).
    pub histograms: BTreeMap<String, Vec<u64>>,
    /// Wall-clock samples (milliseconds) by span name.
    pub timings: BTreeMap<String, Histogram>,
    /// Solver failure postmortems, in the order they were attached.
    /// Postmortems carry only deterministic quantities, so they appear
    /// verbatim in both full and canonical serialisations.
    pub postmortems: Vec<Postmortem>,
}

impl Section {
    /// An empty section named `name`.
    pub fn new(name: &str) -> Self {
        Section {
            name: name.to_owned(),
            ..Section::default()
        }
    }

    /// Sets counter `name` (adding to any existing value).
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        *self.counters.entry(name.to_owned()).or_default() += value;
        self
    }

    /// Sets scalar value `name` (last write wins).
    pub fn value(&mut self, name: &str, value: f64) -> &mut Self {
        self.values.insert(name.to_owned(), value);
        self
    }

    /// Sets integer histogram `name` (last write wins).
    pub fn histogram(&mut self, name: &str, bins: Vec<u64>) -> &mut Self {
        self.histograms.insert(name.to_owned(), bins);
        self
    }

    /// Records one wall-clock sample (milliseconds) under span `name`.
    pub fn timing_ms(&mut self, name: &str, ms: f64) -> &mut Self {
        self.timings.entry(name.to_owned()).or_default().record(ms);
        self
    }

    /// Attaches a solver failure postmortem.
    pub fn postmortem(&mut self, pm: Postmortem) -> &mut Self {
        self.postmortems.push(pm);
        self
    }

    /// Folds a recorder [`Aggregate`] into this section: counters add,
    /// span histograms merge, and scalar observations keep their mean.
    pub fn absorb_aggregate(&mut self, agg: &Aggregate) -> &mut Self {
        for (name, delta) in &agg.counters {
            self.counter(name, *delta);
        }
        for (name, hist) in &agg.values {
            if let Some(mean) = hist.mean() {
                self.value(name, mean);
            }
        }
        for (name, hist) in &agg.spans {
            self.timings.entry(name.clone()).or_default().merge(hist);
        }
        self
    }

    fn to_json(&self, canonical: bool) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("name", JsonValue::Str(self.name.clone()));
        let mut counters = JsonValue::object();
        for (name, value) in &self.counters {
            counters.push(name, JsonValue::Num(*value as f64));
        }
        obj.push("counters", counters);
        let mut values = JsonValue::object();
        for (name, value) in &self.values {
            values.push(name, JsonValue::Num(*value));
        }
        obj.push("values", values);
        let mut histograms = JsonValue::object();
        for (name, bins) in &self.histograms {
            histograms.push(
                name,
                JsonValue::Arr(bins.iter().map(|b| JsonValue::Num(*b as f64)).collect()),
            );
        }
        obj.push("histograms", histograms);
        let mut timings = JsonValue::object();
        for (name, hist) in &self.timings {
            timings.push(name, timing_json(hist, canonical));
        }
        obj.push("timings", timings);
        obj.push(
            "postmortems",
            JsonValue::Arr(self.postmortems.iter().map(Postmortem::to_json).collect()),
        );
        obj
    }
}

/// Summarises a timing histogram: sample count (deterministic) plus
/// total and percentiles in milliseconds (zeroed in canonical form).
fn timing_json(hist: &Histogram, canonical: bool) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("count", JsonValue::Num(hist.count() as f64));
    let ms = |v: Option<f64>| {
        if canonical {
            JsonValue::Num(0.0)
        } else {
            v.map_or(JsonValue::Null, JsonValue::Num)
        }
    };
    obj.push(
        "total_ms",
        if canonical {
            JsonValue::Num(0.0)
        } else {
            JsonValue::Num(hist.sum())
        },
    );
    obj.push("p50_ms", ms(hist.percentile(50.0)));
    obj.push("p90_ms", ms(hist.percentile(90.0)));
    obj.push("p99_ms", ms(hist.percentile(99.0)));
    obj.push("max_ms", ms(hist.max()));
    obj
}

/// A complete machine-readable run report.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Report sections, serialised in insertion order.
    pub sections: Vec<Section>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        RunReport::default()
    }

    /// Appends a section.
    pub fn push(&mut self, section: Section) -> &mut Self {
        self.sections.push(section);
        self
    }

    /// Finds a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Detection coverage: the weighted mean of every section's
    /// `coverage` value, weighted by its `faults` counter (1 when
    /// absent). `None` when no section reports coverage.
    pub fn coverage(&self) -> Option<f64> {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for section in &self.sections {
            if let Some(cov) = section.values.get("coverage") {
                let w = section.counters.get("faults").copied().unwrap_or(1).max(1) as f64;
                weighted += cov * w;
                weight += w;
            }
        }
        (weight > 0.0).then(|| weighted / weight)
    }

    /// Total Newton iterations across all sections.
    pub fn newton_iterations(&self) -> u64 {
        self.sections
            .iter()
            .filter_map(|s| s.counters.get("solver.newton_iterations"))
            .sum()
    }

    /// Total fault outcomes that went unjournaled because a campaign
    /// degraded its journal: the sum of every section's
    /// `journal_degraded.faults` counter. Zero on healthy runs.
    pub fn journal_degraded(&self) -> u64 {
        self.sections
            .iter()
            .filter_map(|s| s.counters.get("journal_degraded.faults"))
            .sum()
    }

    /// Element-wise sum of every section's `escalation_rungs`
    /// histogram.
    pub fn rung_histogram(&self) -> Vec<u64> {
        let mut total: Vec<u64> = Vec::new();
        for section in &self.sections {
            if let Some(bins) = section.histograms.get("escalation_rungs") {
                if total.len() < bins.len() {
                    total.resize(bins.len(), 0);
                }
                for (t, b) in total.iter_mut().zip(bins) {
                    *t += b;
                }
            }
        }
        total
    }

    /// Every postmortem in the report, paired with the name of the
    /// section carrying it, in serialisation order.
    pub fn postmortems(&self) -> impl Iterator<Item = (&str, &Postmortem)> {
        self.sections
            .iter()
            .flat_map(|s| s.postmortems.iter().map(move |pm| (s.name.as_str(), pm)))
    }

    /// All timing samples across all sections and spans, merged into
    /// one histogram (milliseconds).
    pub fn wall_histogram(&self) -> Histogram {
        let mut merged = Histogram::new();
        for section in &self.sections {
            for hist in section.timings.values() {
                merged.merge(hist);
            }
        }
        merged
    }

    fn to_json(&self, canonical: bool) -> JsonValue {
        let mut root = JsonValue::object();
        root.push("schema", JsonValue::Str(SCHEMA.to_owned()));
        // The summary block always carries the headline keys so
        // downstream checks can assert presence unconditionally.
        let mut summary = JsonValue::object();
        summary.push(
            "coverage",
            self.coverage().map_or(JsonValue::Null, JsonValue::Num),
        );
        summary.push(
            "newton_iterations",
            JsonValue::Num(self.newton_iterations() as f64),
        );
        summary.push(
            "rung_histogram",
            JsonValue::Arr(
                self.rung_histogram()
                    .iter()
                    .map(|b| JsonValue::Num(*b as f64))
                    .collect(),
            ),
        );
        summary.push("wall_ms", timing_json(&self.wall_histogram(), canonical));
        summary.push(
            "journal_degraded",
            JsonValue::Num(self.journal_degraded() as f64),
        );
        root.push("summary", summary);
        root.push(
            "sections",
            JsonValue::Arr(self.sections.iter().map(|s| s.to_json(canonical)).collect()),
        );
        root
    }

    /// Full JSON including real wall-clock milliseconds.
    pub fn to_json_string(&self) -> String {
        self.to_json(false).to_json_pretty()
    }

    /// Canonical JSON: wall-clock sample values zeroed, counts kept.
    /// Byte-identical for equivalent runs regardless of worker count.
    pub fn canonical_json_string(&self) -> String {
        self.to_json(true).to_json_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::{AggregatingRecorder, Recorder};
    use std::time::Duration;

    fn sample_section(name: &str, coverage: f64, faults: u64, ms: f64) -> Section {
        let mut s = Section::new(name);
        s.value("coverage", coverage)
            .counter("faults", faults)
            .counter("solver.newton_iterations", faults * 100)
            .histogram("escalation_rungs", vec![faults, 1])
            .timing_ms("campaign.fault", ms);
        s
    }

    #[test]
    fn summary_aggregates_across_sections() {
        let mut report = RunReport::new();
        report.push(sample_section("c1", 90.0, 3, 1.5));
        report.push(sample_section("c2", 50.0, 1, 2.5));
        // Weighted mean: (90*3 + 50*1) / 4 = 80.
        assert_eq!(report.coverage(), Some(80.0));
        assert_eq!(report.newton_iterations(), 400);
        assert_eq!(report.rung_histogram(), vec![4, 2]);
        assert_eq!(report.wall_histogram().count(), 2);
    }

    #[test]
    fn empty_report_still_exposes_summary_keys() {
        let report = RunReport::new();
        let parsed = json::parse(&report.to_json_string()).unwrap();
        let summary = parsed.get("summary").expect("summary present");
        assert_eq!(summary.get("coverage"), Some(&JsonValue::Null));
        assert_eq!(
            summary.get("newton_iterations").and_then(JsonValue::as_f64),
            Some(0.0)
        );
        assert!(summary.get("rung_histogram").is_some());
        assert!(summary.get("wall_ms").is_some());
        assert_eq!(
            summary.get("journal_degraded").and_then(JsonValue::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn journal_degradation_counters_sum_into_the_summary() {
        let mut report = RunReport::new();
        let mut healthy = sample_section("c1", 90.0, 3, 1.5);
        healthy.counter("journal_degraded.faults", 0);
        report.push(healthy);
        let mut degraded = sample_section("c2", 50.0, 1, 2.5);
        degraded.counter("journal_degraded.faults", 5);
        report.push(degraded);
        assert_eq!(report.journal_degraded(), 5);
        let parsed = json::parse(&report.canonical_json_string()).unwrap();
        assert_eq!(
            parsed
                .get("summary")
                .and_then(|s| s.get("journal_degraded"))
                .and_then(JsonValue::as_f64),
            Some(5.0)
        );
    }

    #[test]
    fn report_json_parses_and_carries_schema() {
        let mut report = RunReport::new();
        report.push(sample_section("c1", 93.75, 16, 12.0));
        let parsed = json::parse(&report.to_json_string()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some(SCHEMA)
        );
        let sections = parsed.get("sections").and_then(JsonValue::as_array).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(
            sections[0].get("name").and_then(JsonValue::as_str),
            Some("c1")
        );
        let summary = parsed.get("summary").unwrap();
        assert_eq!(
            summary.get("coverage").and_then(JsonValue::as_f64),
            Some(93.75)
        );
    }

    #[test]
    fn canonical_form_zeroes_milliseconds_but_keeps_counts() {
        let mut fast = RunReport::new();
        fast.push(sample_section("c1", 90.0, 2, 1.0));
        let mut slow = RunReport::new();
        slow.push(sample_section("c1", 90.0, 2, 250.0));
        // Real timings differ...
        assert_ne!(fast.to_json_string(), slow.to_json_string());
        // ...canonical bytes do not.
        assert_eq!(fast.canonical_json_string(), slow.canonical_json_string());
        let parsed = json::parse(&fast.canonical_json_string()).unwrap();
        let wall = parsed.get("summary").and_then(|s| s.get("wall_ms")).unwrap();
        assert_eq!(wall.get("count").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(wall.get("p50_ms").and_then(JsonValue::as_f64), Some(0.0));
    }

    #[test]
    fn postmortems_serialise_identically_in_both_forms() {
        use crate::postmortem::{LadderStep, Postmortem};
        let mut section = sample_section("c1", 50.0, 1, 3.0);
        section.postmortem(Postmortem {
            label: "f17".into(),
            error: "no convergence".into(),
            time: 3.2e-6,
            residual: 0.4,
            total_iterations: 24,
            ladder: vec![LadderStep {
                rung: 0,
                label: "nominal".into(),
                outcome: "no-convergence".into(),
            }],
            ..Postmortem::default()
        });
        let mut report = RunReport::new();
        report.push(section);

        let full = json::parse(&report.to_json_string()).unwrap();
        let canon = json::parse(&report.canonical_json_string()).unwrap();
        for parsed in [&full, &canon] {
            let pms = parsed.get("sections").and_then(JsonValue::as_array).unwrap()[0]
                .get("postmortems")
                .and_then(JsonValue::as_array)
                .expect("postmortems array present");
            assert_eq!(pms.len(), 1);
            assert_eq!(pms[0].get("label").and_then(JsonValue::as_str), Some("f17"));
        }
        // The postmortem bytes themselves are identical in both forms.
        let extract = |s: &str| {
            let v = json::parse(s).unwrap();
            v.get("sections").and_then(JsonValue::as_array).unwrap()[0]
                .get("postmortems")
                .unwrap()
                .to_json()
        };
        assert_eq!(
            extract(&report.to_json_string()),
            extract(&report.canonical_json_string())
        );
        // And the iterator walks them with section attribution.
        let found: Vec<(&str, &Postmortem)> = report.postmortems().collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, "c1");
        assert_eq!(found[0].1.label, "f17");
    }

    #[test]
    fn absorb_aggregate_folds_recorder_state() {
        let rec = AggregatingRecorder::new();
        rec.add("solver.newton_iterations", 40);
        rec.add("solver.newton_iterations", 2);
        rec.value("coverage", 75.0);
        rec.value("coverage", 85.0);
        rec.span("anasim.dc", Duration::from_millis(3));
        let mut section = Section::new("solver");
        section.absorb_aggregate(&rec.snapshot());
        assert_eq!(section.counters["solver.newton_iterations"], 42);
        assert_eq!(section.values["coverage"], 80.0);
        assert_eq!(section.timings["anasim.dc"].count(), 1);
    }

    #[test]
    fn serial_and_sharded_aggregation_give_identical_canonical_bytes() {
        // Simulates the campaign pattern: per-item aggregates produced
        // on worker threads, merged in input order.
        let work: Vec<u64> = (0..12).collect();

        let serial = {
            let mut section = Section::new("campaign");
            for &i in &work {
                let rec = AggregatingRecorder::new();
                rec.add("solver.newton_iterations", 10 + i);
                rec.span("campaign.fault", Duration::from_micros(100 * (i + 1)));
                section.absorb_aggregate(&rec.snapshot());
            }
            let mut report = RunReport::new();
            report.push(section);
            report.canonical_json_string()
        };

        let sharded = {
            let shards: Vec<Aggregate> = {
                let mut out: Vec<Option<Aggregate>> = (0..work.len()).map(|_| None).collect();
                std::thread::scope(|scope| {
                    for (slot, &i) in out.iter_mut().zip(&work) {
                        scope.spawn(move || {
                            let rec = AggregatingRecorder::new();
                            rec.add("solver.newton_iterations", 10 + i);
                            rec.span(
                                "campaign.fault",
                                Duration::from_micros(100 * (i + 1)),
                            );
                            *slot = Some(rec.snapshot());
                        });
                    }
                });
                out.into_iter().map(|s| s.expect("worker ran")).collect()
            };
            let mut section = Section::new("campaign");
            for shard in &shards {
                section.absorb_aggregate(shard);
            }
            let mut report = RunReport::new();
            report.push(section);
            report.canonical_json_string()
        };

        assert_eq!(serial, sharded);
    }
}
