//! RAII wall-clock spans.
//!
//! A span is a named duration reported to a [`Recorder`] when it ends.
//! Naming convention across the workspace: `<crate>.<operation>`, e.g.
//! `anasim.dc`, `anasim.transient`, `campaign.fault`,
//! `sigproc.cross_correlation`, `bench.e6`. Dots separate layers;
//! names are lowercase and stable — they are keys in run reports.

use std::time::{Duration, Instant};

use crate::recorder::Recorder;

/// Times a region and reports it to a recorder on drop.
///
/// Dropping reports even on early returns and `?` propagation, which
/// is what makes span coverage trustworthy around fallible solver
/// code.
pub struct SpanTimer<'a> {
    recorder: &'a dyn Recorder,
    name: &'a str,
    started: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Starts a span named `name`.
    pub fn start(recorder: &'a dyn Recorder, name: &'a str) -> Self {
        SpanTimer {
            recorder,
            name,
            started: Instant::now(),
        }
    }

    /// Time elapsed since the span started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.recorder.span(self.name, self.started.elapsed());
    }
}

/// Runs `f` inside a span named `name` and returns its result.
pub fn time<T>(recorder: &dyn Recorder, name: &str, f: impl FnOnce() -> T) -> T {
    let _span = SpanTimer::start(recorder, name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::AggregatingRecorder;

    #[test]
    fn span_reports_on_drop() {
        let rec = AggregatingRecorder::new();
        {
            let _span = SpanTimer::start(&rec, "unit.work");
        }
        let agg = rec.snapshot();
        assert_eq!(agg.spans["unit.work"].count(), 1);
        assert!(agg.spans["unit.work"].min().unwrap() >= 0.0);
    }

    #[test]
    fn span_reports_on_early_return() {
        fn fallible(rec: &dyn Recorder) -> Result<(), ()> {
            let _span = SpanTimer::start(rec, "unit.fallible");
            Err(())
        }
        let rec = AggregatingRecorder::new();
        assert!(fallible(&rec).is_err());
        assert_eq!(rec.snapshot().spans["unit.fallible"].count(), 1);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let rec = AggregatingRecorder::new();
        let out = time(&rec, "unit.calc", || 6 * 7);
        assert_eq!(out, 42);
        assert_eq!(rec.snapshot().spans["unit.calc"].count(), 1);
    }
}
