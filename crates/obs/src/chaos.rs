//! Deterministic I/O fault injection for journal storage.
//!
//! [`FaultySink`] wraps any [`JournalSink`] and fails operations
//! according to a [`FaultPlan`] — a reproducible schedule built from
//! scripted windows ("fail writes 4..7"), one-off short writes
//! ("truncate write 3 to 5 bytes"), and/or a seeded pseudo-random
//! component. The plan is a pure function of (seed, operation index),
//! so the same plan against the same operation sequence injects the
//! same faults on every run — chaos tests replay bit-for-bit, and a CI
//! failure under seed `S` reproduces locally with seed `S`.
//!
//! Plans also parse from a compact spec string (the `--chaos` CLI
//! flag): comma-separated clauses
//!
//! ```text
//! write@4        fail the 5th write (0-based index 4)
//! write@4..7     fail writes 4,5,6
//! sync@2..       fail every sync from index 2 on (persistent)
//! reopen@0       fail the first reopen
//! trunc@3:5      write 3 lands only its first 5 bytes, then errors
//! seed@9:20      each op fails with p=20% under splitmix64(seed 9)
//! ```
//!
//! Injected failures use [`io::ErrorKind::StorageFull`] for writes (the
//! ENOSPC shape long campaigns actually hit) and generic errors for
//! syncs/reopens, all tagged "injected" so logs distinguish chaos from
//! real faults.

use std::fmt;
use std::io;

use crate::journal::JournalSink;

/// Which sink operation a schedule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Write,
    Sync,
    Reopen,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Write => "write",
            Op::Sync => "sync",
            Op::Reopen => "reopen",
        }
    }
}

/// A failure schedule for one operation type: scripted index windows
/// plus an optional seeded probability.
///
/// An operation at index `i` (0-based, counted per operation type)
/// fails when `i` falls inside any window, or when the seeded coin —
/// a pure hash of `(seed, op, i)` — comes up under the configured
/// probability.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpSchedule {
    /// Half-open index windows `[start, end)`; `None` end = forever
    /// (a persistent fault).
    pub windows: Vec<(u64, Option<u64>)>,
    /// Seeded random failure: `(seed, probability in [0,1])`.
    pub random: Option<(u64, f64)>,
}

impl OpSchedule {
    /// True when this schedule injects nothing, ever.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.random.is_none()
    }

    /// Does the operation at `index` fail under this schedule?
    fn fails(&self, op: Op, index: u64) -> bool {
        for &(start, end) in &self.windows {
            let inside = index >= start && end.is_none_or(|e| index < e);
            if inside {
                return true;
            }
        }
        if let Some((seed, p)) = self.random {
            // splitmix64 of (seed, op, index) → uniform in [0,1).
            let salt = match op {
                Op::Write => 0x57,
                Op::Sync => 0x53,
                Op::Reopen => 0x52,
            };
            let h = mix(seed ^ mix(salt) ^ mix(index));
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            return unit < p;
        }
        false
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixing
/// function. Stateless, so fault decisions depend only on the inputs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A complete, reproducible fault-injection schedule for one sink.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Failure schedule for `write` operations.
    pub write: OpSchedule,
    /// Failure schedule for `sync` operations.
    pub sync: OpSchedule,
    /// Failure schedule for `reopen` operations.
    pub reopen: OpSchedule,
    /// Short writes: `(write index, bytes that land)` — the write
    /// persists only a prefix, then errors. Takes precedence over the
    /// `write` schedule at the same index.
    pub short_writes: Vec<(u64, usize)>,
}

impl FaultPlan {
    /// A plan that injects nothing — wrapping with it is a no-op.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing, ever.
    pub fn is_empty(&self) -> bool {
        self.write.is_empty()
            && self.sync.is_empty()
            && self.reopen.is_empty()
            && self.short_writes.is_empty()
    }

    /// A purely random plan: every write fails with probability
    /// `p_write` and every sync with `p_sync`, decided by `seed`.
    pub fn seeded(seed: u64, p_write: f64, p_sync: f64) -> Self {
        FaultPlan {
            write: OpSchedule {
                windows: Vec::new(),
                random: (p_write > 0.0).then_some((seed, p_write)),
            },
            sync: OpSchedule {
                windows: Vec::new(),
                random: (p_sync > 0.0).then_some((seed, p_sync)),
            },
            ..FaultPlan::default()
        }
    }

    /// Parses the compact spec grammar used by the `--chaos` CLI flag
    /// (see the module docs for the clause forms).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, body) = clause
                .split_once('@')
                .ok_or_else(|| format!("chaos clause `{clause}`: expected `kind@spec`"))?;
            match kind {
                "write" => plan.write.windows.push(parse_window(clause, body)?),
                "sync" => plan.sync.windows.push(parse_window(clause, body)?),
                "reopen" => plan.reopen.windows.push(parse_window(clause, body)?),
                "trunc" => {
                    let (idx, len) = body.split_once(':').ok_or_else(|| {
                        format!("chaos clause `{clause}`: expected `trunc@INDEX:BYTES`")
                    })?;
                    plan.short_writes.push((
                        parse_num(clause, idx)?,
                        parse_num(clause, len)? as usize,
                    ));
                }
                "seed" => {
                    let (seed, pct) = body.split_once(':').ok_or_else(|| {
                        format!("chaos clause `{clause}`: expected `seed@SEED:PERCENT`")
                    })?;
                    let seed = parse_num(clause, seed)?;
                    let pct = parse_num(clause, pct)?;
                    if pct > 100 {
                        return Err(format!("chaos clause `{clause}`: percent > 100"));
                    }
                    let p = pct as f64 / 100.0;
                    plan.write.random = Some((seed, p));
                    plan.sync.random = Some((seed, p));
                }
                other => {
                    return Err(format!(
                        "chaos clause `{clause}`: unknown kind `{other}` \
                         (expected write/sync/reopen/trunc/seed)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// Parses `N`, `N..M` (half-open) or `N..` (persistent) into a window.
fn parse_window(clause: &str, body: &str) -> Result<(u64, Option<u64>), String> {
    if let Some((start, end)) = body.split_once("..") {
        let start = parse_num(clause, start)?;
        if end.is_empty() {
            Ok((start, None))
        } else {
            let end = parse_num(clause, end)?;
            if end <= start {
                return Err(format!("chaos clause `{clause}`: empty window"));
            }
            Ok((start, Some(end)))
        }
    } else {
        let n = parse_num(clause, body)?;
        Ok((n, Some(n + 1)))
    }
}

fn parse_num(clause: &str, text: &str) -> Result<u64, String> {
    text.trim()
        .parse::<u64>()
        .map_err(|_| format!("chaos clause `{clause}`: `{text}` is not a number"))
}

/// A [`JournalSink`] wrapper that injects the faults a [`FaultPlan`]
/// schedules, forwarding everything else to the inner sink.
///
/// Operation indices count per operation type across the sink's
/// lifetime, so a plan is deterministic for a given operation sequence
/// regardless of timing.
pub struct FaultySink<S: JournalSink + ?Sized> {
    plan: FaultPlan,
    writes: u64,
    syncs: u64,
    reopens: u64,
    injected: u64,
    inner: Box<S>,
}

impl<S: JournalSink + ?Sized> fmt::Debug for FaultySink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultySink")
            .field("plan", &self.plan)
            .field("writes", &self.writes)
            .field("syncs", &self.syncs)
            .field("reopens", &self.reopens)
            .field("injected", &self.injected)
            .field("inner", &&self.inner)
            .finish()
    }
}

impl<S: JournalSink + ?Sized> FaultySink<S> {
    /// Wraps `inner` so it fails per `plan`.
    pub fn new(inner: Box<S>, plan: FaultPlan) -> Self {
        FaultySink {
            plan,
            writes: 0,
            syncs: 0,
            reopens: 0,
            injected: 0,
            inner,
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Operations seen so far, as `(writes, syncs, reopens)`.
    pub fn ops(&self) -> (u64, u64, u64) {
        (self.writes, self.syncs, self.reopens)
    }

    fn inject(&mut self, op: Op, index: u64) -> io::Error {
        self.injected += 1;
        let kind = match op {
            Op::Write => io::ErrorKind::StorageFull,
            Op::Sync | Op::Reopen => io::ErrorKind::Other,
        };
        io::Error::new(kind, format!("injected {} fault at op {index}", op.name()))
    }
}

impl<S: JournalSink + ?Sized> JournalSink for FaultySink<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        let index = self.writes;
        self.writes += 1;
        if let Some(&(_, keep)) = self
            .plan
            .short_writes
            .iter()
            .find(|&&(i, _)| i == index)
        {
            // A short write: a prefix lands in the inner sink, then
            // the operation reports failure — the torn-append shape.
            let keep = keep.min(buf.len());
            self.inner.write(&buf[..keep])?;
            return Err(self.inject(Op::Write, index));
        }
        if self.plan.write.fails(Op::Write, index) {
            return Err(self.inject(Op::Write, index));
        }
        self.inner.write(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        let index = self.syncs;
        self.syncs += 1;
        if self.plan.sync.fails(Op::Sync, index) {
            return Err(self.inject(Op::Sync, index));
        }
        self.inner.sync()
    }

    fn reopen(&mut self, truncate_to: u64) -> io::Result<()> {
        let index = self.reopens;
        self.reopens += 1;
        if self.plan.reopen.fails(Op::Reopen, index) {
            return Err(self.inject(Op::Reopen, index));
        }
        self.inner.reopen(truncate_to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_index_and_windows() {
        let plan = FaultPlan::parse("write@4,sync@2..5,reopen@1..").unwrap();
        assert_eq!(plan.write.windows, vec![(4, Some(5))]);
        assert_eq!(plan.sync.windows, vec![(2, Some(5))]);
        assert_eq!(plan.reopen.windows, vec![(1, None)]);
        assert!(plan.write.fails(Op::Write, 4));
        assert!(!plan.write.fails(Op::Write, 5));
        assert!(plan.sync.fails(Op::Sync, 4));
        assert!(!plan.sync.fails(Op::Sync, 5));
        assert!(plan.reopen.fails(Op::Reopen, 1_000_000));
    }

    #[test]
    fn parse_trunc_and_seed() {
        let plan = FaultPlan::parse("trunc@3:5,seed@9:25").unwrap();
        assert_eq!(plan.short_writes, vec![(3, 5)]);
        assert_eq!(plan.write.random, Some((9, 0.25)));
        assert_eq!(plan.sync.random, Some((9, 0.25)));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in ["write", "write@x", "write@5..3", "boom@1", "seed@1:200"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("chaos clause"), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_decisions_are_reproducible_and_roughly_calibrated() {
        let plan = FaultPlan::seeded(42, 0.3, 0.0);
        let again = FaultPlan::seeded(42, 0.3, 0.0);
        let mut hits = 0;
        for i in 0..1000 {
            let a = plan.write.fails(Op::Write, i);
            let b = again.write.fails(Op::Write, i);
            assert_eq!(a, b, "decision {i} not reproducible");
            if a {
                hits += 1;
            }
        }
        // 30% of 1000 with generous slack — this is a calibration
        // sanity check, not a statistics test.
        assert!((150..=450).contains(&hits), "hits = {hits}");
        // A different seed gives a different schedule.
        let other = FaultPlan::seeded(43, 0.3, 0.0);
        let same = (0..1000).all(|i| other.write.fails(Op::Write, i) == plan.write.fails(Op::Write, i));
        assert!(!same);
    }

    /// Minimal in-memory sink used to observe what FaultySink forwards.
    #[derive(Debug, Default)]
    struct MemSink {
        buf: Vec<u8>,
    }

    impl JournalSink for MemSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<()> {
            self.buf.extend_from_slice(buf);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            Ok(())
        }

        fn reopen(&mut self, truncate_to: u64) -> io::Result<()> {
            self.buf.truncate(truncate_to as usize);
            Ok(())
        }
    }

    #[test]
    fn short_write_lands_a_prefix_then_errors() {
        let plan = FaultPlan::parse("trunc@1:4").unwrap();
        let mut sink = FaultySink::new(Box::new(MemSink::default()), plan);
        sink.write(b"aaaa\n").unwrap();
        let err = sink.write(b"bbbbbbbb\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(sink.inner.buf, b"aaaa\nbbbb");
        assert_eq!(sink.injected(), 1);
    }

    #[test]
    fn scripted_write_fault_leaves_inner_untouched() {
        let plan = FaultPlan::parse("write@0").unwrap();
        let mut sink = FaultySink::new(Box::new(MemSink::default()), plan);
        let err = sink.write(b"x\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(sink.inner.buf.is_empty());
        sink.write(b"y\n").unwrap();
        assert_eq!(sink.inner.buf, b"y\n");
        assert_eq!(sink.ops(), (2, 0, 0));
    }
}
