//! Deterministic I/O fault injection for journal storage.
//!
//! [`FaultySink`] wraps any [`JournalSink`] and fails operations
//! according to a [`FaultPlan`] — a reproducible schedule built from
//! scripted windows ("fail writes 4..7"), one-off short writes
//! ("truncate write 3 to 5 bytes"), and/or a seeded pseudo-random
//! component. The plan is a pure function of (seed, operation index),
//! so the same plan against the same operation sequence injects the
//! same faults on every run — chaos tests replay bit-for-bit, and a CI
//! failure under seed `S` reproduces locally with seed `S`.
//!
//! Plans also parse from a compact spec string (the `--chaos` CLI
//! flag): comma-separated clauses
//!
//! ```text
//! write@4        fail the 5th write (0-based index 4)
//! write@4..7     fail writes 4,5,6
//! sync@2..       fail every sync from index 2 on (persistent)
//! reopen@0       fail the first reopen
//! trunc@3:5      write 3 lands only its first 5 bytes, then errors
//! seed@9:20      each op fails with p=20% under splitmix64(seed 9)
//! ```
//!
//! Injected failures use [`io::ErrorKind::StorageFull`] for writes (the
//! ENOSPC shape long campaigns actually hit) and generic errors for
//! syncs/reopens, all tagged "injected" so logs distinguish chaos from
//! real faults.

use std::fmt;
use std::io;

use crate::journal::JournalSink;

/// Which sink operation a schedule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Write,
    Sync,
    Reopen,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Write => "write",
            Op::Sync => "sync",
            Op::Reopen => "reopen",
        }
    }
}

/// A failure schedule for one operation type: scripted index windows
/// plus an optional seeded probability.
///
/// An operation at index `i` (0-based, counted per operation type)
/// fails when `i` falls inside any window, or when the seeded coin —
/// a pure hash of `(seed, op, i)` — comes up under the configured
/// probability.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpSchedule {
    /// Half-open index windows `[start, end)`; `None` end = forever
    /// (a persistent fault).
    pub windows: Vec<(u64, Option<u64>)>,
    /// Seeded random failure: `(seed, probability in [0,1])`.
    pub random: Option<(u64, f64)>,
}

impl OpSchedule {
    /// True when this schedule injects nothing, ever.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.random.is_none()
    }

    /// Does the operation at `index` fail under this schedule?
    fn fails(&self, op: Op, index: u64) -> bool {
        let salt = match op {
            Op::Write => 0x57,
            Op::Sync => 0x53,
            Op::Reopen => 0x52,
        };
        self.fails_salted(salt, index)
    }

    /// Salt-parameterised form of [`OpSchedule::fails`]; the salt keys
    /// the seeded coin per operation/site kind so schedules sharing a
    /// seed stay decorrelated.
    fn fails_salted(&self, salt: u64, index: u64) -> bool {
        for &(start, end) in &self.windows {
            let inside = index >= start && end.is_none_or(|e| index < e);
            if inside {
                return true;
            }
        }
        if let Some((seed, p)) = self.random {
            // splitmix64 of (seed, salt, index) → uniform in [0,1).
            let h = mix(seed ^ mix(salt) ^ mix(index));
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            return unit < p;
        }
        false
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixing
/// function. Stateless, so fault decisions depend only on the inputs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A complete, reproducible fault-injection schedule for one sink.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Failure schedule for `write` operations.
    pub write: OpSchedule,
    /// Failure schedule for `sync` operations.
    pub sync: OpSchedule,
    /// Failure schedule for `reopen` operations.
    pub reopen: OpSchedule,
    /// Short writes: `(write index, bytes that land)` — the write
    /// persists only a prefix, then errors. Takes precedence over the
    /// `write` schedule at the same index.
    pub short_writes: Vec<(u64, usize)>,
}

impl FaultPlan {
    /// A plan that injects nothing — wrapping with it is a no-op.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing, ever.
    pub fn is_empty(&self) -> bool {
        self.write.is_empty()
            && self.sync.is_empty()
            && self.reopen.is_empty()
            && self.short_writes.is_empty()
    }

    /// A purely random plan: every write fails with probability
    /// `p_write` and every sync with `p_sync`, decided by `seed`.
    pub fn seeded(seed: u64, p_write: f64, p_sync: f64) -> Self {
        FaultPlan {
            write: OpSchedule {
                windows: Vec::new(),
                random: (p_write > 0.0).then_some((seed, p_write)),
            },
            sync: OpSchedule {
                windows: Vec::new(),
                random: (p_sync > 0.0).then_some((seed, p_sync)),
            },
            ..FaultPlan::default()
        }
    }

    /// Parses the compact spec grammar used by the `--chaos` CLI flag
    /// (see the module docs for the clause forms).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, body) = clause
                .split_once('@')
                .ok_or_else(|| format!("chaos clause `{clause}`: expected `kind@spec`"))?;
            match kind {
                "write" => plan.write.windows.push(parse_window(clause, body)?),
                "sync" => plan.sync.windows.push(parse_window(clause, body)?),
                "reopen" => plan.reopen.windows.push(parse_window(clause, body)?),
                "trunc" => {
                    let (idx, len) = body.split_once(':').ok_or_else(|| {
                        format!("chaos clause `{clause}`: expected `trunc@INDEX:BYTES`")
                    })?;
                    plan.short_writes.push((
                        parse_num(clause, idx)?,
                        parse_num(clause, len)? as usize,
                    ));
                }
                "seed" => {
                    let (seed, pct) = body.split_once(':').ok_or_else(|| {
                        format!("chaos clause `{clause}`: expected `seed@SEED:PERCENT`")
                    })?;
                    let seed = parse_num(clause, seed)?;
                    let pct = parse_num(clause, pct)?;
                    if pct > 100 {
                        return Err(format!("chaos clause `{clause}`: percent > 100"));
                    }
                    let p = pct as f64 / 100.0;
                    plan.write.random = Some((seed, p));
                    plan.sync.random = Some((seed, p));
                }
                other => {
                    return Err(format!(
                        "chaos clause `{clause}`: unknown kind `{other}` \
                         (expected write/sync/reopen/trunc/seed)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// Parses `N`, `N..M` (half-open) or `N..` (persistent) into a window.
fn parse_window(clause: &str, body: &str) -> Result<(u64, Option<u64>), String> {
    if let Some((start, end)) = body.split_once("..") {
        let start = parse_num(clause, start)?;
        if end.is_empty() {
            Ok((start, None))
        } else {
            let end = parse_num(clause, end)?;
            if end <= start {
                return Err(format!("chaos clause `{clause}`: empty window"));
            }
            Ok((start, Some(end)))
        }
    } else {
        let n = parse_num(clause, body)?;
        Ok((n, Some(n + 1)))
    }
}

fn parse_num(clause: &str, text: &str) -> Result<u64, String> {
    text.trim()
        .parse::<u64>()
        .map_err(|_| format!("chaos clause `{clause}`: `{text}` is not a number"))
}

/// A [`JournalSink`] wrapper that injects the faults a [`FaultPlan`]
/// schedules, forwarding everything else to the inner sink.
///
/// Operation indices count per operation type across the sink's
/// lifetime, so a plan is deterministic for a given operation sequence
/// regardless of timing.
pub struct FaultySink<S: JournalSink + ?Sized> {
    plan: FaultPlan,
    writes: u64,
    syncs: u64,
    reopens: u64,
    injected: u64,
    inner: Box<S>,
}

impl<S: JournalSink + ?Sized> fmt::Debug for FaultySink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultySink")
            .field("plan", &self.plan)
            .field("writes", &self.writes)
            .field("syncs", &self.syncs)
            .field("reopens", &self.reopens)
            .field("injected", &self.injected)
            .field("inner", &&self.inner)
            .finish()
    }
}

impl<S: JournalSink + ?Sized> FaultySink<S> {
    /// Wraps `inner` so it fails per `plan`.
    pub fn new(inner: Box<S>, plan: FaultPlan) -> Self {
        FaultySink {
            plan,
            writes: 0,
            syncs: 0,
            reopens: 0,
            injected: 0,
            inner,
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Operations seen so far, as `(writes, syncs, reopens)`.
    pub fn ops(&self) -> (u64, u64, u64) {
        (self.writes, self.syncs, self.reopens)
    }

    fn inject(&mut self, op: Op, index: u64) -> io::Error {
        self.injected += 1;
        let kind = match op {
            Op::Write => io::ErrorKind::StorageFull,
            Op::Sync | Op::Reopen => io::ErrorKind::Other,
        };
        io::Error::new(kind, format!("injected {} fault at op {index}", op.name()))
    }
}

impl<S: JournalSink + ?Sized> JournalSink for FaultySink<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        let index = self.writes;
        self.writes += 1;
        if let Some(&(_, keep)) = self
            .plan
            .short_writes
            .iter()
            .find(|&&(i, _)| i == index)
        {
            // A short write: a prefix lands in the inner sink, then
            // the operation reports failure — the torn-append shape.
            let keep = keep.min(buf.len());
            self.inner.write(&buf[..keep])?;
            return Err(self.inject(Op::Write, index));
        }
        if self.plan.write.fails(Op::Write, index) {
            return Err(self.inject(Op::Write, index));
        }
        self.inner.write(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        let index = self.syncs;
        self.syncs += 1;
        if self.plan.sync.fails(Op::Sync, index) {
            return Err(self.inject(Op::Sync, index));
        }
        self.inner.sync()
    }

    fn reopen(&mut self, truncate_to: u64) -> io::Result<()> {
        let index = self.reopens;
        self.reopens += 1;
        if self.plan.reopen.fails(Op::Reopen, index) {
            return Err(self.inject(Op::Reopen, index));
        }
        self.inner.reopen(truncate_to)
    }
}

/// A numeric-chaos injection site inside the nonlinear solver.
///
/// Where [`FaultPlan`] attacks the storage layer, a
/// [`NumericChaosPlan`] attacks the *arithmetic*: each site corrupts
/// one specific quantity the solver's hazard detectors are supposed to
/// catch, so a seeded sweep can prove every detector fires and every
/// recovery tier engages — deterministically, with a typed outcome,
/// never a panic or a NaN-poisoned report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericSite {
    /// Report the factorisation attempt as a singular-pivot breakdown.
    Pivot,
    /// Scale the first pivot of a fresh factorisation, corrupting its
    /// solves (caught by the residual gate / refinement stall).
    Perturb,
    /// Overwrite one solution entry with NaN (caught by the non-finite
    /// scrub).
    Nan,
    /// Degrade the Sherman–Morrison rank-1 denominator (caught as a
    /// rank-1 breakdown).
    Denom,
}

impl NumericSite {
    /// Every site, in parse-grammar order.
    pub const ALL: [NumericSite; 4] = [
        NumericSite::Pivot,
        NumericSite::Perturb,
        NumericSite::Nan,
        NumericSite::Denom,
    ];

    /// Clause keyword and display label.
    pub fn name(self) -> &'static str {
        match self {
            NumericSite::Pivot => "pivot",
            NumericSite::Perturb => "perturb",
            NumericSite::Nan => "nan",
            NumericSite::Denom => "denom",
        }
    }

    fn salt(self) -> u64 {
        match self {
            NumericSite::Pivot => 0x70,
            NumericSite::Perturb => 0x65,
            NumericSite::Nan => 0x6e,
            NumericSite::Denom => 0x64,
        }
    }

    fn index(self) -> usize {
        match self {
            NumericSite::Pivot => 0,
            NumericSite::Perturb => 1,
            NumericSite::Nan => 2,
            NumericSite::Denom => 3,
        }
    }
}

/// A reproducible numerical fault-injection schedule for one analysis.
///
/// Spec grammar mirrors [`FaultPlan::parse`] (the `--numeric-chaos`
/// CLI flag): comma-separated clauses
///
/// ```text
/// pivot@0        the 1st factorisation attempt reports a breakdown
/// perturb@2..4   factorisations 2,3 come out corrupted
/// nan@1..        every solve from index 1 on gets a NaN entry
/// denom@0        the 1st rank-1 application sees a degraded denominator
/// seed@9:20      each site attempt fires with p=20% under seed 9
/// ```
///
/// Indices count *attempts per site* within one
/// [`NumericChaosState`]; a retry after a fired injection lands on the
/// next index, so single-index clauses are naturally one-shot and a
/// demotion ladder can be proven to recover.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NumericChaosPlan {
    /// Schedule for [`NumericSite::Pivot`].
    pub pivot: OpSchedule,
    /// Schedule for [`NumericSite::Perturb`].
    pub perturb: OpSchedule,
    /// Schedule for [`NumericSite::Nan`].
    pub nan: OpSchedule,
    /// Schedule for [`NumericSite::Denom`].
    pub denom: OpSchedule,
}

impl NumericChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        NumericChaosPlan::default()
    }

    /// True when the plan injects nothing, ever.
    pub fn is_empty(&self) -> bool {
        self.pivot.is_empty()
            && self.perturb.is_empty()
            && self.nan.is_empty()
            && self.denom.is_empty()
    }

    fn schedule(&self, site: NumericSite) -> &OpSchedule {
        match site {
            NumericSite::Pivot => &self.pivot,
            NumericSite::Perturb => &self.perturb,
            NumericSite::Nan => &self.nan,
            NumericSite::Denom => &self.denom,
        }
    }

    fn schedule_mut(&mut self, site: NumericSite) -> &mut OpSchedule {
        match site {
            NumericSite::Pivot => &mut self.pivot,
            NumericSite::Perturb => &mut self.perturb,
            NumericSite::Nan => &mut self.nan,
            NumericSite::Denom => &mut self.denom,
        }
    }

    /// Parses the compact spec grammar (see the type docs).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = NumericChaosPlan::default();
        'clauses: for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, body) = clause
                .split_once('@')
                .ok_or_else(|| format!("numeric-chaos clause `{clause}`: expected `kind@spec`"))?;
            for site in NumericSite::ALL {
                if kind == site.name() {
                    plan.schedule_mut(site)
                        .windows
                        .push(parse_window(clause, body)?);
                    continue 'clauses;
                }
            }
            if kind == "seed" {
                let (seed, pct) = body.split_once(':').ok_or_else(|| {
                    format!("numeric-chaos clause `{clause}`: expected `seed@SEED:PERCENT`")
                })?;
                let seed = parse_num(clause, seed)?;
                let pct = parse_num(clause, pct)?;
                if pct > 100 {
                    return Err(format!("numeric-chaos clause `{clause}`: percent > 100"));
                }
                let p = pct as f64 / 100.0;
                for site in NumericSite::ALL {
                    plan.schedule_mut(site).random = Some((seed, p));
                }
            } else {
                return Err(format!(
                    "numeric-chaos clause `{clause}`: unknown kind `{kind}` \
                     (expected pivot/perturb/nan/denom/seed)"
                ));
            }
        }
        Ok(plan)
    }

    /// A fresh per-analysis firing state over this plan.
    pub fn arm(&self) -> NumericChaosState {
        NumericChaosState {
            plan: self.clone(),
            attempts: Default::default(),
            injected: Default::default(),
        }
    }
}

/// Live firing state for a [`NumericChaosPlan`]: per-site attempt
/// counters plus per-site injection tallies.
///
/// Counters are atomics so one state can be shared across the retries
/// and escalation rungs of a single analysis; determinism comes from
/// giving each analysed fault its *own* state (attempt indices then
/// depend only on that fault's solve sequence, not on worker
/// scheduling).
#[derive(Debug, Default)]
pub struct NumericChaosState {
    plan: NumericChaosPlan,
    attempts: [std::sync::atomic::AtomicU64; 4],
    injected: [std::sync::atomic::AtomicU64; 4],
}

impl NumericChaosState {
    /// Consumes one attempt index at `site` and reports whether the
    /// plan injects there. Each call advances the site's index, so a
    /// retried operation naturally moves past a single-index window.
    pub fn fire(&self, site: NumericSite) -> bool {
        use std::sync::atomic::Ordering;
        let i = site.index();
        let attempt = self.attempts[i].fetch_add(1, Ordering::Relaxed);
        let hit = self.plan.schedule(site).fails_salted(site.salt(), attempt);
        if hit {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Total injections fired so far.
    pub fn injected(&self) -> u64 {
        use std::sync::atomic::Ordering;
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Per-site injection tallies, in [`NumericSite::ALL`] order.
    pub fn injected_by_site(&self) -> [(&'static str, u64); 4] {
        use std::sync::atomic::Ordering;
        let mut out = [("", 0); 4];
        for (slot, site) in out.iter_mut().zip(NumericSite::ALL) {
            *slot = (
                site.name(),
                self.injected[site.index()].load(Ordering::Relaxed),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_index_and_windows() {
        let plan = FaultPlan::parse("write@4,sync@2..5,reopen@1..").unwrap();
        assert_eq!(plan.write.windows, vec![(4, Some(5))]);
        assert_eq!(plan.sync.windows, vec![(2, Some(5))]);
        assert_eq!(plan.reopen.windows, vec![(1, None)]);
        assert!(plan.write.fails(Op::Write, 4));
        assert!(!plan.write.fails(Op::Write, 5));
        assert!(plan.sync.fails(Op::Sync, 4));
        assert!(!plan.sync.fails(Op::Sync, 5));
        assert!(plan.reopen.fails(Op::Reopen, 1_000_000));
    }

    #[test]
    fn parse_trunc_and_seed() {
        let plan = FaultPlan::parse("trunc@3:5,seed@9:25").unwrap();
        assert_eq!(plan.short_writes, vec![(3, 5)]);
        assert_eq!(plan.write.random, Some((9, 0.25)));
        assert_eq!(plan.sync.random, Some((9, 0.25)));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in ["write", "write@x", "write@5..3", "boom@1", "seed@1:200"] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("chaos clause"), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_decisions_are_reproducible_and_roughly_calibrated() {
        let plan = FaultPlan::seeded(42, 0.3, 0.0);
        let again = FaultPlan::seeded(42, 0.3, 0.0);
        let mut hits = 0;
        for i in 0..1000 {
            let a = plan.write.fails(Op::Write, i);
            let b = again.write.fails(Op::Write, i);
            assert_eq!(a, b, "decision {i} not reproducible");
            if a {
                hits += 1;
            }
        }
        // 30% of 1000 with generous slack — this is a calibration
        // sanity check, not a statistics test.
        assert!((150..=450).contains(&hits), "hits = {hits}");
        // A different seed gives a different schedule.
        let other = FaultPlan::seeded(43, 0.3, 0.0);
        let same = (0..1000).all(|i| other.write.fails(Op::Write, i) == plan.write.fails(Op::Write, i));
        assert!(!same);
    }

    /// Minimal in-memory sink used to observe what FaultySink forwards.
    #[derive(Debug, Default)]
    struct MemSink {
        buf: Vec<u8>,
    }

    impl JournalSink for MemSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<()> {
            self.buf.extend_from_slice(buf);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            Ok(())
        }

        fn reopen(&mut self, truncate_to: u64) -> io::Result<()> {
            self.buf.truncate(truncate_to as usize);
            Ok(())
        }
    }

    #[test]
    fn numeric_plan_parses_and_fires_one_shot() {
        let plan = NumericChaosPlan::parse("pivot@0,nan@1..3,denom@2").unwrap();
        assert!(!plan.is_empty());
        let state = plan.arm();
        // pivot@0 fires exactly once: the retry lands on index 1.
        assert!(state.fire(NumericSite::Pivot));
        assert!(!state.fire(NumericSite::Pivot));
        // nan window [1,3): indices 0,3 clean, 1,2 fire.
        assert!(!state.fire(NumericSite::Nan));
        assert!(state.fire(NumericSite::Nan));
        assert!(state.fire(NumericSite::Nan));
        assert!(!state.fire(NumericSite::Nan));
        // Unconfigured site never fires.
        assert!(!state.fire(NumericSite::Perturb));
        assert_eq!(state.injected(), 3);
        let by_site = state.injected_by_site();
        assert_eq!(by_site[0], ("pivot", 1));
        assert_eq!(by_site[2], ("nan", 2));
        assert_eq!(by_site[3], ("denom", 0));
        // A fresh state over the same plan replays identically.
        let replay = plan.arm();
        assert!(replay.fire(NumericSite::Pivot));
        assert!(!replay.fire(NumericSite::Pivot));
    }

    #[test]
    fn numeric_seed_clause_covers_all_sites_but_stays_decorrelated() {
        let plan = NumericChaosPlan::parse("seed@7:50").unwrap();
        for site in NumericSite::ALL {
            assert!(plan.schedule(site).random.is_some(), "{}", site.name());
        }
        // Same seed, different sites → different firing sequences
        // (salts decorrelate them).
        let a: Vec<bool> = (0..64)
            .map(|i| plan.pivot.fails_salted(NumericSite::Pivot.salt(), i))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| plan.nan.fails_salted(NumericSite::Nan.salt(), i))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn numeric_parse_rejects_malformed_clauses() {
        for bad in ["pivot", "pivot@x", "nan@5..3", "write@1", "seed@1:200"] {
            let err = NumericChaosPlan::parse(bad).unwrap_err();
            // Window/number errors come from the helpers shared with
            // FaultPlan, so the prefix is `chaos clause` there and
            // `numeric-chaos clause` for grammar-level errors.
            assert!(err.contains("clause"), "{bad}: {err}");
            assert!(err.contains(bad), "{bad}: {err}");
        }
        assert!(NumericChaosPlan::parse("").unwrap().is_empty());
        assert!(NumericChaosPlan::none().is_empty());
    }

    #[test]
    fn short_write_lands_a_prefix_then_errors() {
        let plan = FaultPlan::parse("trunc@1:4").unwrap();
        let mut sink = FaultySink::new(Box::new(MemSink::default()), plan);
        sink.write(b"aaaa\n").unwrap();
        let err = sink.write(b"bbbbbbbb\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(sink.inner.buf, b"aaaa\nbbbb");
        assert_eq!(sink.injected(), 1);
    }

    #[test]
    fn scripted_write_fault_leaves_inner_untouched() {
        let plan = FaultPlan::parse("write@0").unwrap();
        let mut sink = FaultySink::new(Box::new(MemSink::default()), plan);
        let err = sink.write(b"x\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(sink.inner.buf.is_empty());
        sink.write(b"y\n").unwrap();
        assert_eq!(sink.inner.buf, b"y\n");
        assert_eq!(sink.ops(), (2, 0, 0));
    }
}
