//! `obs` — zero-dependency instrumentation for the `mixsig` workspace.
//!
//! Every layer of the stack (solvers, campaigns, signal processing, the
//! experiment harness) reports what it did through the same three
//! primitives:
//!
//! * **counters** — monotonically increasing event counts (Newton
//!   iterations, accepted steps, homotopy stages);
//! * **values** — sampled scalar observations, aggregated into
//!   [`histogram::Histogram`]s with nearest-rank percentiles;
//! * **spans** — named wall-clock durations recorded via the RAII
//!   [`span::SpanTimer`] or [`span::time`].
//!
//! Events flow into a pluggable [`recorder::Recorder`]: the no-op
//! default costs nothing, [`recorder::AggregatingRecorder`] is the
//! thread-safe aggregate for real runs, and [`recorder::JsonlSink`]
//! streams events as JSON lines for external tooling.
//!
//! The machine-readable end of the pipeline is [`report::RunReport`]:
//! named [`report::Section`]s of counters, values, histograms and
//! timing summaries, serialised with the hand-rolled [`json`] writer
//! (the workspace builds offline, so there is no serde). The canonical
//! serialisation zeroes wall-clock milliseconds while keeping every
//! deterministic count, so reports are byte-identical across worker
//! counts and machines.
//!
//! Failure diagnosis flows through the same pipeline:
//! [`ring::RingBuffer`] bounds per-iteration solver traces, and
//! [`postmortem::Postmortem`] is the frozen, fully deterministic record
//! of a terminally failed solve that sections embed verbatim.
//!
//! Crash safety is the [`journal`] module: an append-only,
//! fsync-per-record JSONL writer and a reader that tolerates the one
//! torn trailing line a hard kill can leave behind, so long-running
//! campaigns checkpoint and resume instead of restarting from zero.
//! The writer talks to storage through the [`journal::JournalSink`]
//! trait and retries transient faults per a [`journal::RetryPolicy`];
//! the [`chaos`] module supplies a deterministic fault-injecting sink
//! ([`chaos::FaultySink`]) so the whole failure surface is testable
//! with reproducible, seeded schedules.
//!
//! Cost attribution is the [`profile`] module: a
//! [`profile::PhaseProfiler`] splits solver wall time across a fixed
//! phase taxonomy with self-time nesting semantics, and the [`trace`]
//! module exports timelines in the Chrome Trace Event format for
//! `chrome://tracing` / Perfetto.
//!
//! Live telemetry is the [`timeseries`] and [`status`] pair:
//! fixed-capacity windowed counters and gauges derive rates and EWMAs
//! from ring-buffered samples, and [`status::CampaignStatus`] is the
//! `mixsig.campaign-status/1` snapshot a running campaign atomically
//! rewrites (write-temp-then-rename) for concurrent watchers to poll
//! without ever seeing a torn document.
//!
//! Human-facing output goes through [`table::Table`], so printed tables
//! and the JSON report cannot drift apart.

pub mod chaos;
pub mod histogram;
pub mod journal;
pub mod json;
pub mod postmortem;
pub mod profile;
pub mod recorder;
pub mod report;
pub mod ring;
pub mod span;
pub mod status;
pub mod table;
pub mod timeseries;
pub mod trace;

pub use chaos::{FaultPlan, FaultySink, NumericChaosPlan, NumericChaosState, NumericSite};
pub use histogram::Histogram;
pub use journal::{
    read_journal, JournalContents, JournalError, JournalOptions, JournalSink, JournalWriter,
    RetryPolicy,
};
pub use postmortem::{HazardStep, LadderStep, Postmortem, PostmortemIteration};
pub use profile::{Phase, PhaseProfiler, PhaseSnapshot};
pub use recorder::{AggregatingRecorder, NoopRecorder, Recorder};
pub use report::{RunReport, Section};
pub use status::{CampaignStatus, WorkerLane};
pub use timeseries::{Ewma, Gauge, TimeSeries, WindowedCounter};
pub use trace::{render_trace, validate_trace, TraceEvent};
pub use ring::RingBuffer;
pub use table::{Align, Table};
