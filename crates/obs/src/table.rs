//! Aligned plain-text tables for human-facing report output.
//!
//! Experiments and examples render through this one formatter so the
//! printed tables and the machine-readable reports are assembled from
//! the same numbers and cannot drift apart.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on both sides.
    Center,
    /// Pad on the left (numbers).
    Right,
}

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    aligns: Vec<Align>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers, all left-aligned.
    pub fn new(header: &[&str]) -> Self {
        Table {
            aligns: vec![Align::Left; header.len()],
            header: header.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment. Panics if the count doesn't match the
    /// header (construction bug).
    pub fn align(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.header.len(), "one alignment per column");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row. Panics if the cell count doesn't match the header
    /// (construction bug).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "one cell per column");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: one header line, then one line per row, each
    /// terminated by `\n`, columns separated by two spaces.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.len();
                let (left, right) = match self.aligns[i] {
                    Align::Left => (0, pad),
                    Align::Right => (pad, 0),
                    Align::Center => (pad / 2, pad - pad / 2),
                };
                out.push_str(&" ".repeat(left));
                out.push_str(cell);
                // Trailing padding after the last column would only add
                // invisible whitespace.
                if i + 1 < cols {
                    out.push_str(&" ".repeat(right));
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// A proportional `#`-bar for quick visual ranking, e.g. detection
/// percentages in `fault_hunt`. `value` is clamped into
/// `[0, full_scale]`; `width` is the bar length at full scale.
pub fn bar(value: f64, full_scale: f64, width: usize) -> String {
    if full_scale <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let frac = (value / full_scale).clamp(0.0, 1.0);
    "#".repeat((frac * width as f64).round() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "pct"]).align(&[Align::Left, Align::Right]);
        t.row(&["n1-sa0".into(), "93.8".into()]);
        t.row(&["long-fault-name".into(), "6.2".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name              pct");
        assert_eq!(lines[1], "n1-sa0           93.8");
        assert_eq!(lines[2], "long-fault-name   6.2");
    }

    #[test]
    fn header_only_table_renders_one_line() {
        let t = Table::new(&["a", "b"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 1);
    }

    #[test]
    fn center_alignment_pads_both_sides() {
        let mut t = Table::new(&["circuit", "x"]).align(&[Align::Center, Align::Left]);
        t.row(&["1".into(), "y".into()]);
        let lines: Vec<String> = t.render().lines().map(str::to_owned).collect();
        assert_eq!(lines[1], "   1     y");
    }

    #[test]
    #[should_panic(expected = "one cell per column")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(100.0, 100.0, 10), "##########");
        assert_eq!(bar(50.0, 100.0, 10), "#####");
        assert_eq!(bar(250.0, 100.0, 10), "##########");
        assert_eq!(bar(-3.0, 100.0, 10), "");
        assert_eq!(bar(f64::NAN, 100.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
