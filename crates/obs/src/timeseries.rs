//! Windowed time series for live telemetry: fixed-capacity ring-buffer
//! samples with rate and EWMA derivation.
//!
//! The live-status layer (`mixsig.campaign-status/1` snapshots) needs
//! throughput and ETA figures that react to the recent past without
//! unbounded memory: a campaign that runs for hours must not keep every
//! observation. [`TimeSeries`] keeps the last `capacity` samples in a
//! [`RingBuffer`](crate::ring::RingBuffer) and derives a windowed rate
//! from whatever the window currently spans; [`Ewma`] is the
//! exponentially weighted moving average used to smooth per-fault
//! throughput; [`WindowedCounter`] combines both for the common
//! monotonic-counter case ("faults completed so far"), and
//! [`Gauge`] is the non-monotonic variant keeping last/min/max over the
//! window.
//!
//! Everything here is zero-dependency and wall-clock free: callers pass
//! their own timestamps (milliseconds on whatever clock they like), so
//! the derivations are exactly testable and the module never reads a
//! clock behind the caller's back.

use crate::ring::RingBuffer;

/// One observation: a timestamp (caller-defined milliseconds) and a
/// value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Timestamp in milliseconds on the caller's clock.
    pub t_ms: f64,
    /// Observed value.
    pub value: f64,
}

/// A fixed-capacity series of timestamped samples, oldest discarded
/// first.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    samples: RingBuffer<Sample>,
}

impl TimeSeries {
    /// A series retaining at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (inherited from
    /// [`RingBuffer::new`]).
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            samples: RingBuffer::new(capacity),
        }
    }

    /// Records one observation. Non-monotonic timestamps are accepted
    /// (the derivations below guard against zero or negative spans).
    pub fn push(&mut self, t_ms: f64, value: f64) {
        self.samples.push(Sample { t_ms, value });
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total observations ever recorded, including discarded ones.
    pub fn total_pushed(&self) -> u64 {
        self.samples.total_pushed()
    }

    /// The oldest retained sample.
    pub fn first(&self) -> Option<Sample> {
        self.samples.iter().next().copied()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<Sample> {
        self.samples.iter().last().copied()
    }

    /// Milliseconds spanned by the retained window (0 with fewer than
    /// two samples).
    pub fn window_ms(&self) -> f64 {
        match (self.first(), self.last()) {
            (Some(a), Some(b)) => (b.t_ms - a.t_ms).max(0.0),
            _ => 0.0,
        }
    }

    /// Change in value per second across the retained window, or `None`
    /// with fewer than two samples or a non-positive time span.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let (first, last) = (self.first()?, self.last()?);
        let span_ms = last.t_ms - first.t_ms;
        if span_ms <= 0.0 {
            return None;
        }
        Some((last.value - first.value) / (span_ms / 1e3))
    }

    /// Iterates retained samples oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`
/// in `(0, 1]`: larger alpha reacts faster, `alpha == 1` tracks the
/// last observation exactly. The first observation seeds the average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An empty average with the given smoothing factor, clamped into
    /// `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// Folds one observation in and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(next);
        next
    }

    /// The current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// A windowed monotonic counter: ring-buffered `(t, total)` samples
/// plus an EWMA of the instantaneous rate between consecutive
/// observations. The windowed rate answers "how fast over the recent
/// past", the EWMA answers "how fast right now, smoothed".
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    series: TimeSeries,
    ewma: Ewma,
    last: Option<Sample>,
}

impl WindowedCounter {
    /// Default sample capacity: enough for minutes of sub-second
    /// observation without measurable memory.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Default EWMA smoothing factor.
    pub const DEFAULT_ALPHA: f64 = 0.2;

    /// A counter with the default window capacity and smoothing.
    pub fn new() -> Self {
        WindowedCounter::with_capacity(Self::DEFAULT_CAPACITY, Self::DEFAULT_ALPHA)
    }

    /// A counter with explicit window capacity and EWMA alpha.
    pub fn with_capacity(capacity: usize, alpha: f64) -> Self {
        WindowedCounter {
            series: TimeSeries::new(capacity),
            ewma: Ewma::new(alpha),
            last: None,
        }
    }

    /// Records the counter's cumulative total at `t_ms`. Out-of-order
    /// or non-advancing timestamps record the sample but skip the EWMA
    /// (no instantaneous rate exists for a zero or negative interval).
    pub fn observe(&mut self, t_ms: f64, total: f64) {
        if let Some(prev) = self.last {
            let dt_ms = t_ms - prev.t_ms;
            if dt_ms > 0.0 {
                self.ewma.update((total - prev.value) / (dt_ms / 1e3));
            }
        }
        self.series.push(t_ms, total);
        self.last = Some(Sample { t_ms, value: total });
    }

    /// Rate per second over the retained window (`None` until two
    /// samples span positive time).
    pub fn rate_per_sec(&self) -> Option<f64> {
        self.series.rate_per_sec()
    }

    /// Smoothed instantaneous rate per second.
    pub fn ewma_per_sec(&self) -> Option<f64> {
        self.ewma.value()
    }

    /// The most recent total.
    pub fn total(&self) -> Option<f64> {
        self.last.map(|s| s.value)
    }

    /// The underlying sample window.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter::new()
    }
}

/// A windowed gauge: the non-monotonic companion of
/// [`WindowedCounter`], keeping last/min/max over the retained window
/// plus an EWMA of the raw value.
#[derive(Debug, Clone)]
pub struct Gauge {
    series: TimeSeries,
    ewma: Ewma,
}

impl Gauge {
    /// A gauge with the given window capacity and EWMA alpha.
    pub fn with_capacity(capacity: usize, alpha: f64) -> Self {
        Gauge {
            series: TimeSeries::new(capacity),
            ewma: Ewma::new(alpha),
        }
    }

    /// A gauge with the default window capacity and smoothing.
    pub fn new() -> Self {
        Gauge::with_capacity(WindowedCounter::DEFAULT_CAPACITY, WindowedCounter::DEFAULT_ALPHA)
    }

    /// Records one observation.
    pub fn observe(&mut self, t_ms: f64, value: f64) {
        self.series.push(t_ms, value);
        self.ewma.update(value);
    }

    /// The most recent observation.
    pub fn last(&self) -> Option<f64> {
        self.series.last().map(|s| s.value)
    }

    /// Smallest value in the retained window.
    pub fn min(&self) -> Option<f64> {
        self.series.iter().map(|s| s.value).reduce(f64::min)
    }

    /// Largest value in the retained window.
    pub fn max(&self) -> Option<f64> {
        self.series.iter().map(|s| s.value).reduce(f64::max)
    }

    /// Smoothed value.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma.value()
    }

    /// The underlying sample window.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_rate_uses_first_and_last_sample() {
        let mut ts = TimeSeries::new(8);
        assert!(ts.rate_per_sec().is_none());
        ts.push(0.0, 0.0);
        assert!(ts.rate_per_sec().is_none(), "one sample has no rate");
        ts.push(500.0, 5.0);
        ts.push(1000.0, 8.0);
        // 8 units over 1 second.
        assert_eq!(ts.rate_per_sec(), Some(8.0));
        assert_eq!(ts.window_ms(), 1000.0);
    }

    #[test]
    fn ring_discards_oldest_so_the_rate_is_windowed() {
        let mut ts = TimeSeries::new(3);
        ts.push(0.0, 0.0); // evicted below
        ts.push(1000.0, 100.0);
        ts.push(2000.0, 101.0);
        ts.push(3000.0, 102.0);
        // Window is [1000, 3000]: 2 units over 2 seconds, the burst at
        // the evicted origin no longer biases the figure.
        assert_eq!(ts.rate_per_sec(), Some(1.0));
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.total_pushed(), 4);
    }

    #[test]
    fn zero_or_negative_spans_yield_no_rate() {
        let mut ts = TimeSeries::new(4);
        ts.push(100.0, 1.0);
        ts.push(100.0, 2.0);
        assert!(ts.rate_per_sec().is_none());
        let mut backwards = TimeSeries::new(4);
        backwards.push(200.0, 1.0);
        backwards.push(100.0, 2.0);
        assert!(backwards.rate_per_sec().is_none());
    }

    #[test]
    fn ewma_seeds_on_first_observation_and_smooths_after() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(20.0), 15.0);
        assert_eq!(e.update(20.0), 17.5);
    }

    #[test]
    fn ewma_alpha_one_tracks_the_last_value() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        e.update(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn counter_derives_window_and_ewma_rates() {
        let mut c = WindowedCounter::with_capacity(16, 0.5);
        c.observe(0.0, 0.0);
        c.observe(1000.0, 4.0);
        c.observe(2000.0, 6.0);
        assert_eq!(c.rate_per_sec(), Some(3.0)); // 6 over 2 s
        // EWMA of instantaneous rates 4/s then 2/s at alpha 0.5.
        assert_eq!(c.ewma_per_sec(), Some(3.0));
        assert_eq!(c.total(), Some(6.0));
    }

    #[test]
    fn counter_ignores_non_advancing_timestamps_for_the_ewma() {
        let mut c = WindowedCounter::with_capacity(16, 0.5);
        c.observe(0.0, 0.0);
        c.observe(0.0, 100.0); // same instant: no instantaneous rate
        assert_eq!(c.ewma_per_sec(), None);
        c.observe(1000.0, 101.0);
        assert!(c.ewma_per_sec().is_some());
    }

    #[test]
    fn gauge_tracks_last_min_max() {
        let mut g = Gauge::with_capacity(3, 0.5);
        g.observe(0.0, 5.0);
        g.observe(1.0, -2.0);
        g.observe(2.0, 3.0);
        assert_eq!(g.last(), Some(3.0));
        assert_eq!(g.min(), Some(-2.0));
        assert_eq!(g.max(), Some(5.0));
        g.observe(3.0, 0.0); // evicts the 5.0
        assert_eq!(g.max(), Some(3.0));
    }
}
