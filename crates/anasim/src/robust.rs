//! Solver-robustness primitives: resource budgets and the escalation
//! ladder used by fault campaigns.
//!
//! Fault simulation stresses a circuit simulator in ways nominal design
//! verification does not: a clamped node or bridged pair can leave the
//! Newton iteration without a stable fixed point at the nominal
//! timestep, or send the time-march into pathological dt-halving that
//! burns hours on one fault. The paper's methodology (Cobley, ED&TC
//! 1996) needs *every* fault in a campaign to produce an answer, so
//! this module provides two tools:
//!
//! * [`SolveBudget`] — a hard ceiling on timesteps and wall-clock time
//!   per analysis, surfaced as [`AnalysisError::BudgetExceeded`]
//!   instead of hanging;
//! * [`SolverRung`] and [`escalation_ladder`] — a sequence of
//!   progressively more conservative solver configurations to retry a
//!   failed extraction with, trading accuracy for stability;
//! * [`CancelToken`] — a shared atomic flag for cooperative
//!   cancellation, polled by [`BudgetClock::check_wall`] from the inner
//!   solver loops so Ctrl-C (or any embedding caller) interrupts even a
//!   single stuck Newton solve with [`AnalysisError::Cancelled`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{AnalysisError, BudgetKind};
use crate::flight::FlightRecorder;
use crate::solver::{Backend, Rank1Setup, WarmStart};
use crate::metrics::SolverMetrics;
use obs::profile::PhaseProfiler;

/// Default ceiling on attempted timesteps, shared by
/// [`crate::transient::TransientAnalysis::new`] and
/// [`SolveSettings::default`]: large enough for any sane analysis,
/// small enough that a `dt` far too small for `t_stop` still
/// terminates.
pub const DEFAULT_MAX_STEPS: usize = 50_000_000;

/// Resource ceiling for a single analysis run.
///
/// The default is unlimited in both dimensions;
/// [`crate::transient::TransientAnalysis::new`] installs
/// [`DEFAULT_MAX_STEPS`] so runaway dt-halving still terminates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum number of attempted timesteps, or `None` for unlimited.
    pub max_steps: Option<usize>,
    /// Maximum wall-clock time, or `None` for unlimited.
    pub max_wall: Option<Duration>,
}

impl SolveBudget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Sets the timestep ceiling.
    pub fn steps(mut self, max_steps: usize) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the wall-clock ceiling.
    pub fn wall(mut self, max_wall: Duration) -> Self {
        self.max_wall = Some(max_wall);
        self
    }
}

/// Shared cooperative-cancellation flag.
///
/// Cloning is cheap (an [`Arc`] of one atomic); every clone observes the
/// same flag. A token is threaded into analyses through
/// [`SolveSettings::cancel`], from where the [`BudgetClock`] polls it
/// between Newton iterations and timesteps — so cancellation interrupts
/// an in-flight solve within one iteration, surfacing as
/// [`AnalysisError::Cancelled`]. Cancellation is one-way: there is
/// deliberately no `reset`, so a fresh campaign needs a fresh token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Safe to call from any thread (or a signal
    /// handler — it is a single atomic store); idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Running meter for one analysis against a [`SolveBudget`].
///
/// The time-march charges one step per attempted timestep via
/// [`BudgetClock::charge_step`]; the Newton solver polls
/// [`BudgetClock::check_wall`] between iterations so a wall-clock
/// ceiling — or a raised [`CancelToken`] — interrupts even a single
/// stuck step.
#[derive(Debug, Clone)]
pub struct BudgetClock {
    budget: SolveBudget,
    started: Instant,
    steps: usize,
    cancel: Option<CancelToken>,
}

impl BudgetClock {
    /// Starts the meter (the wall clock begins now).
    pub fn new(budget: SolveBudget) -> Self {
        BudgetClock {
            budget,
            started: Instant::now(),
            steps: 0,
            cancel: None,
        }
    }

    /// Attaches a cancellation token for [`BudgetClock::check_wall`] to
    /// poll (builder style).
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Timesteps charged so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Charges one attempted timestep at simulation time `time`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::BudgetExceeded`] when either ceiling is
    /// crossed.
    pub fn charge_step(&mut self, time: f64) -> Result<(), AnalysisError> {
        self.steps += 1;
        if let Some(max) = self.budget.max_steps {
            if self.steps > max {
                return Err(AnalysisError::BudgetExceeded {
                    time,
                    steps: self.steps,
                    kind: BudgetKind::Steps,
                });
            }
        }
        self.check_wall(time)
    }

    /// Checks the cancellation flag and the wall-clock ceiling (cheap
    /// enough to poll from inner solver loops).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Cancelled`] when an attached
    /// [`CancelToken`] has been raised, or
    /// [`AnalysisError::BudgetExceeded`] with [`BudgetKind::WallClock`]
    /// when the elapsed time exceeds the budget.
    pub fn check_wall(&self, time: f64) -> Result<(), AnalysisError> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(AnalysisError::Cancelled);
            }
        }
        if let Some(max) = self.budget.max_wall {
            if self.started.elapsed() > max {
                return Err(AnalysisError::BudgetExceeded {
                    time,
                    steps: self.steps,
                    kind: BudgetKind::WallClock,
                });
            }
        }
        Ok(())
    }
}

/// One rung of the solver escalation ladder: a recipe for making a
/// transient analysis more conservative at the cost of accuracy.
///
/// Applied to a [`crate::transient::TransientAnalysis`] via
/// [`crate::transient::TransientAnalysis::with_settings`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverRung {
    /// Scale on the nominal timestep (0.5 = start with half steps).
    pub dt_scale: f64,
    /// Scale on the minimum-timestep floor, applied after `dt_scale`.
    /// Raising the floor (> 1) stops pathological halving from burning
    /// the budget on steps too small to matter.
    pub min_dt_scale: f64,
    /// Force backward Euler integration (fully damped, never rings).
    pub force_backward_euler: bool,
    /// Override the `gmin` conductance to ground, if set.
    pub gmin: Option<f64>,
}

impl SolverRung {
    /// The nominal configuration: no changes to the analysis.
    pub fn nominal() -> Self {
        SolverRung {
            dt_scale: 1.0,
            min_dt_scale: 1.0,
            force_backward_euler: false,
            gmin: None,
        }
    }

    /// True if this rung leaves the analysis untouched.
    pub fn is_nominal(&self) -> bool {
        *self == SolverRung::nominal()
    }

    /// Short human-readable label for telemetry
    /// (e.g. `"dt/2+BE+gmin=1e-9"`).
    pub fn label(&self) -> String {
        if self.is_nominal() {
            return "nominal".to_owned();
        }
        let mut parts = Vec::new();
        if self.dt_scale != 1.0 {
            parts.push(format!("dt*{}", self.dt_scale));
        }
        if self.min_dt_scale != 1.0 {
            parts.push(format!("min_dt*{}", self.min_dt_scale));
        }
        if self.force_backward_euler {
            parts.push("BE".to_owned());
        }
        if let Some(g) = self.gmin {
            parts.push(format!("gmin={g:.0e}"));
        }
        parts.join("+")
    }
}

/// The default escalation ladder for fault campaigns: nominal first,
/// then progressively damped retries.
///
/// Each rung trades accuracy for stability; a fault whose extraction
/// only converges on a late rung still yields a usable signature, and
/// the rung index is recorded in the campaign telemetry so the loss of
/// fidelity is visible.
pub fn escalation_ladder() -> Vec<SolverRung> {
    vec![
        SolverRung::nominal(),
        // Halved initial step, same integrator: rescues faults whose
        // nominal first step lands outside the Newton basin.
        SolverRung {
            dt_scale: 0.5,
            min_dt_scale: 1.0,
            force_backward_euler: false,
            gmin: None,
        },
        // Backward Euler damps the trapezoidal ringing that clamped
        // nodes excite.
        SolverRung {
            dt_scale: 0.5,
            min_dt_scale: 1.0,
            force_backward_euler: true,
            gmin: None,
        },
        // Last resort: quarter step, fully damped, raised gmin and a
        // raised min-dt floor so the attempt fails fast if hopeless.
        SolverRung {
            dt_scale: 0.25,
            min_dt_scale: 4.0,
            force_backward_euler: true,
            gmin: Some(1e-9),
        },
    ]
}

/// A complete per-extraction solver configuration: which ladder rung to
/// apply, what resource budget to enforce, and where to count solver
/// work.
#[derive(Debug, Clone)]
pub struct SolveSettings {
    /// Solver conservatism recipe.
    pub rung: SolverRung,
    /// Resource ceiling.
    pub budget: SolveBudget,
    /// Counter handle installed into analyses run under these settings.
    /// `None` leaves the analyses unmetered.
    pub metrics: Option<Arc<SolverMetrics>>,
    /// Flight recorder armed on analyses run under these settings.
    /// `None` (the default) disables per-iteration tracing entirely.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Cooperative-cancellation token polled from the inner solver
    /// loops. `None` (the default) makes the analysis uninterruptible.
    pub cancel: Option<CancelToken>,
    /// Phase profiler armed on analyses run under these settings:
    /// stamping, device evaluation, LU factor/solve, residual update
    /// and timestep control are attributed per-phase on it. `None`
    /// (the default) keeps the hot path free of clock reads.
    pub profile: Option<Arc<PhaseProfiler>>,
    /// Linear-algebra backend for the Newton solves (sparse by
    /// default; both backends produce bit-identical solutions).
    pub backend: Backend,
    /// Golden operating point used to seed DC solves. `None` (the
    /// default) cold-starts.
    pub warm_start: Option<Arc<WarmStart>>,
    /// Rank-1 golden-factorisation routing: capture on the golden
    /// extraction, Sherman–Morrison application on fault extractions
    /// of linear circuits. `None` disables the tier.
    pub rank1: Option<Rank1Setup>,
    /// Numeric-chaos firing state: deterministic arithmetic fault
    /// injection into the Newton solver's factorisations, solutions and
    /// rank-1 denominators. `None` (the default) keeps every injection
    /// site inert with a single branch.
    pub numeric_chaos: Option<Arc<obs::NumericChaosState>>,
}

impl SolveSettings {
    /// `self` with `metrics` installed (builder style).
    pub fn metrics(mut self, metrics: Arc<SolverMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// `self` with a [`FlightRecorder`] armed (builder style).
    pub fn flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// `self` with a [`CancelToken`] attached (builder style).
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// `self` with a [`PhaseProfiler`] armed (builder style).
    pub fn profile(mut self, profile: Arc<PhaseProfiler>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// `self` with an explicit linear-algebra [`Backend`] (builder
    /// style).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// `self` with a golden [`WarmStart`] seed (builder style).
    pub fn warm_start(mut self, warm: Arc<WarmStart>) -> Self {
        self.warm_start = Some(warm);
        self
    }

    /// `self` with a [`Rank1Setup`] attached (builder style).
    pub fn rank1(mut self, rank1: Rank1Setup) -> Self {
        self.rank1 = Some(rank1);
        self
    }

    /// `self` with a numeric-chaos firing state armed (builder style).
    pub fn numeric_chaos(mut self, state: Arc<obs::NumericChaosState>) -> Self {
        self.numeric_chaos = Some(state);
        self
    }
}

impl Default for SolveSettings {
    /// Nominal rung with the default step ceiling: applying this to a
    /// [`crate::transient::TransientAnalysis`] leaves it unchanged.
    fn default() -> Self {
        SolveSettings {
            rung: SolverRung::nominal(),
            budget: SolveBudget::unlimited().steps(DEFAULT_MAX_STEPS),
            metrics: None,
            flight: None,
            cancel: None,
            profile: None,
            backend: Backend::default(),
            warm_start: None,
            rank1: None,
            numeric_chaos: None,
        }
    }
}

impl Default for SolverRung {
    fn default() -> Self {
        SolverRung::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_budget_trips_at_ceiling() {
        let mut clock = BudgetClock::new(SolveBudget::unlimited().steps(2));
        assert!(clock.charge_step(0.0).is_ok());
        assert!(clock.charge_step(1e-6).is_ok());
        let err = clock.charge_step(2e-6).unwrap_err();
        match err {
            AnalysisError::BudgetExceeded { steps, kind, .. } => {
                assert_eq!(steps, 3);
                assert_eq!(kind, BudgetKind::Steps);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn wall_budget_trips_once_elapsed() {
        let clock = BudgetClock::new(SolveBudget::unlimited().wall(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        let err = clock.check_wall(0.5).unwrap_err();
        match err {
            AnalysisError::BudgetExceeded { time, kind, .. } => {
                assert_eq!(time, 0.5);
                assert_eq!(kind, BudgetKind::WallClock);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut clock = BudgetClock::new(SolveBudget::unlimited());
        for k in 0..100_000 {
            clock.charge_step(k as f64 * 1e-9).unwrap();
        }
    }

    #[test]
    fn ladder_starts_nominal_and_escalates() {
        let ladder = escalation_ladder();
        assert!(ladder[0].is_nominal());
        assert!(ladder.len() >= 3);
        // Later rungs are at least as conservative in timestep.
        for pair in ladder.windows(2) {
            assert!(pair[1].dt_scale <= pair[0].dt_scale);
        }
        // The last rung is maximally damped.
        assert!(ladder.last().unwrap().force_backward_euler);
        assert!(ladder.last().unwrap().gmin.is_some());
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn check_wall_reports_cancellation_before_budget() {
        let token = CancelToken::new();
        // A zero wall budget would trip BudgetExceeded, but a raised
        // token must win so callers see a clean Cancelled.
        let clock = BudgetClock::new(SolveBudget::unlimited().wall(Duration::ZERO))
            .with_cancel(Some(token.clone()));
        std::thread::sleep(Duration::from_millis(1));
        token.cancel();
        assert_eq!(clock.check_wall(0.1).unwrap_err(), AnalysisError::Cancelled);
    }

    #[test]
    fn untripped_token_does_not_interfere() {
        let clock =
            BudgetClock::new(SolveBudget::unlimited()).with_cancel(Some(CancelToken::new()));
        assert!(clock.check_wall(0.1).is_ok());
    }

    #[test]
    fn rung_labels_are_distinct() {
        let ladder = escalation_ladder();
        let labels: Vec<String> = ladder.iter().map(|r| r.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(labels[0], "nominal");
    }
}
