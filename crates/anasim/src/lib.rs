//! `anasim` — a small SPICE-class analogue circuit simulator.
//!
//! This crate is the analogue substrate for the `mixsig` workspace: it plays
//! the role HSPICE played in Cobley's 1996 ED&TC paper on on-chip testing of
//! mixed-signal macros. It provides:
//!
//! * a [`netlist::Netlist`] builder for transistor-level circuits
//!   (resistors, capacitors, inductors, independent sources with rich
//!   waveforms, level-1 MOSFETs, diodes, voltage-controlled switches and
//!   controlled sources),
//! * DC operating-point analysis ([`dc::dc_operating_point`]) using
//!   Newton–Raphson with `gmin` and source stepping fallbacks,
//! * AC small-signal analysis ([`ac::ac_analysis`]) via the complex MNA
//!   system linearised at the operating point,
//! * transient analysis ([`transient::TransientAnalysis`]) with backward
//!   Euler or trapezoidal integration, and
//! * a [`waveform::Waveform`] type for sampled results.
//!
//! # Example
//!
//! A resistive divider driven by a 5 V source:
//!
//! ```
//! use anasim::netlist::Netlist;
//! use anasim::source::SourceWaveform;
//!
//! # fn main() -> Result<(), anasim::AnalysisError> {
//! let mut nl = Netlist::new();
//! let vin = nl.node("in");
//! let out = nl.node("out");
//! nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(5.0));
//! nl.resistor("R1", vin, out, 1e3);
//! nl.resistor("R2", out, Netlist::GROUND, 1e3);
//! let op = anasim::dc::dc_operating_point(&nl)?;
//! assert!((op.voltage(out) - 2.5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod dc;
pub mod dense;
pub mod devices;
pub mod flight;
pub mod metrics;
pub mod mna;
pub mod netlist;
pub mod robust;
pub mod solver;
pub mod source;
pub mod spice;
pub mod sweep;
pub mod transient;
pub mod waveform;

mod error;

pub use error::{AnalysisError, BudgetKind};
