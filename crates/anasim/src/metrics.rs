//! Per-session solver metrics.
//!
//! A [`SolverMetrics`] handle is owned by whoever runs an analysis (a
//! campaign worker, a bench experiment, a test) and threaded into the
//! solvers through [`crate::robust::SolveSettings`]. Counters are
//! atomics, so one handle can be shared across an analysis that retries
//! internally; each worker in a parallel campaign gets its *own* handle,
//! which is what makes per-fault counts exact — there is no process- or
//! thread-global state to bleed between consecutive analyses.
//!
//! An optional [`obs::Recorder`] receives wall-clock spans as they
//! close (`anasim.dc`, `anasim.transient`, `anasim.ac`). Counters stay
//! in the atomics until the owner snapshots them, so deterministic
//! quantities can be emitted in a deterministic order after parallel
//! work completes.

use std::fmt;
use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use linsys::NumericalHazard;
use obs::profile::{PhaseProfiler, PhaseSnapshot};
use obs::Recorder;

/// Counter names under which [`SolverSnapshot::emit_to`] publishes to a
/// recorder, in emission order.
pub const COUNTER_NAMES: [&str; 19] = [
    "solver.newton_iterations",
    "solver.steps_accepted",
    "solver.steps_rejected",
    "solver.dt_shrinks",
    "solver.dc_gmin_steps",
    "solver.dc_source_steps",
    "solver.factor_reuse_hits",
    "solver.factor_reuse_misses",
    "solver.hazard.near_singular_pivot",
    "solver.hazard.pivot_growth",
    "solver.hazard.rank1_breakdown",
    "solver.hazard.nonfinite",
    "solver.hazard.refinement_stall",
    "solver.hazard.ill_conditioned",
    "solver.demote.stale",
    "solver.demote.refactor",
    "solver.demote.symbolic",
    "solver.demote.dense",
    "solver.refinement.rounds",
];

/// The recovery tier the solver demoted *to* after a numerical hazard,
/// ordered from cheapest to most expensive. The tiers mirror the
/// factorisation-reuse ladder in `mna`: reuse a cached same-key factor
/// as-is, numerically refactor in the existing symbolic structure,
/// rebuild the symbolic analysis from scratch, and finally abandon the
/// sparse backend for dense LU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DemotionTier {
    /// Fall back to a cached (stale or same-key) factorisation.
    Stale,
    /// Force a numeric refactorisation of the current structure.
    Refactor,
    /// Rebuild the symbolic structure and refactor.
    Symbolic,
    /// Abandon the sparse backend for dense LU.
    Dense,
}

impl DemotionTier {
    /// Every tier, cheapest first.
    pub const ALL: [DemotionTier; 4] = [
        DemotionTier::Stale,
        DemotionTier::Refactor,
        DemotionTier::Symbolic,
        DemotionTier::Dense,
    ];

    /// Stable lowercase label used in counters, markers and journals.
    pub fn label(self) -> &'static str {
        match self {
            DemotionTier::Stale => "stale",
            DemotionTier::Refactor => "refactor",
            DemotionTier::Symbolic => "symbolic",
            DemotionTier::Dense => "dense",
        }
    }
}

/// Live, thread-safe solver counters plus an optional span recorder.
#[derive(Default)]
pub struct SolverMetrics {
    newton_iterations: AtomicU64,
    steps_accepted: AtomicU64,
    steps_rejected: AtomicU64,
    dt_shrinks: AtomicU64,
    dc_gmin_steps: AtomicU64,
    dc_source_steps: AtomicU64,
    factor_reuse_hits: AtomicU64,
    factor_reuse_misses: AtomicU64,
    hazard_near_singular_pivot: AtomicU64,
    hazard_pivot_growth: AtomicU64,
    hazard_rank1_breakdown: AtomicU64,
    hazard_nonfinite: AtomicU64,
    hazard_refinement_stall: AtomicU64,
    hazard_ill_conditioned: AtomicU64,
    demote_stale: AtomicU64,
    demote_refactor: AtomicU64,
    demote_symbolic: AtomicU64,
    demote_dense: AtomicU64,
    refinement_rounds: AtomicU64,
    recorder: Option<Arc<dyn Recorder>>,
    profile: Option<Arc<PhaseProfiler>>,
}

impl fmt::Debug for SolverMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverMetrics")
            .field("snapshot", &self.snapshot())
            .field("has_recorder", &self.recorder.is_some())
            .finish()
    }
}

impl SolverMetrics {
    /// Fresh counters with no span recorder.
    pub fn new() -> Self {
        SolverMetrics::default()
    }

    /// Fresh counters whose spans are forwarded to `recorder`.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Self {
        SolverMetrics {
            recorder: Some(recorder),
            ..SolverMetrics::default()
        }
    }

    /// `self` with a [`PhaseProfiler`] attached (builder style):
    /// [`SolverMetrics::snapshot`] folds the profiler's per-phase
    /// nanosecond totals into [`SolverSnapshot::phases`]. The handle
    /// only links the profiler to the snapshot; arming the solver hot
    /// path itself goes through
    /// [`crate::robust::SolveSettings::profile`].
    pub fn with_profile(mut self, profile: Arc<PhaseProfiler>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// One Newton iteration performed.
    #[inline]
    pub fn newton_iteration(&self) {
        self.newton_iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// One transient timestep accepted.
    #[inline]
    pub fn step_accepted(&self) {
        self.steps_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// One transient timestep rejected (non-convergence at this dt).
    #[inline]
    pub fn step_rejected(&self) {
        self.steps_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One dt halving after a rejected step.
    #[inline]
    pub fn dt_shrink(&self) {
        self.dt_shrinks.fetch_add(1, Ordering::Relaxed);
    }

    /// One gmin-stepping homotopy stage solved during DC.
    #[inline]
    pub fn dc_gmin_step(&self) {
        self.dc_gmin_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// One source-stepping homotopy stage solved during DC.
    #[inline]
    pub fn dc_source_step(&self) {
        self.dc_source_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// One Newton iteration served by a cached factorisation (a
    /// modified-Newton stale step, a cached linear solve, or a
    /// Sherman–Morrison rank-1 application).
    #[inline]
    pub fn factor_reuse_hit(&self) {
        self.factor_reuse_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One Newton iteration that (re)factorised the system matrix.
    #[inline]
    pub fn factor_reuse_miss(&self) {
        self.factor_reuse_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One numerical hazard of the given kind detected. Hazards are
    /// *detections*, not necessarily failures: advisory kinds
    /// (pivot-growth, ill-conditioned) are counted without forcing a
    /// demotion, while the rest trigger the demotion ladder.
    #[inline]
    pub fn hazard(&self, hazard: NumericalHazard) {
        let counter = match hazard {
            NumericalHazard::NearSingularPivot => &self.hazard_near_singular_pivot,
            NumericalHazard::PivotGrowth => &self.hazard_pivot_growth,
            NumericalHazard::Rank1Breakdown => &self.hazard_rank1_breakdown,
            NumericalHazard::NonFinite => &self.hazard_nonfinite,
            NumericalHazard::RefinementStall => &self.hazard_refinement_stall,
            NumericalHazard::IllConditioned => &self.hazard_ill_conditioned,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// One demotion onto the given recovery tier after a hazard.
    #[inline]
    pub fn demotion(&self, tier: DemotionTier) {
        let counter = match tier {
            DemotionTier::Stale => &self.demote_stale,
            DemotionTier::Refactor => &self.demote_refactor,
            DemotionTier::Symbolic => &self.demote_symbolic,
            DemotionTier::Dense => &self.demote_dense,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// One round of iterative refinement executed (whether or not the
    /// corrected iterate was accepted).
    #[inline]
    pub fn refinement_round(&self) {
        self.refinement_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Reports a completed analysis span (e.g. `anasim.dc`) to the
    /// attached recorder, if any.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        if let Some(recorder) = &self.recorder {
            recorder.span(name, elapsed);
        }
    }

    /// The attached span recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.recorder.as_ref()
    }

    /// The attached phase profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<PhaseProfiler>> {
        self.profile.as_ref()
    }

    /// A point-in-time copy of all counters, including the per-phase
    /// nanosecond totals of an attached profiler (zero when disarmed).
    pub fn snapshot(&self) -> SolverSnapshot {
        SolverSnapshot {
            newton_iterations: self.newton_iterations.load(Ordering::Relaxed),
            steps_accepted: self.steps_accepted.load(Ordering::Relaxed),
            steps_rejected: self.steps_rejected.load(Ordering::Relaxed),
            dt_shrinks: self.dt_shrinks.load(Ordering::Relaxed),
            dc_gmin_steps: self.dc_gmin_steps.load(Ordering::Relaxed),
            dc_source_steps: self.dc_source_steps.load(Ordering::Relaxed),
            factor_reuse_hits: self.factor_reuse_hits.load(Ordering::Relaxed),
            factor_reuse_misses: self.factor_reuse_misses.load(Ordering::Relaxed),
            hazard_near_singular_pivot: self.hazard_near_singular_pivot.load(Ordering::Relaxed),
            hazard_pivot_growth: self.hazard_pivot_growth.load(Ordering::Relaxed),
            hazard_rank1_breakdown: self.hazard_rank1_breakdown.load(Ordering::Relaxed),
            hazard_nonfinite: self.hazard_nonfinite.load(Ordering::Relaxed),
            hazard_refinement_stall: self.hazard_refinement_stall.load(Ordering::Relaxed),
            hazard_ill_conditioned: self.hazard_ill_conditioned.load(Ordering::Relaxed),
            demote_stale: self.demote_stale.load(Ordering::Relaxed),
            demote_refactor: self.demote_refactor.load(Ordering::Relaxed),
            demote_symbolic: self.demote_symbolic.load(Ordering::Relaxed),
            demote_dense: self.demote_dense.load(Ordering::Relaxed),
            refinement_rounds: self.refinement_rounds.load(Ordering::Relaxed),
            phases: self.profile.as_ref().map(|p| p.snapshot()).unwrap_or_default(),
        }
    }
}

/// An immutable copy of solver counters; add snapshots to aggregate
/// across analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverSnapshot {
    /// Newton iterations performed.
    pub newton_iterations: u64,
    /// Transient timesteps accepted.
    pub steps_accepted: u64,
    /// Transient timesteps rejected.
    pub steps_rejected: u64,
    /// dt halvings after rejected steps.
    pub dt_shrinks: u64,
    /// gmin homotopy stages solved.
    pub dc_gmin_steps: u64,
    /// Source-stepping homotopy stages solved.
    pub dc_source_steps: u64,
    /// Newton iterations served by a cached factorisation.
    pub factor_reuse_hits: u64,
    /// Newton iterations that (re)factorised the system matrix.
    pub factor_reuse_misses: u64,
    /// Near-singular pivots detected (scale-relative threshold).
    pub hazard_near_singular_pivot: u64,
    /// Excessive element growth observed during factorisation
    /// (advisory).
    pub hazard_pivot_growth: u64,
    /// Degenerate Sherman–Morrison rank-1 denominators.
    pub hazard_rank1_breakdown: u64,
    /// Non-finite residuals, solutions or trial steps scrubbed.
    pub hazard_nonfinite: u64,
    /// Refinement rounds that failed to contract the true residual.
    pub hazard_refinement_stall: u64,
    /// Condition estimates above the advisory threshold.
    pub hazard_ill_conditioned: u64,
    /// Demotions onto a cached factorisation.
    pub demote_stale: u64,
    /// Demotions forcing a numeric refactorisation.
    pub demote_refactor: u64,
    /// Demotions rebuilding the symbolic structure.
    pub demote_symbolic: u64,
    /// Demotions abandoning the sparse backend for dense LU.
    pub demote_dense: u64,
    /// Iterative-refinement rounds executed.
    pub refinement_rounds: u64,
    /// Per-phase self-time nanoseconds and span counts from an attached
    /// [`PhaseProfiler`]; all-zero when profiling was disarmed. Being
    /// wall-clock measurements these are *not* deterministic, so they
    /// never reach canonical report output — they surface only through
    /// the bench sidecar, the phase table and trace exports.
    pub phases: PhaseSnapshot,
}

impl SolverSnapshot {
    /// Bare field names in [`SolverSnapshot::as_array`] order; the
    /// recorder-facing [`COUNTER_NAMES`] are these with a `solver.`
    /// prefix. Keeping one authoritative name list next to the value
    /// list stops the two from drifting into positional magic.
    pub const FIELDS: [&'static str; 19] = [
        "newton_iterations",
        "steps_accepted",
        "steps_rejected",
        "dt_shrinks",
        "dc_gmin_steps",
        "dc_source_steps",
        "factor_reuse_hits",
        "factor_reuse_misses",
        "hazard.near_singular_pivot",
        "hazard.pivot_growth",
        "hazard.rank1_breakdown",
        "hazard.nonfinite",
        "hazard.refinement_stall",
        "hazard.ill_conditioned",
        "demote.stale",
        "demote.refactor",
        "demote.symbolic",
        "demote.dense",
        "refinement.rounds",
    ];

    /// Publishes each counter to `recorder` under its
    /// [`COUNTER_NAMES`] name. Zero counters are emitted too, so
    /// aggregate key sets do not depend on which code paths ran.
    pub fn emit_to(&self, recorder: &dyn Recorder) {
        for (name, value) in COUNTER_NAMES.iter().zip(self.as_array()) {
            recorder.add(name, value);
        }
    }

    /// Counter values in [`COUNTER_NAMES`] order.
    pub fn as_array(&self) -> [u64; 19] {
        [
            self.newton_iterations,
            self.steps_accepted,
            self.steps_rejected,
            self.dt_shrinks,
            self.dc_gmin_steps,
            self.dc_source_steps,
            self.factor_reuse_hits,
            self.factor_reuse_misses,
            self.hazard_near_singular_pivot,
            self.hazard_pivot_growth,
            self.hazard_rank1_breakdown,
            self.hazard_nonfinite,
            self.hazard_refinement_stall,
            self.hazard_ill_conditioned,
            self.demote_stale,
            self.demote_refactor,
            self.demote_symbolic,
            self.demote_dense,
            self.refinement_rounds,
        ]
    }

    /// Hazard counters paired with their [`NumericalHazard::label`]s,
    /// in [`NumericalHazard::ALL`] order — the shape canonical-report
    /// markers and `experiments explain` render from.
    pub fn hazards(&self) -> [(&'static str, u64); 6] {
        [
            ("near-singular-pivot", self.hazard_near_singular_pivot),
            ("pivot-growth", self.hazard_pivot_growth),
            ("rank1-breakdown", self.hazard_rank1_breakdown),
            ("non-finite", self.hazard_nonfinite),
            ("refinement-stall", self.hazard_refinement_stall),
            ("ill-conditioned", self.hazard_ill_conditioned),
        ]
    }

    /// Demotion counters paired with their [`DemotionTier::label`]s, in
    /// [`DemotionTier::ALL`] (cheapest-first) order.
    pub fn demotions(&self) -> [(&'static str, u64); 4] {
        [
            ("stale", self.demote_stale),
            ("refactor", self.demote_refactor),
            ("symbolic", self.demote_symbolic),
            ("dense", self.demote_dense),
        ]
    }
}

impl Add for SolverSnapshot {
    type Output = SolverSnapshot;

    fn add(self, rhs: SolverSnapshot) -> SolverSnapshot {
        SolverSnapshot {
            newton_iterations: self.newton_iterations + rhs.newton_iterations,
            steps_accepted: self.steps_accepted + rhs.steps_accepted,
            steps_rejected: self.steps_rejected + rhs.steps_rejected,
            dt_shrinks: self.dt_shrinks + rhs.dt_shrinks,
            dc_gmin_steps: self.dc_gmin_steps + rhs.dc_gmin_steps,
            dc_source_steps: self.dc_source_steps + rhs.dc_source_steps,
            factor_reuse_hits: self.factor_reuse_hits + rhs.factor_reuse_hits,
            factor_reuse_misses: self.factor_reuse_misses + rhs.factor_reuse_misses,
            hazard_near_singular_pivot: self.hazard_near_singular_pivot
                + rhs.hazard_near_singular_pivot,
            hazard_pivot_growth: self.hazard_pivot_growth + rhs.hazard_pivot_growth,
            hazard_rank1_breakdown: self.hazard_rank1_breakdown + rhs.hazard_rank1_breakdown,
            hazard_nonfinite: self.hazard_nonfinite + rhs.hazard_nonfinite,
            hazard_refinement_stall: self.hazard_refinement_stall + rhs.hazard_refinement_stall,
            hazard_ill_conditioned: self.hazard_ill_conditioned + rhs.hazard_ill_conditioned,
            demote_stale: self.demote_stale + rhs.demote_stale,
            demote_refactor: self.demote_refactor + rhs.demote_refactor,
            demote_symbolic: self.demote_symbolic + rhs.demote_symbolic,
            demote_dense: self.demote_dense + rhs.demote_dense,
            refinement_rounds: self.refinement_rounds + rhs.refinement_rounds,
            phases: self.phases + rhs.phases,
        }
    }
}

impl AddAssign for SolverSnapshot {
    fn add_assign(&mut self, rhs: SolverSnapshot) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::AggregatingRecorder;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = SolverMetrics::new();
        m.newton_iteration();
        m.newton_iteration();
        m.step_accepted();
        m.step_rejected();
        m.dt_shrink();
        m.dc_gmin_step();
        m.dc_source_step();
        m.factor_reuse_hit();
        m.factor_reuse_hit();
        m.factor_reuse_miss();
        m.hazard(NumericalHazard::Rank1Breakdown);
        m.hazard(NumericalHazard::NonFinite);
        m.hazard(NumericalHazard::NonFinite);
        m.demotion(DemotionTier::Refactor);
        m.refinement_round();
        let snap = m.snapshot();
        assert_eq!(snap.newton_iterations, 2);
        assert_eq!(snap.steps_accepted, 1);
        assert_eq!(snap.steps_rejected, 1);
        assert_eq!(snap.dt_shrinks, 1);
        assert_eq!(snap.dc_gmin_steps, 1);
        assert_eq!(snap.dc_source_steps, 1);
        assert_eq!(snap.factor_reuse_hits, 2);
        assert_eq!(snap.factor_reuse_misses, 1);
        assert_eq!(snap.hazard_rank1_breakdown, 1);
        assert_eq!(snap.hazard_nonfinite, 2);
        assert_eq!(snap.hazard_near_singular_pivot, 0);
        assert_eq!(snap.demote_refactor, 1);
        assert_eq!(snap.demote_dense, 0);
        assert_eq!(snap.refinement_rounds, 1);
    }

    #[test]
    fn every_hazard_and_tier_lands_on_its_own_counter() {
        let m = SolverMetrics::new();
        for h in NumericalHazard::ALL {
            m.hazard(h);
        }
        for t in DemotionTier::ALL {
            m.demotion(t);
        }
        let snap = m.snapshot();
        for (label, count) in snap.hazards() {
            assert_eq!(count, 1, "hazard {label}");
        }
        for (label, count) in snap.demotions() {
            assert_eq!(count, 1, "demotion {label}");
        }
        // The label pairing matches the authoritative enums.
        for ((label, _), h) in snap.hazards().iter().zip(NumericalHazard::ALL) {
            assert_eq!(*label, h.label());
        }
        for ((label, _), t) in snap.demotions().iter().zip(DemotionTier::ALL) {
            assert_eq!(*label, t.label());
        }
    }

    #[test]
    fn snapshots_add_fieldwise() {
        let a = SolverSnapshot {
            newton_iterations: 10,
            steps_accepted: 5,
            ..SolverSnapshot::default()
        };
        let b = SolverSnapshot {
            newton_iterations: 7,
            dt_shrinks: 2,
            ..SolverSnapshot::default()
        };
        let mut sum = a;
        sum += b;
        assert_eq!(sum.newton_iterations, 17);
        assert_eq!(sum.steps_accepted, 5);
        assert_eq!(sum.dt_shrinks, 2);
    }

    #[test]
    fn emit_publishes_every_counter_even_zeroes() {
        let rec = AggregatingRecorder::new();
        let snap = SolverSnapshot {
            newton_iterations: 3,
            ..SolverSnapshot::default()
        };
        snap.emit_to(&rec);
        let agg = rec.snapshot();
        for name in COUNTER_NAMES {
            assert!(agg.counters.contains_key(name), "{name} missing");
        }
        assert_eq!(agg.counters["solver.newton_iterations"], 3);
        assert_eq!(agg.counters["solver.dt_shrinks"], 0);
    }

    #[test]
    fn field_names_stay_in_sync_with_counter_names_and_as_array() {
        // The recorder names are exactly the field names with the
        // `solver.` prefix, position for position.
        for (counter, field) in COUNTER_NAMES.iter().zip(SolverSnapshot::FIELDS) {
            assert_eq!(*counter, format!("solver.{field}"));
        }
        // Distinct per-position values prove as_array/emit_to use the
        // same ordering as FIELDS: the value emitted under each name
        // matches the field the name claims.
        let snap = SolverSnapshot {
            newton_iterations: 1,
            steps_accepted: 2,
            steps_rejected: 3,
            dt_shrinks: 4,
            dc_gmin_steps: 5,
            dc_source_steps: 6,
            factor_reuse_hits: 7,
            factor_reuse_misses: 8,
            hazard_near_singular_pivot: 9,
            hazard_pivot_growth: 10,
            hazard_rank1_breakdown: 11,
            hazard_nonfinite: 12,
            hazard_refinement_stall: 13,
            hazard_ill_conditioned: 14,
            demote_stale: 15,
            demote_refactor: 16,
            demote_symbolic: 17,
            demote_dense: 18,
            refinement_rounds: 19,
            ..SolverSnapshot::default()
        };
        assert_eq!(
            snap.as_array(),
            [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19]
        );
        let rec = AggregatingRecorder::new();
        snap.emit_to(&rec);
        let agg = rec.snapshot();
        for (i, field) in SolverSnapshot::FIELDS.iter().enumerate() {
            assert_eq!(
                agg.counters[&format!("solver.{field}")],
                (i + 1) as u64,
                "{field} emitted out of position"
            );
        }
    }

    #[test]
    fn attached_profiler_totals_reach_the_snapshot() {
        use obs::profile::Phase;

        let profile = Arc::new(PhaseProfiler::new());
        let m = SolverMetrics::new().with_profile(Arc::clone(&profile));
        assert!(m.snapshot().phases.is_empty());
        profile.add_ns(Phase::Factor, 1234, 2);
        let snap = m.snapshot();
        assert_eq!(snap.phases.ns(Phase::Factor), 1234);
        assert_eq!(snap.phases.calls(Phase::Factor), 2);
        // Adding snapshots sums the phase totals too.
        let sum = snap + snap;
        assert_eq!(sum.phases.ns(Phase::Factor), 2468);
        // Without a profiler the phase block stays zero.
        assert!(SolverMetrics::new().snapshot().phases.is_empty());
    }

    #[test]
    fn spans_flow_to_the_attached_recorder() {
        let rec = Arc::new(AggregatingRecorder::new());
        let m = SolverMetrics::with_recorder(rec.clone());
        m.record_span("anasim.dc", Duration::from_millis(2));
        assert_eq!(rec.snapshot().spans["anasim.dc"].count(), 1);
        // Without a recorder, spans are silently dropped.
        SolverMetrics::new().record_span("anasim.dc", Duration::from_millis(1));
    }
}
