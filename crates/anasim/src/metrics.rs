//! Per-session solver metrics.
//!
//! A [`SolverMetrics`] handle is owned by whoever runs an analysis (a
//! campaign worker, a bench experiment, a test) and threaded into the
//! solvers through [`crate::robust::SolveSettings`]. Counters are
//! atomics, so one handle can be shared across an analysis that retries
//! internally; each worker in a parallel campaign gets its *own* handle,
//! which is what makes per-fault counts exact — there is no process- or
//! thread-global state to bleed between consecutive analyses.
//!
//! An optional [`obs::Recorder`] receives wall-clock spans as they
//! close (`anasim.dc`, `anasim.transient`, `anasim.ac`). Counters stay
//! in the atomics until the owner snapshots them, so deterministic
//! quantities can be emitted in a deterministic order after parallel
//! work completes.

use std::fmt;
use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use obs::profile::{PhaseProfiler, PhaseSnapshot};
use obs::Recorder;

/// Counter names under which [`SolverSnapshot::emit_to`] publishes to a
/// recorder, in emission order.
pub const COUNTER_NAMES: [&str; 8] = [
    "solver.newton_iterations",
    "solver.steps_accepted",
    "solver.steps_rejected",
    "solver.dt_shrinks",
    "solver.dc_gmin_steps",
    "solver.dc_source_steps",
    "solver.factor_reuse_hits",
    "solver.factor_reuse_misses",
];

/// Live, thread-safe solver counters plus an optional span recorder.
#[derive(Default)]
pub struct SolverMetrics {
    newton_iterations: AtomicU64,
    steps_accepted: AtomicU64,
    steps_rejected: AtomicU64,
    dt_shrinks: AtomicU64,
    dc_gmin_steps: AtomicU64,
    dc_source_steps: AtomicU64,
    factor_reuse_hits: AtomicU64,
    factor_reuse_misses: AtomicU64,
    recorder: Option<Arc<dyn Recorder>>,
    profile: Option<Arc<PhaseProfiler>>,
}

impl fmt::Debug for SolverMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverMetrics")
            .field("snapshot", &self.snapshot())
            .field("has_recorder", &self.recorder.is_some())
            .finish()
    }
}

impl SolverMetrics {
    /// Fresh counters with no span recorder.
    pub fn new() -> Self {
        SolverMetrics::default()
    }

    /// Fresh counters whose spans are forwarded to `recorder`.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Self {
        SolverMetrics {
            recorder: Some(recorder),
            ..SolverMetrics::default()
        }
    }

    /// `self` with a [`PhaseProfiler`] attached (builder style):
    /// [`SolverMetrics::snapshot`] folds the profiler's per-phase
    /// nanosecond totals into [`SolverSnapshot::phases`]. The handle
    /// only links the profiler to the snapshot; arming the solver hot
    /// path itself goes through
    /// [`crate::robust::SolveSettings::profile`].
    pub fn with_profile(mut self, profile: Arc<PhaseProfiler>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// One Newton iteration performed.
    #[inline]
    pub fn newton_iteration(&self) {
        self.newton_iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// One transient timestep accepted.
    #[inline]
    pub fn step_accepted(&self) {
        self.steps_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// One transient timestep rejected (non-convergence at this dt).
    #[inline]
    pub fn step_rejected(&self) {
        self.steps_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One dt halving after a rejected step.
    #[inline]
    pub fn dt_shrink(&self) {
        self.dt_shrinks.fetch_add(1, Ordering::Relaxed);
    }

    /// One gmin-stepping homotopy stage solved during DC.
    #[inline]
    pub fn dc_gmin_step(&self) {
        self.dc_gmin_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// One source-stepping homotopy stage solved during DC.
    #[inline]
    pub fn dc_source_step(&self) {
        self.dc_source_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// One Newton iteration served by a cached factorisation (a
    /// modified-Newton stale step, a cached linear solve, or a
    /// Sherman–Morrison rank-1 application).
    #[inline]
    pub fn factor_reuse_hit(&self) {
        self.factor_reuse_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One Newton iteration that (re)factorised the system matrix.
    #[inline]
    pub fn factor_reuse_miss(&self) {
        self.factor_reuse_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Reports a completed analysis span (e.g. `anasim.dc`) to the
    /// attached recorder, if any.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        if let Some(recorder) = &self.recorder {
            recorder.span(name, elapsed);
        }
    }

    /// The attached span recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.recorder.as_ref()
    }

    /// The attached phase profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<PhaseProfiler>> {
        self.profile.as_ref()
    }

    /// A point-in-time copy of all counters, including the per-phase
    /// nanosecond totals of an attached profiler (zero when disarmed).
    pub fn snapshot(&self) -> SolverSnapshot {
        SolverSnapshot {
            newton_iterations: self.newton_iterations.load(Ordering::Relaxed),
            steps_accepted: self.steps_accepted.load(Ordering::Relaxed),
            steps_rejected: self.steps_rejected.load(Ordering::Relaxed),
            dt_shrinks: self.dt_shrinks.load(Ordering::Relaxed),
            dc_gmin_steps: self.dc_gmin_steps.load(Ordering::Relaxed),
            dc_source_steps: self.dc_source_steps.load(Ordering::Relaxed),
            factor_reuse_hits: self.factor_reuse_hits.load(Ordering::Relaxed),
            factor_reuse_misses: self.factor_reuse_misses.load(Ordering::Relaxed),
            phases: self.profile.as_ref().map(|p| p.snapshot()).unwrap_or_default(),
        }
    }
}

/// An immutable copy of solver counters; add snapshots to aggregate
/// across analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverSnapshot {
    /// Newton iterations performed.
    pub newton_iterations: u64,
    /// Transient timesteps accepted.
    pub steps_accepted: u64,
    /// Transient timesteps rejected.
    pub steps_rejected: u64,
    /// dt halvings after rejected steps.
    pub dt_shrinks: u64,
    /// gmin homotopy stages solved.
    pub dc_gmin_steps: u64,
    /// Source-stepping homotopy stages solved.
    pub dc_source_steps: u64,
    /// Newton iterations served by a cached factorisation.
    pub factor_reuse_hits: u64,
    /// Newton iterations that (re)factorised the system matrix.
    pub factor_reuse_misses: u64,
    /// Per-phase self-time nanoseconds and span counts from an attached
    /// [`PhaseProfiler`]; all-zero when profiling was disarmed. Being
    /// wall-clock measurements these are *not* deterministic, so they
    /// never reach canonical report output — they surface only through
    /// the bench sidecar, the phase table and trace exports.
    pub phases: PhaseSnapshot,
}

impl SolverSnapshot {
    /// Bare field names in [`SolverSnapshot::as_array`] order; the
    /// recorder-facing [`COUNTER_NAMES`] are these with a `solver.`
    /// prefix. Keeping one authoritative name list next to the value
    /// list stops the two from drifting into positional magic.
    pub const FIELDS: [&'static str; 8] = [
        "newton_iterations",
        "steps_accepted",
        "steps_rejected",
        "dt_shrinks",
        "dc_gmin_steps",
        "dc_source_steps",
        "factor_reuse_hits",
        "factor_reuse_misses",
    ];

    /// Publishes each counter to `recorder` under its
    /// [`COUNTER_NAMES`] name. Zero counters are emitted too, so
    /// aggregate key sets do not depend on which code paths ran.
    pub fn emit_to(&self, recorder: &dyn Recorder) {
        for (name, value) in COUNTER_NAMES.iter().zip(self.as_array()) {
            recorder.add(name, value);
        }
    }

    /// Counter values in [`COUNTER_NAMES`] order.
    pub fn as_array(&self) -> [u64; 8] {
        [
            self.newton_iterations,
            self.steps_accepted,
            self.steps_rejected,
            self.dt_shrinks,
            self.dc_gmin_steps,
            self.dc_source_steps,
            self.factor_reuse_hits,
            self.factor_reuse_misses,
        ]
    }
}

impl Add for SolverSnapshot {
    type Output = SolverSnapshot;

    fn add(self, rhs: SolverSnapshot) -> SolverSnapshot {
        SolverSnapshot {
            newton_iterations: self.newton_iterations + rhs.newton_iterations,
            steps_accepted: self.steps_accepted + rhs.steps_accepted,
            steps_rejected: self.steps_rejected + rhs.steps_rejected,
            dt_shrinks: self.dt_shrinks + rhs.dt_shrinks,
            dc_gmin_steps: self.dc_gmin_steps + rhs.dc_gmin_steps,
            dc_source_steps: self.dc_source_steps + rhs.dc_source_steps,
            factor_reuse_hits: self.factor_reuse_hits + rhs.factor_reuse_hits,
            factor_reuse_misses: self.factor_reuse_misses + rhs.factor_reuse_misses,
            phases: self.phases + rhs.phases,
        }
    }
}

impl AddAssign for SolverSnapshot {
    fn add_assign(&mut self, rhs: SolverSnapshot) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::AggregatingRecorder;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = SolverMetrics::new();
        m.newton_iteration();
        m.newton_iteration();
        m.step_accepted();
        m.step_rejected();
        m.dt_shrink();
        m.dc_gmin_step();
        m.dc_source_step();
        m.factor_reuse_hit();
        m.factor_reuse_hit();
        m.factor_reuse_miss();
        let snap = m.snapshot();
        assert_eq!(snap.newton_iterations, 2);
        assert_eq!(snap.steps_accepted, 1);
        assert_eq!(snap.steps_rejected, 1);
        assert_eq!(snap.dt_shrinks, 1);
        assert_eq!(snap.dc_gmin_steps, 1);
        assert_eq!(snap.dc_source_steps, 1);
        assert_eq!(snap.factor_reuse_hits, 2);
        assert_eq!(snap.factor_reuse_misses, 1);
    }

    #[test]
    fn snapshots_add_fieldwise() {
        let a = SolverSnapshot {
            newton_iterations: 10,
            steps_accepted: 5,
            ..SolverSnapshot::default()
        };
        let b = SolverSnapshot {
            newton_iterations: 7,
            dt_shrinks: 2,
            ..SolverSnapshot::default()
        };
        let mut sum = a;
        sum += b;
        assert_eq!(sum.newton_iterations, 17);
        assert_eq!(sum.steps_accepted, 5);
        assert_eq!(sum.dt_shrinks, 2);
    }

    #[test]
    fn emit_publishes_every_counter_even_zeroes() {
        let rec = AggregatingRecorder::new();
        let snap = SolverSnapshot {
            newton_iterations: 3,
            ..SolverSnapshot::default()
        };
        snap.emit_to(&rec);
        let agg = rec.snapshot();
        for name in COUNTER_NAMES {
            assert!(agg.counters.contains_key(name), "{name} missing");
        }
        assert_eq!(agg.counters["solver.newton_iterations"], 3);
        assert_eq!(agg.counters["solver.dt_shrinks"], 0);
    }

    #[test]
    fn field_names_stay_in_sync_with_counter_names_and_as_array() {
        // The recorder names are exactly the field names with the
        // `solver.` prefix, position for position.
        for (counter, field) in COUNTER_NAMES.iter().zip(SolverSnapshot::FIELDS) {
            assert_eq!(*counter, format!("solver.{field}"));
        }
        // Distinct per-position values prove as_array/emit_to use the
        // same ordering as FIELDS: the value emitted under each name
        // matches the field the name claims.
        let snap = SolverSnapshot {
            newton_iterations: 1,
            steps_accepted: 2,
            steps_rejected: 3,
            dt_shrinks: 4,
            dc_gmin_steps: 5,
            dc_source_steps: 6,
            factor_reuse_hits: 7,
            factor_reuse_misses: 8,
            ..SolverSnapshot::default()
        };
        assert_eq!(snap.as_array(), [1, 2, 3, 4, 5, 6, 7, 8]);
        let rec = AggregatingRecorder::new();
        snap.emit_to(&rec);
        let agg = rec.snapshot();
        for (i, field) in SolverSnapshot::FIELDS.iter().enumerate() {
            assert_eq!(
                agg.counters[&format!("solver.{field}")],
                (i + 1) as u64,
                "{field} emitted out of position"
            );
        }
    }

    #[test]
    fn attached_profiler_totals_reach_the_snapshot() {
        use obs::profile::Phase;

        let profile = Arc::new(PhaseProfiler::new());
        let m = SolverMetrics::new().with_profile(Arc::clone(&profile));
        assert!(m.snapshot().phases.is_empty());
        profile.add_ns(Phase::Factor, 1234, 2);
        let snap = m.snapshot();
        assert_eq!(snap.phases.ns(Phase::Factor), 1234);
        assert_eq!(snap.phases.calls(Phase::Factor), 2);
        // Adding snapshots sums the phase totals too.
        let sum = snap + snap;
        assert_eq!(sum.phases.ns(Phase::Factor), 2468);
        // Without a profiler the phase block stays zero.
        assert!(SolverMetrics::new().snapshot().phases.is_empty());
    }

    #[test]
    fn spans_flow_to_the_attached_recorder() {
        let rec = Arc::new(AggregatingRecorder::new());
        let m = SolverMetrics::with_recorder(rec.clone());
        m.record_span("anasim.dc", Duration::from_millis(2));
        assert_eq!(rec.snapshot().spans["anasim.dc"].count(), 1);
        // Without a recorder, spans are silently dropped.
        SolverMetrics::new().record_span("anasim.dc", Duration::from_millis(1));
    }
}
