//! The linear-solver core under the Newton iteration: backend
//! selection, symbolic-structure and factorisation caching, golden
//! warm-starts and rank-1 fault updates.
//!
//! The Newton hot loop in [`crate::mna`] solves one linearised MNA
//! system per iteration. Historically that meant one dense LU
//! factorisation per iteration; this module supplies the machinery that
//! makes the linear algebra cheap and *reusable*:
//!
//! * [`Backend`] — dense ([`linsys::matrix::Lu`]) or sparse
//!   ([`linsys::sparse::SparseLu`]) linear algebra. Both produce
//!   bit-identical solutions (the sparse factorisation replicates the
//!   dense pivot order and arithmetic, and [`LinearFactor::solve_into`]
//!   normalises zero signs on both), so canonical campaign reports do
//!   not depend on the backend.
//! * [`SolverContext`] — per-analysis mutable state that persists
//!   across Newton iterations *and* timesteps: the assembled system
//!   workspace, the sparse symbolic structure (computed once per
//!   (netlist, companion-mode) and reused), and the cached
//!   factorisation keyed by [`FactorKey`]. The Newton loop consults the
//!   cache to skip refactorisation while the iterate is contracting
//!   ("modified Newton") and to solve linear systems with a single
//!   back-substitution per step.
//! * [`WarmStart`] — a golden operating point mapped onto a faulty
//!   netlist's unknown layout, so fault extractions seed DC from the
//!   golden solution instead of re-running the homotopy chain.
//! * [`Rank1Cache`] / [`Rank1Setup`] — Sherman–Morrison support: a
//!   bridge fault on a linear netlist is a rank-1 conductance update
//!   `g·w·wᵀ` to the golden matrix, so the faulty system is solved from
//!   the *golden* factorisation captured during golden extraction,
//!   never factoring the faulty matrix at all.
//!
//! The reuse *policy* (when to trust a stale factorisation, when to
//! force a refactorisation) lives in [`crate::mna`]; everything here is
//! deliberately deterministic and backend-symmetric so the policy makes
//! identical decisions under either backend.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use linsys::matrix::{Lu, Matrix};
use linsys::sparse::{SparseLu, SparseMatrix, SparseStructure, SparseWorkspace};
use linsys::SingularMatrixError;

use crate::mna::MnaLayout;

/// Which linear-algebra backend the Newton loop assembles and factors
/// with.
///
/// The two backends produce bit-identical solutions; sparse is the
/// default because MNA systems are sparse and the symbolic analysis is
/// computed once per structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Dense row-major matrices with per-factorisation `O(n³)` LU.
    Dense,
    /// CSC matrices with structure-reusing Gilbert–Peierls LU.
    #[default]
    Sparse,
}

impl Backend {
    /// Parses `"dense"` / `"sparse"` (CLI flag format).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "dense" => Some(Backend::Dense),
            "sparse" => Some(Backend::Sparse),
            _ => None,
        }
    }

    /// The CLI/report label: `"dense"` or `"sparse"`.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::Sparse => "sparse",
        }
    }
}

/// Anything device stamps can be assembled into: the dense and sparse
/// system matrices, plus the structure probe that records positions.
pub trait MnaMatrix {
    /// Adds `value` at `(r, c)`.
    fn add(&mut self, r: usize, c: usize, value: f64);
    /// Resets the target for a fresh assembly pass.
    fn clear(&mut self);
}

impl MnaMatrix for Matrix {
    #[inline]
    fn add(&mut self, r: usize, c: usize, value: f64) {
        Matrix::add(self, r, c, value);
    }
    fn clear(&mut self) {
        Matrix::clear(self);
    }
}

impl MnaMatrix for SparseMatrix {
    #[inline]
    fn add(&mut self, r: usize, c: usize, value: f64) {
        SparseMatrix::add(self, r, c, value);
    }
    fn clear(&mut self) {
        SparseMatrix::clear(self);
    }
}

/// Records which `(row, col)` positions a stamping pass touches; used
/// to build the sparse symbolic structure once per (netlist, mode).
#[derive(Debug, Default)]
pub struct PositionProbe {
    positions: Vec<(usize, usize)>,
}

impl PositionProbe {
    /// An empty probe.
    pub fn new() -> Self {
        PositionProbe::default()
    }

    /// The recorded positions (duplicates included).
    pub fn positions(&self) -> &[(usize, usize)] {
        &self.positions
    }

    /// Ensures every diagonal position up to `n` is present, so `gmin`
    /// sweeps and pivoting always have their slots regardless of the
    /// parameters the probe ran under.
    pub fn cover_diagonal(&mut self, n: usize) {
        for i in 0..n {
            self.positions.push((i, i));
        }
    }
}

impl MnaMatrix for PositionProbe {
    #[inline]
    fn add(&mut self, r: usize, c: usize, _value: f64) {
        self.positions.push((r, c));
    }
    fn clear(&mut self) {
        self.positions.clear();
    }
}

/// The assembled MNA system under one backend.
#[derive(Debug, Clone)]
pub enum SystemMatrix {
    /// Dense `n × n` workspace.
    Dense(Matrix),
    /// Sparse values over a shared [`SparseStructure`].
    Sparse(SparseMatrix),
}

impl SystemMatrix {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        match self {
            SystemMatrix::Dense(m) => m.rows(),
            SystemMatrix::Sparse(m) => m.n(),
        }
    }

    /// Zeroes the stored values, keeping structure and allocation.
    pub fn clear(&mut self) {
        match self {
            SystemMatrix::Dense(m) => m.clear(),
            SystemMatrix::Sparse(m) => m.clear(),
        }
    }

    /// Matrix–vector product into `out` (row-oriented, ascending
    /// columns — the same accumulation order under both backends, so
    /// results agree bit for bit on every nonzero).
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        match self {
            SystemMatrix::Dense(m) => m.mul_vec_into(x, out),
            SystemMatrix::Sparse(m) => m.mul_vec_into(x, out),
        }
    }

    /// Residual `A·x − b` into `out` in one pass: each row accumulates
    /// its product exactly as [`SystemMatrix::mul_vec_into`] does, then
    /// subtracts `b[r]` — the same operations the two-pass form
    /// performs, fused so the Newton stale-trial path touches `out`
    /// once instead of twice per iteration.
    pub fn residual_into(&self, x: &[f64], b: &[f64], out: &mut [f64]) {
        match self {
            SystemMatrix::Dense(m) => m.residual_into(x, b, out),
            SystemMatrix::Sparse(m) => m.residual_into(x, b, out),
        }
    }

    /// Residual `A·x − b` into `out` plus the componentwise gate scale
    /// `max_r(Σ_c |a_rc·x_c| + |b_r|)`, in one pass; returns
    /// `(residual_norm, scale)`. The acceptance gates for reused
    /// factorisations compare the residual against `scale`, never
    /// against an absolute number, so uniformly graded systems gate the
    /// same as O(1) ones.
    pub fn residual_gate_into(&self, x: &[f64], b: &[f64], out: &mut [f64]) -> (f64, f64) {
        match self {
            SystemMatrix::Dense(m) => m.residual_gate_into(x, b, out),
            SystemMatrix::Sparse(m) => m.residual_gate_into(x, b, out),
        }
    }

    /// 1-norm of the assembled matrix (bit-identical across backends),
    /// the scale fed to [`LinearFactor::condest`].
    pub fn norm_one(&self) -> f64 {
        match self {
            SystemMatrix::Dense(m) => m.norm_one(),
            SystemMatrix::Sparse(m) => m.norm_one(),
        }
    }

    /// Snapshot of the backing values (dense storage or CSC slots).
    pub fn values(&self) -> &[f64] {
        match self {
            SystemMatrix::Dense(m) => m.values(),
            SystemMatrix::Sparse(m) => m.values(),
        }
    }

    /// Restores a snapshot taken with [`SystemMatrix::values`] — the
    /// linear-baseline fast path that replaces re-stamping every linear
    /// device on every Newton iteration with one `memcpy`.
    pub fn load_values(&mut self, values: &[f64]) {
        match self {
            SystemMatrix::Dense(m) => m.load_values(values),
            SystemMatrix::Sparse(m) => m.load_values(values),
        }
    }

    /// Factorises the assembled system, recycling `reuse`'s
    /// allocations when the backends match.
    ///
    /// # Errors
    ///
    /// [`SingularMatrixError`] from either backend (identical pivot
    /// threshold and breakdown row).
    pub fn factor(
        &self,
        ws: &mut SparseWorkspace,
        reuse: Option<LinearFactor>,
    ) -> Result<LinearFactor, SingularMatrixError> {
        match self {
            SystemMatrix::Dense(m) => Ok(LinearFactor::Dense(Lu::factor(m)?)),
            SystemMatrix::Sparse(m) => {
                let mut slu = match reuse {
                    Some(LinearFactor::Sparse(s)) => s,
                    _ => SparseLu::default(),
                };
                slu.refactor(m, ws)?;
                Ok(LinearFactor::Sparse(slu))
            }
        }
    }
}

impl MnaMatrix for SystemMatrix {
    #[inline]
    fn add(&mut self, r: usize, c: usize, value: f64) {
        match self {
            SystemMatrix::Dense(m) => m.add(r, c, value),
            SystemMatrix::Sparse(m) => m.add(r, c, value),
        }
    }
    fn clear(&mut self) {
        SystemMatrix::clear(self);
    }
}

/// A factorisation that can be applied to right-hand sides.
///
/// This is the small abstraction the backends plug into; the concrete
/// types are [`linsys::matrix::Lu`] and [`linsys::sparse::SparseLu`].
pub trait LinearSolver {
    /// Solves `A·x = b` into `x` without allocating.
    fn solve_in_place(&self, b: &[f64], x: &mut [f64]);
    /// Matrix dimension.
    fn dimension(&self) -> usize;
}

impl LinearSolver for Lu {
    fn solve_in_place(&self, b: &[f64], x: &mut [f64]) {
        self.solve_into(b, x);
    }
    fn dimension(&self) -> usize {
        self.n()
    }
}

impl LinearSolver for SparseLu {
    fn solve_in_place(&self, b: &[f64], x: &mut [f64]) {
        self.solve_into(b, x);
    }
    fn dimension(&self) -> usize {
        self.n()
    }
}

/// A cached factorisation from either backend.
///
/// The variants differ in size (a `SparseLu` carries its pattern and
/// condest workspaces), but at most a handful of these exist per
/// solver context — one live cache slot plus the golden/rank-1 cache —
/// so boxing the large variant would buy nothing and cost an
/// indirection on the back-substitution hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LinearFactor {
    /// Dense LU.
    Dense(Lu),
    /// Sparse LU over a reusable pattern.
    Sparse(SparseLu),
}

impl LinearFactor {
    /// Solves `A·x = b` into `x` and normalises zero signs (`-0.0` →
    /// `+0.0`).
    ///
    /// The two factorisations agree bit for bit on every nonzero but
    /// may differ in the *sign* of exact zeros (the sparse code skips
    /// arithmetic on entries outside the pattern, and `-0.0 - (-0.0)`
    /// is `+0.0`). Normalising here makes the full solution vector —
    /// and therefore every downstream waveform and canonical report —
    /// bytewise identical across backends.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        match self {
            LinearFactor::Dense(lu) => lu.solve_in_place(b, x),
            LinearFactor::Sparse(slu) => slu.solve_in_place(b, x),
        }
        for v in x.iter_mut() {
            *v += 0.0;
        }
    }

    /// Element-growth factor observed while this factorisation was
    /// computed (bit-identical across backends).
    pub fn pivot_growth(&self) -> f64 {
        match self {
            LinearFactor::Dense(lu) => lu.pivot_growth(),
            LinearFactor::Sparse(slu) => slu.pivot_growth(),
        }
    }

    /// Hager 1-norm condition estimate `anorm · ||A⁻¹||₁` against this
    /// factorisation (bit-identical across backends).
    pub fn condest(&self, anorm: f64) -> f64 {
        match self {
            LinearFactor::Dense(lu) => lu.condest(anorm),
            LinearFactor::Sparse(slu) => slu.condest(anorm),
        }
    }

    /// Fault injection only: scales the first pivot, corrupting every
    /// subsequent solve the same way on both backends. This is how the
    /// numeric-chaos harness manufactures a factorisation whose solves
    /// fail the residual gate.
    pub fn chaos_perturb_pivot(&mut self, scale: f64) {
        match self {
            LinearFactor::Dense(lu) => lu.perturb_first_pivot(scale),
            LinearFactor::Sparse(slu) => slu.perturb_first_pivot(scale),
        }
    }
}

/// Cache key for a factorisation: everything the assembled matrix `A`
/// depends on *other than* the Newton iterate. Time and `source_scale`
/// only enter the right-hand side, so they are deliberately excluded —
/// a factorisation stays valid across timesteps at the same `dt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FactorKey {
    /// 0 = DC companion stamps, 1 = transient.
    pub mode: u8,
    /// Integrator discriminant (DC solves use a fixed sentinel).
    pub method: u8,
    /// `dt.to_bits()`; zero for DC.
    pub dt_bits: u64,
    /// `gmin.to_bits()` — gmin stepping changes the matrix.
    pub gmin_bits: u64,
}

/// A golden DC operating point, reusable as the Newton seed for faulty
/// variants of the same circuit.
///
/// Fault injection appends nodes and devices at the *end* of the
/// netlist, so golden node indices and the relative order of golden
/// branch currents survive injection; [`WarmStart::seed`] maps them
/// onto the faulty layout and leaves fault-introduced unknowns at zero.
#[derive(Debug, Clone)]
pub struct WarmStart {
    x: Vec<f64>,
    node_count: usize,
}

impl WarmStart {
    /// Captures a solved operating point over a layout with
    /// `node_count` nodes (including ground).
    pub fn new(x: Vec<f64>, node_count: usize) -> Self {
        WarmStart { x, node_count }
    }

    /// The captured solution vector.
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Seeds `x` (sized for `layout`) from the golden solution:
    /// matching node voltages and branch currents are copied, new
    /// unknowns stay at `0.0`.
    pub fn seed(&self, layout: &MnaLayout, x: &mut [f64]) {
        x.iter_mut().for_each(|v| *v = 0.0);
        let golden_nv = self.node_count.saturating_sub(1);
        let target_nv = layout.node_count().saturating_sub(1);
        let copy_nv = golden_nv.min(target_nv);
        x[..copy_nv].copy_from_slice(&self.x[..copy_nv]);
        let golden_branches = self.x.len() - golden_nv;
        for j in 0..golden_branches {
            let dst = target_nv + j;
            if dst < x.len() {
                x[dst] = self.x[golden_nv + j];
            }
        }
    }
}

/// A rank-1 conductance perturbation `g·w·wᵀ` with `w = e_pos − e_neg`
/// (`None` = ground, contributing nothing).
///
/// This is exactly what a bridge fault stamps on top of the golden
/// matrix, so a faulty linear system solves from the golden
/// factorisation via Sherman–Morrison.
#[derive(Debug, Clone, Copy)]
pub struct Rank1Delta {
    /// Unknown index of the bridge's first node (`None` for ground).
    pub pos: Option<usize>,
    /// Unknown index of the bridge's second node (`None` for ground).
    pub neg: Option<usize>,
    /// Bridge conductance in siemens.
    pub conductance: f64,
}

impl Rank1Delta {
    /// `wᵀ·v` for this delta's `w`.
    #[inline]
    pub fn w_dot(&self, v: &[f64]) -> f64 {
        self.pos.map_or(0.0, |i| v[i]) - self.neg.map_or(0.0, |i| v[i])
    }

    /// Writes `w` into `out` (which must be zeroed-compatible; it is
    /// overwritten entirely).
    pub fn w_into(&self, out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        if let Some(i) = self.pos {
            out[i] = 1.0;
        }
        if let Some(i) = self.neg {
            out[i] = -1.0;
        }
    }
}

/// Golden factorisations captured during golden extraction, keyed by
/// [`FactorKey`], shared read-only with every fault worker.
///
/// The cache is filled only by the golden run (before workers start)
/// and then frozen; a frozen cache ignores inserts. That makes every
/// lookup deterministic regardless of worker scheduling, which keeps
/// canonical campaign reports byte-identical at any worker count.
#[derive(Debug, Default)]
pub struct Rank1Cache {
    frozen: AtomicBool,
    map: Mutex<HashMap<FactorKey, Arc<LinearFactor>>>,
}

impl Rank1Cache {
    /// An empty, unfrozen cache.
    pub fn new() -> Self {
        Rank1Cache::default()
    }

    /// Stops further inserts; lookups keep working.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
    }

    /// Records `factor` under `key` unless frozen or already present.
    pub fn insert(&self, key: FactorKey, factor: &LinearFactor) {
        if self.frozen.load(Ordering::SeqCst) {
            return;
        }
        // A panicking worker poisons the mutex, but every mutation here
        // is a single `HashMap` operation that leaves the map
        // consistent even if the *caller* panicked mid-campaign — so
        // recover the guard instead of cascading the panic into every
        // surviving worker that still shares this cache.
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        map.entry(key).or_insert_with(|| Arc::new(factor.clone()));
    }

    /// The captured factorisation for `key`, if any.
    pub fn get(&self, key: &FactorKey) -> Option<Arc<LinearFactor>> {
        self.map
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .cloned()
    }

    /// Number of captured factorisations.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a solve should do with a [`Rank1Cache`].
#[derive(Debug, Clone)]
pub enum Rank1Action {
    /// Record every linear factorisation into the cache (golden run).
    Capture,
    /// Solve through the cached golden factorisation with this delta
    /// applied via Sherman–Morrison (fault run). Falls back to normal
    /// factorisation on a cache miss.
    Apply(Rank1Delta),
}

/// A rank-1 configuration threaded into an analysis through
/// [`crate::robust::SolveSettings`].
#[derive(Debug, Clone)]
pub struct Rank1Setup {
    /// The shared golden-factorisation cache.
    pub cache: Arc<Rank1Cache>,
    /// Capture into or apply through the cache.
    pub action: Rank1Action,
}

impl Rank1Setup {
    /// A capturing setup (golden extraction).
    pub fn capture(cache: Arc<Rank1Cache>) -> Self {
        Rank1Setup {
            cache,
            action: Rank1Action::Capture,
        }
    }

    /// An applying setup (fault extraction).
    pub fn apply(cache: Arc<Rank1Cache>, delta: Rank1Delta) -> Self {
        Rank1Setup {
            cache,
            action: Rank1Action::Apply(delta),
        }
    }
}

/// Per-analysis solver state that outlives individual Newton solves:
/// workspaces, the sparse symbolic structure per companion mode, and
/// the cached factorisation with its reuse bookkeeping.
///
/// One context serves a whole analysis — a DC solve including its
/// homotopy stages, or a transient march including its DC start — and
/// is *not* shared between analyses (each fault extraction owns its
/// own, which keeps parallel campaigns deterministic).
#[derive(Debug, Clone)]
pub struct SolverContext {
    pub(crate) backend: Backend,
    /// Sparse symbolic structures by companion mode (0 = DC,
    /// 1 = transient); built once per mode via a stamping probe.
    pub(crate) structures: [Option<Arc<SparseStructure>>; 2],
    /// The assembled-system workspace and the mode it was built for.
    pub(crate) sys: Option<(usize, SystemMatrix)>,
    /// Right-hand side workspace.
    pub(crate) b: Vec<f64>,
    /// Newton iterate workspace (`x_new`).
    pub(crate) x_new: Vec<f64>,
    /// Residual / rank-1 `w` workspace.
    pub(crate) resid: Vec<f64>,
    /// Correction / rank-1 `z` workspace.
    pub(crate) scratch: Vec<f64>,
    /// Refinement trial-iterate workspace.
    pub(crate) trial: Vec<f64>,
    /// Snapshot of the linear-device stamps (matrix values), taken on
    /// the first iteration of each solve and restored on later ones.
    pub(crate) baseline_a: Vec<f64>,
    /// Snapshot of the linear right-hand side.
    pub(crate) baseline_b: Vec<f64>,
    /// The cached factorisation and the key it was computed under.
    pub(crate) factor: Option<(FactorKey, LinearFactor)>,
    /// Sparse refactorisation scratch.
    pub(crate) ws: SparseWorkspace,
    /// Set when the reuse policy demands a refactorisation before the
    /// next linear solve.
    pub(crate) force_refactor: bool,
    /// Newton iterations taken on the current factorisation since it
    /// was last recomputed.
    pub(crate) stale_iters: u32,
    /// Solves remaining in the current distrust window: while nonzero,
    /// a nonlinear solve refactorises on its first iteration instead of
    /// trialling the cached factors. Set whenever a stale trial fails
    /// its contraction guard — during fast transients (source edges,
    /// switching) consecutive solves land in new operating regions
    /// where the cached Jacobian keeps losing, so skipping the doomed
    /// trial saves an assembled system, two back-substitutions and a
    /// wasted iteration per solve. The window decays so the solver
    /// re-probes reuse once the circuit settles.
    pub(crate) distrust: u8,
}

impl SolverContext {
    /// A fresh context for `backend`.
    pub fn new(backend: Backend) -> Self {
        SolverContext {
            backend,
            structures: [None, None],
            sys: None,
            b: Vec::new(),
            x_new: Vec::new(),
            resid: Vec::new(),
            scratch: Vec::new(),
            trial: Vec::new(),
            baseline_a: Vec::new(),
            baseline_b: Vec::new(),
            factor: None,
            ws: SparseWorkspace::default(),
            force_refactor: false,
            stale_iters: 0,
            distrust: 0,
        }
    }

    /// The backend this context assembles under.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Drops the cached factorisation and forces the next solve to
    /// refactor — called after non-convergence so a retry (e.g. at a
    /// halved timestep) starts from a fresh Jacobian.
    pub fn invalidate(&mut self) {
        self.factor = None;
        self.force_refactor = false;
        self.stale_iters = 0;
    }
}

impl Default for SolverContext {
    fn default() -> Self {
        SolverContext::new(Backend::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_and_labels() {
        assert_eq!(Backend::parse("dense"), Some(Backend::Dense));
        assert_eq!(Backend::parse("sparse"), Some(Backend::Sparse));
        assert_eq!(Backend::parse("fancy"), None);
        assert_eq!(Backend::Sparse.label(), "sparse");
        assert_eq!(Backend::default(), Backend::Sparse);
    }

    #[test]
    fn solve_into_normalises_zero_signs() {
        // A diagonal system whose solution contains -0.0 before
        // normalisation: x = -0.0 / 1.0.
        let mut m = Matrix::zeros(1, 1);
        m.add(0, 0, 1.0);
        let factor = LinearFactor::Dense(Lu::factor(&m).unwrap());
        let mut x = [f64::NAN];
        factor.solve_into(&[-0.0], &mut x);
        assert_eq!(x[0].to_bits(), 0.0_f64.to_bits(), "got {:e}", x[0]);
    }

    #[test]
    fn warm_start_maps_golden_unknowns_onto_larger_layout() {
        use crate::netlist::Netlist;
        use crate::source::SourceWaveform;

        // Golden: 2 non-ground nodes + 1 vsource branch.
        let mut golden = Netlist::new();
        let a = golden.node("a");
        let b = golden.node("b");
        golden.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(2.0));
        golden.resistor("R1", a, b, 1e3);
        golden.resistor("R2", b, Netlist::GROUND, 1e3);
        let warm = WarmStart::new(vec![2.0, 1.0, -1e-3], golden.node_count());

        // Faulty: one extra node and one extra vsource appended, the
        // way stuck-at injection does it.
        let mut faulty = golden.clone();
        let gen = faulty.node("fault:gen");
        faulty.vsource("fault:V", gen, Netlist::GROUND, SourceWaveform::dc(5.0));
        let layout = MnaLayout::new(&faulty);
        let mut x = vec![f64::NAN; layout.size()];
        warm.seed(&layout, &mut x);
        // Node voltages land on the same indices; the golden branch
        // current lands after the faulty node block; new unknowns zero.
        assert_eq!(x[0], 2.0);
        assert_eq!(x[1], 1.0);
        assert_eq!(x[2], 0.0); // fault:gen node, new
        assert_eq!(x[3], -1e-3); // V1 branch, shifted by the new node
        assert_eq!(x[4], 0.0); // fault:V branch, new
    }

    #[test]
    fn rank1_cache_freezes() {
        let cache = Rank1Cache::new();
        let key = FactorKey {
            mode: 0,
            method: 2,
            dt_bits: 0,
            gmin_bits: 0,
        };
        let mut m = Matrix::zeros(1, 1);
        m.add(0, 0, 2.0);
        let factor = LinearFactor::Dense(Lu::factor(&m).unwrap());
        cache.insert(key, &factor);
        assert_eq!(cache.len(), 1);
        cache.freeze();
        let key2 = FactorKey { mode: 1, ..key };
        cache.insert(key2, &factor);
        assert_eq!(cache.len(), 1, "frozen cache accepted an insert");
        assert!(cache.get(&key).is_some());
        assert!(cache.get(&key2).is_none());
    }

    #[test]
    fn rank1_cache_survives_a_panicking_worker() {
        // A worker that panics while holding the cache mutex poisons
        // it; the cache must keep serving the surviving workers (the
        // map itself is never left mid-mutation). Campaign-level
        // coverage lives in the faultsim chaos tests; this pins the
        // primitive.
        let cache = Arc::new(Rank1Cache::new());
        let key = FactorKey {
            mode: 0,
            method: 2,
            dt_bits: 0,
            gmin_bits: 0,
        };
        let mut m = Matrix::zeros(1, 1);
        m.add(0, 0, 2.0);
        let factor = LinearFactor::Dense(Lu::factor(&m).unwrap());
        cache.insert(key, &factor);
        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.map.lock().unwrap();
            panic!("worker dies mid-campaign");
        })
        .join();
        // All three accessors recover from the poison.
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.len(), 1);
        let key2 = FactorKey { mode: 1, ..key };
        cache.insert(key2, &factor);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn rank1_delta_dot_and_vector() {
        let delta = Rank1Delta {
            pos: Some(0),
            neg: Some(2),
            conductance: 1e-2,
        };
        let v = [3.0, 9.0, 1.0];
        assert_eq!(delta.w_dot(&v), 2.0);
        let mut w = [f64::NAN; 3];
        delta.w_into(&mut w);
        assert_eq!(w, [1.0, 0.0, -1.0]);
        // Grounded terminal contributes nothing.
        let grounded = Rank1Delta {
            pos: Some(1),
            neg: None,
            conductance: 1.0,
        };
        assert_eq!(grounded.w_dot(&v), 9.0);
    }
}
