use std::error::Error;
use std::fmt;

/// Error returned by `anasim` analyses.
///
/// All analysis entry points ([`crate::dc::dc_operating_point`],
/// [`crate::transient::TransientAnalysis::run`]) return this type on
/// failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The Newton–Raphson iteration failed to converge.
    ///
    /// Carries the simulation time at which convergence was lost (0.0 for a
    /// DC operating point), the worst residual seen on the final
    /// iteration, and how many Newton iterations ran before giving up.
    NoConvergence {
        /// Simulation time in seconds at which convergence failed.
        time: f64,
        /// Infinity norm of the residual on the last Newton iteration.
        residual: f64,
        /// Newton iterations performed by the failing solve.
        iterations: usize,
    },
    /// The MNA matrix was singular (e.g. a floating node with no DC path).
    SingularMatrix {
        /// Row index at which elimination found no usable pivot.
        row: usize,
    },
    /// An analysis parameter was invalid (non-positive timestep, reversed
    /// time interval, ...).
    InvalidParameter(String),
    /// The netlist references a node or device that does not exist.
    UnknownElement(String),
    /// A solver resource budget ([`crate::robust::SolveBudget`]) ran out
    /// before the analysis completed.
    BudgetExceeded {
        /// Simulation time in seconds reached when the budget expired.
        time: f64,
        /// Timesteps attempted so far.
        steps: usize,
        /// Which budget dimension was exhausted.
        kind: BudgetKind,
    },
    /// The analysis was cancelled cooperatively through a
    /// [`crate::robust::CancelToken`] (Ctrl-C, an embedding caller, a
    /// campaign shutting down). Not a solver failure: the circuit may
    /// have been perfectly solvable.
    Cancelled,
    /// A numerical hazard survived the entire tier-demotion ladder:
    /// every recovery tier (cached factor, refactor, symbolic rebuild,
    /// dense fallback) was tried and the hazard persisted. This is the
    /// typed replacement for NaN-poisoned reports and panics.
    Numerical {
        /// The hazard kind that exhausted the ladder.
        hazard: linsys::NumericalHazard,
        /// Simulation time in seconds at which it struck (0.0 for DC).
        time: f64,
    },
}

/// The budget dimension that ran out in
/// [`AnalysisError::BudgetExceeded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The timestep budget was exhausted.
    Steps,
    /// The wall-clock budget was exhausted.
    WallClock,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoConvergence {
                time,
                residual,
                iterations,
            } => write!(
                f,
                "newton iteration failed to converge at t = {time:.3e} s \
                 (residual {residual:.3e} after {iterations} iterations)"
            ),
            AnalysisError::SingularMatrix { row } => {
                write!(f, "singular MNA matrix at row {row}")
            }
            AnalysisError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AnalysisError::UnknownElement(name) => write!(f, "unknown element: {name}"),
            AnalysisError::BudgetExceeded { time, steps, kind } => {
                let what = match kind {
                    BudgetKind::Steps => "timestep budget",
                    BudgetKind::WallClock => "wall-clock budget",
                };
                write!(
                    f,
                    "{what} exhausted at t = {time:.3e} s after {steps} steps"
                )
            }
            AnalysisError::Cancelled => write!(f, "analysis cancelled by caller"),
            AnalysisError::Numerical { hazard, time } => write!(
                f,
                "numerical hazard {hazard} persisted through every recovery tier \
                 at t = {time:.3e} s"
            ),
        }
    }
}

impl Error for AnalysisError {}

impl From<linsys::SingularMatrixError> for AnalysisError {
    fn from(err: linsys::SingularMatrixError) -> Self {
        AnalysisError::SingularMatrix { row: err.row }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = AnalysisError::NoConvergence {
            time: 1e-3,
            residual: 0.5,
            iterations: 150,
        };
        let msg = err.to_string();
        assert!(msg.contains("converge"));
        assert!(msg.contains("1.000e-3"));
        assert!(msg.contains("150 iterations"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }

    #[test]
    fn numerical_hazard_reports_kind_and_time() {
        let err = AnalysisError::Numerical {
            hazard: linsys::NumericalHazard::Rank1Breakdown,
            time: 2e-6,
        };
        let msg = err.to_string();
        assert!(msg.contains("rank1-breakdown"), "{msg}");
        assert!(msg.contains("2.000e-6"), "{msg}");
    }

    #[test]
    fn singular_matrix_reports_row() {
        assert_eq!(
            AnalysisError::SingularMatrix { row: 3 }.to_string(),
            "singular MNA matrix at row 3"
        );
    }
}
