//! Circuit netlist representation and builder.

use std::collections::HashMap;

use crate::devices::{Device, DiodeParams, MosParams, MosPolarity, SwitchParams};
use crate::source::SourceWaveform;

/// An electrical node handle.
///
/// `NodeId(0)` is always the ground reference ([`Netlist::GROUND`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of this node (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// True if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A device handle returned by the netlist builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// Raw index of this device in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A complete circuit description: named nodes plus a device list.
///
/// Build incrementally with the `resistor`, `capacitor`, `vsource`, ...
/// methods, each of which returns a [`DeviceId`] that analyses use to
/// report branch quantities.
///
/// # Example
///
/// ```
/// use anasim::netlist::Netlist;
/// use anasim::source::SourceWaveform;
///
/// let mut nl = Netlist::new();
/// let n1 = nl.node("n1");
/// nl.vsource("V1", n1, Netlist::GROUND, SourceWaveform::dc(1.0));
/// nl.resistor("R1", n1, Netlist::GROUND, 50.0);
/// assert_eq!(nl.node_count(), 2); // ground + n1
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    devices: Vec<(String, Device)>,
    device_lookup: HashMap<String, DeviceId>,
}

impl Netlist {
    /// The ground (reference) node, index 0.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty netlist containing only the ground node.
    pub fn new() -> Self {
        let mut nl = Netlist {
            node_names: Vec::new(),
            node_lookup: HashMap::new(),
            devices: Vec::new(),
            device_lookup: HashMap::new(),
        };
        nl.node_names.push("0".to_string());
        nl.node_lookup.insert("0".to_string(), NodeId(0));
        nl
    }

    /// Returns the node with the given name, creating it if necessary.
    ///
    /// The name `"0"` always refers to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_lookup.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_lookup.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_lookup.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this netlist.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Looks up an existing device by name.
    pub fn find_device(&self, name: &str) -> Option<DeviceId> {
        self.device_lookup.get(name).copied()
    }

    /// Name of a device.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this netlist.
    pub fn device_name(&self, id: DeviceId) -> &str {
        &self.devices[id.0].0
    }

    /// The device referred to by `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this netlist.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0].1
    }

    /// Mutable access to a device (used by fault injection to rewrite
    /// elements in place).
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this netlist.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0].1
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Iterates over `(id, name, device)` in insertion order.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &str, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, (name, dev))| (DeviceId(i), name.as_str(), dev))
    }

    /// Number of MOSFET devices (the paper's transistor-count accounting).
    pub fn transistor_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|(_, d)| matches!(d, Device::Mosfet { .. }))
            .count()
    }

    fn push(&mut self, name: &str, device: Device) -> DeviceId {
        assert!(
            !self.device_lookup.contains_key(name),
            "duplicate device name: {name}"
        );
        let id = DeviceId(self.devices.len());
        self.devices.push((name.to_string(), device));
        self.device_lookup.insert(name.to_string(), id);
        id
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not finite and positive, or on duplicate name.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> DeviceId {
        assert!(ohms.is_finite() && ohms > 0.0, "resistance must be positive");
        self.push(name, Device::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not finite and positive, or on duplicate name.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> DeviceId {
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be positive"
        );
        self.push(
            name,
            Device::Capacitor {
                a,
                b,
                farads,
                ic: None,
            },
        )
    }

    /// Adds a capacitor with an initial condition `v(a) − v(b) = ic`
    /// honoured by UIC transient analysis.
    pub fn capacitor_ic(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
        ic: f64,
    ) -> DeviceId {
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be positive"
        );
        self.push(
            name,
            Device::Capacitor {
                a,
                b,
                farads,
                ic: Some(ic),
            },
        )
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not finite and positive, or on duplicate name.
    pub fn inductor(&mut self, name: &str, a: NodeId, b: NodeId, henries: f64) -> DeviceId {
        assert!(
            henries.is_finite() && henries > 0.0,
            "inductance must be positive"
        );
        self.push(name, Device::Inductor { a, b, henries })
    }

    /// Adds an independent voltage source.
    pub fn vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        wave: SourceWaveform,
    ) -> DeviceId {
        self.push(name, Device::Vsource { pos, neg, wave })
    }

    /// Adds an independent current source (current flows out of `pos`,
    /// through the external circuit, into `neg`).
    pub fn isource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        wave: SourceWaveform,
    ) -> DeviceId {
        self.push(name, Device::Isource { pos, neg, wave })
    }

    /// Adds a voltage-controlled voltage source.
    pub fn vcvs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        cpos: NodeId,
        cneg: NodeId,
        gain: f64,
    ) -> DeviceId {
        self.push(
            name,
            Device::Vcvs {
                pos,
                neg,
                cpos,
                cneg,
                gain,
            },
        )
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        cpos: NodeId,
        cneg: NodeId,
        gm: f64,
    ) -> DeviceId {
        self.push(
            name,
            Device::Vccs {
                pos,
                neg,
                cpos,
                cneg,
                gm,
            },
        )
    }

    /// Adds an N- or P-channel level-1 MOSFET.
    pub fn mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        polarity: MosPolarity,
        params: MosParams,
    ) -> DeviceId {
        self.push(
            name,
            Device::Mosfet {
                drain,
                gate,
                source,
                polarity,
                params,
            },
        )
    }

    /// Adds a junction diode.
    pub fn diode(
        &mut self,
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        params: DiodeParams,
    ) -> DeviceId {
        self.push(
            name,
            Device::Diode {
                anode,
                cathode,
                params,
            },
        )
    }

    /// Adds a voltage-controlled switch.
    pub fn switch(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        cpos: NodeId,
        cneg: NodeId,
        params: SwitchParams,
    ) -> DeviceId {
        self.push(
            name,
            Device::Switch {
                a,
                b,
                cpos,
                cneg,
                params,
            },
        )
    }

    /// True if any device is nonlinear.
    pub fn has_nonlinear_devices(&self) -> bool {
        self.devices.iter().any(|(_, d)| d.is_nonlinear())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_node_zero() {
        let nl = Netlist::new();
        assert_eq!(Netlist::GROUND.index(), 0);
        assert!(Netlist::GROUND.is_ground());
        assert_eq!(nl.node_name(Netlist::GROUND), "0");
    }

    #[test]
    fn node_names_are_interned() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        assert_eq!(a, a2);
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn zero_name_is_ground() {
        let mut nl = Netlist::new();
        assert_eq!(nl.node("0"), Netlist::GROUND);
    }

    #[test]
    fn devices_are_registered_and_named() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor("R1", a, Netlist::GROUND, 100.0);
        assert_eq!(nl.find_device("R1"), Some(r));
        assert_eq!(nl.device_name(r), "R1");
        assert_eq!(nl.device_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate device name")]
    fn duplicate_device_names_panic() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        nl.resistor("R1", a, Netlist::GROUND, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_resistance_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, -5.0);
    }

    #[test]
    fn transistor_count_counts_only_mosfets() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        nl.mosfet(
            "M1",
            a,
            a,
            Netlist::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_5um(),
        );
        nl.mosfet(
            "M2",
            a,
            a,
            Netlist::GROUND,
            MosPolarity::Pmos,
            MosParams::pmos_5um(),
        );
        assert_eq!(nl.transistor_count(), 2);
    }

    #[test]
    fn nonlinear_detection() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        assert!(!nl.has_nonlinear_devices());
        nl.diode("D1", a, Netlist::GROUND, DiodeParams::default());
        assert!(nl.has_nonlinear_devices());
    }

    #[test]
    fn device_iteration_in_order() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        nl.capacitor("C1", a, Netlist::GROUND, 1e-12);
        let names: Vec<&str> = nl.devices().map(|(_, n, _)| n).collect();
        assert_eq!(names, ["R1", "C1"]);
    }
}
