//! The convergence flight recorder.
//!
//! A [`FlightRecorder`] rides along a hard solve the way a crash
//! recorder rides an aircraft: while the solve is healthy it quietly
//! overwrites a bounded ring of per-iteration records, and when the
//! solve dies the owner freezes the ring into an [`obs::Postmortem`] —
//! the last-K iterations, the residual trajectory, a worst-node
//! histogram with indices resolved to netlist node *names*, the
//! escalation-ladder path and the budget state at death.
//!
//! The recorder is off by default and free when disarmed: solvers
//! receive it through [`SolveHooks`], and a disarmed hook is a `None`
//! branch per Newton iteration — no locks, no allocation. Armed, each
//! iteration is one mutex lock and one `Copy` store into preallocated
//! ring storage; names are resolved only at freeze time, never in the
//! hot loop.

use std::sync::Mutex;

use obs::postmortem::{HazardStep, LadderStep, Postmortem, PostmortemIteration};
use obs::ring::RingBuffer;

use crate::error::AnalysisError;
use crate::metrics::SolverMetrics;
use crate::mna::MnaLayout;
use crate::netlist::{NodeId, Netlist};

/// Which solve the recorded iterations belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolvePhase {
    /// Plain Newton on the DC system.
    #[default]
    DcDirect,
    /// gmin-stepping homotopy during DC.
    DcGmin,
    /// Source-stepping homotopy during DC.
    DcSource,
    /// The transient time-march.
    Transient,
}

impl SolvePhase {
    /// Stable string form used in postmortems, e.g. `dc.gmin`.
    pub fn label(self) -> &'static str {
        match self {
            SolvePhase::DcDirect => "dc.direct",
            SolvePhase::DcGmin => "dc.gmin",
            SolvePhase::DcSource => "dc.source",
            SolvePhase::Transient => "transient",
        }
    }
}

/// One Newton iteration as captured in the ring. `Copy`, so recording
/// never allocates.
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// Solve phase active when the iteration ran.
    pub phase: SolvePhase,
    /// Simulated time of the step being solved (0 for DC).
    pub time: f64,
    /// Step size being attempted (0 for DC).
    pub dt: f64,
    /// Iteration number within its Newton solve, from 1.
    pub iteration: u64,
    /// Worst per-unknown update magnitude.
    pub residual: f64,
    /// Index of the worst unknown in the MNA layout.
    pub worst_index: usize,
}

#[derive(Debug)]
struct FlightState {
    ring: RingBuffer<IterationRecord>,
    /// One name per MNA unknown, installed once per topology.
    names: Vec<String>,
    ladder: Vec<LadderStep>,
    hazards: Vec<HazardStep>,
    phase: SolvePhase,
    total_iterations: u64,
}

/// A bounded per-iteration trace of one (possibly retried) solve.
///
/// One recorder is shared across every escalation rung tried for the
/// same extraction, so the frozen postmortem shows the whole ladder
/// path. The mutex makes sharing through
/// [`crate::robust::SolveSettings`] (an `Arc`) safe; a recorder is
/// never contended in practice because each fault owns its own.
#[derive(Debug)]
pub struct FlightRecorder {
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// Default ring capacity: enough to hold the full Newton history of
    /// several failing steps without unbounded growth on a long march.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A recorder retaining the last `capacity` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            state: Mutex::new(FlightState {
                ring: RingBuffer::new(capacity),
                names: Vec::new(),
                ladder: Vec::new(),
                hazards: Vec::new(),
                phase: SolvePhase::default(),
                total_iterations: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightState> {
        self.state.lock().expect("flight recorder poisoned")
    }

    /// Installs the unknown-index → name table from a netlist and its
    /// MNA layout: node voltages resolve to node names, branch currents
    /// to `branch:<device>`. Idempotent — the first installation wins,
    /// so retried rungs over the same topology don't rebuild it.
    pub fn install_names(&self, netlist: &Netlist, layout: &MnaLayout) {
        let mut state = self.lock();
        if !state.names.is_empty() {
            return;
        }
        let mut names = vec![String::new(); layout.size()];
        for idx in 1..layout.node_count() {
            names[idx - 1] = netlist.node_name(NodeId(idx)).to_owned();
        }
        for (id, name, _) in netlist.devices() {
            if let Some(j) = layout.branch_index(id) {
                names[j] = format!("branch:{name}");
            }
        }
        state.names = names;
    }

    /// Declares which solve subsequent iterations belong to.
    pub fn set_phase(&self, phase: SolvePhase) {
        self.lock().phase = phase;
    }

    /// Records one Newton iteration. Called from the solver hot loop:
    /// one lock, one `Copy` store, no allocation.
    pub fn record_iteration(&self, time: f64, dt: f64, iteration: u64, residual: f64, worst_index: usize) {
        let mut state = self.lock();
        let phase = state.phase;
        state.total_iterations += 1;
        state.ring.push(IterationRecord {
            phase,
            time,
            dt,
            iteration,
            residual,
            worst_index,
        });
    }

    /// Opens a new escalation-ladder rung with outcome `pending`.
    pub fn begin_rung(&self, rung: usize, label: &str) {
        self.lock().ladder.push(LadderStep {
            rung: rung as u64,
            label: label.to_owned(),
            outcome: "pending".to_owned(),
        });
    }

    /// Closes the most recently opened rung with its outcome tag
    /// (e.g. `ok`, `no-convergence`, `budget`).
    pub fn end_rung(&self, outcome: &str) {
        if let Some(step) = self.lock().ladder.last_mut() {
            step.outcome = outcome.to_owned();
        }
    }

    /// Hazard entries retained per recorder: enough to narrate any
    /// realistic demotion story, bounded so a pathologically unstable
    /// solve cannot grow the postmortem without limit.
    pub const MAX_HAZARDS: usize = 32;

    /// Records one numerical hazard and the recovery action taken
    /// (e.g. `rank1-breakdown` → `demote:refactor`). Entries beyond
    /// [`FlightRecorder::MAX_HAZARDS`] are dropped — the *counters* in
    /// [`SolverMetrics`] stay exact; this trace exists so postmortems
    /// and `experiments explain` can narrate the order of events.
    pub fn record_hazard(&self, hazard: &str, action: &str, time: f64) {
        let mut state = self.lock();
        if state.hazards.len() < Self::MAX_HAZARDS {
            state.hazards.push(HazardStep {
                hazard: hazard.to_owned(),
                action: action.to_owned(),
                time,
            });
        }
    }

    /// Total Newton iterations recorded, including ones the ring has
    /// already overwritten.
    pub fn total_iterations(&self) -> u64 {
        self.lock().total_iterations
    }

    /// True once at least one iteration has been recorded.
    pub fn has_data(&self) -> bool {
        self.lock().total_iterations > 0
    }

    fn resolve(names: &[String], idx: usize) -> String {
        match names.get(idx) {
            Some(name) if !name.is_empty() => name.clone(),
            _ => format!("x[{idx}]"),
        }
    }

    /// Freezes the current state into a [`Postmortem`]. The recorder
    /// keeps its contents, so a later rung can still extend the trace.
    ///
    /// `label` names what was being solved (e.g. the fault), `error` is
    /// the terminal failure, and `budget_steps` is the step meter at
    /// death when a budget was armed.
    pub fn freeze(
        &self,
        label: &str,
        error: &AnalysisError,
        budget_steps: Option<u64>,
    ) -> Postmortem {
        let (time, residual) = match error {
            AnalysisError::NoConvergence { time, residual, .. } => (*time, *residual),
            AnalysisError::Numerical { time, .. } => (*time, f64::NAN),
            AnalysisError::BudgetExceeded { time, .. } => (*time, f64::NAN),
            _ => (0.0, f64::NAN),
        };
        self.freeze_with(label, error.to_string(), time, residual, budget_steps)
    }

    /// [`FlightRecorder::freeze`] for deaths that carry no
    /// [`AnalysisError`] — a caught solver panic, for instance. The
    /// free-form `error` string lands verbatim in
    /// [`Postmortem::error`]; time and residual come from the trace.
    pub fn freeze_panic(&self, label: &str, payload: &str) -> Postmortem {
        self.freeze_with(label, format!("panic: {payload}"), 0.0, f64::NAN, None)
    }

    fn freeze_with(
        &self,
        label: &str,
        error: String,
        time: f64,
        residual: f64,
        budget_steps: Option<u64>,
    ) -> Postmortem {
        let state = self.lock();
        // The trace with worst indices resolved to names, oldest first.
        let trace: Vec<PostmortemIteration> = state
            .ring
            .iter()
            .map(|rec| PostmortemIteration {
                phase: rec.phase.label().to_owned(),
                time: rec.time,
                dt: rec.dt,
                iteration: rec.iteration,
                residual: rec.residual,
                worst_index: rec.worst_index as u64,
                worst_node: Self::resolve(&state.names, rec.worst_index),
            })
            .collect();
        // Worst-offender histogram over the retained trace, descending
        // by count then name so output order is deterministic.
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for it in &trace {
            *counts.entry(it.worst_node.as_str()).or_default() += 1;
        }
        let mut worst_nodes: Vec<(String, u64)> = counts
            .into_iter()
            .map(|(name, count)| (name.to_owned(), count))
            .collect();
        worst_nodes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        // A terminal residual that is NAN (budget death mid-step) falls
        // back to the last recorded iteration's residual.
        let residual = if residual.is_nan() {
            trace.last().map_or(f64::INFINITY, |it| it.residual)
        } else {
            residual
        };
        Postmortem {
            label: label.to_owned(),
            error,
            time,
            residual,
            total_iterations: state.total_iterations,
            trace,
            worst_nodes,
            ladder: state.ladder.clone(),
            hazards: state.hazards.clone(),
            budget_steps,
        }
    }
}

/// The per-solve observer bundle threaded through
/// [`crate::mna::newton_solve_budgeted`] and the analyses above it.
///
/// Every hook is an optional borrow: a fully disarmed bundle (the
/// default) costs the solver a few `None` branches per iteration and
/// performs no allocation and no clock reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveHooks<'a> {
    /// Counter handle ([`SolverMetrics`]) — iteration and step totals.
    pub metrics: Option<&'a SolverMetrics>,
    /// Flight recorder — bounded per-iteration trace for postmortems.
    pub flight: Option<&'a FlightRecorder>,
    /// Phase profiler ([`obs::profile::PhaseProfiler`]) — per-phase
    /// wall-time attribution of the Newton loop.
    pub profile: Option<&'a obs::profile::PhaseProfiler>,
    /// Numeric-chaos firing state ([`obs::NumericChaosState`]) —
    /// deterministic arithmetic fault injection. Disarmed, each
    /// injection site is one `None` branch.
    pub chaos: Option<&'a obs::NumericChaosState>,
}

impl<'a> SolveHooks<'a> {
    /// A fully disarmed bundle.
    pub fn none() -> Self {
        SolveHooks::default()
    }

    /// A bundle with only metrics armed (the pre-flight-recorder
    /// calling convention).
    pub fn metrics(metrics: Option<&'a SolverMetrics>) -> Self {
        SolveHooks {
            metrics,
            ..SolveHooks::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    fn divider() -> (Netlist, MnaLayout) {
        let mut nl = Netlist::new();
        let a = nl.node("in");
        let b = nl.node("out");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(1.0));
        nl.resistor("R1", a, b, 1e3);
        nl.resistor("R2", b, Netlist::GROUND, 1e3);
        let layout = MnaLayout::new(&nl);
        (nl, layout)
    }

    #[test]
    fn names_resolve_nodes_and_branches() {
        let (nl, layout) = divider();
        let flight = FlightRecorder::new(8);
        flight.install_names(&nl, &layout);
        flight.record_iteration(0.0, 0.0, 1, 0.5, 0);
        flight.record_iteration(0.0, 0.0, 2, 0.25, 2);
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 0.0,
                residual: 0.25,
                iterations: 2,
            },
            None,
        );
        assert_eq!(pm.trace[0].worst_node, "in");
        assert_eq!(pm.trace[1].worst_node, "branch:V1");
    }

    #[test]
    fn install_names_is_idempotent() {
        let (nl, layout) = divider();
        let flight = FlightRecorder::new(4);
        flight.install_names(&nl, &layout);
        // A second install (e.g. a retried rung) must not rebuild.
        flight.install_names(&nl, &layout);
        flight.record_iteration(0.0, 0.0, 1, 1.0, 1);
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 0.0,
                residual: 1.0,
                iterations: 1,
            },
            None,
        );
        assert_eq!(pm.trace[0].worst_node, "out");
    }

    #[test]
    fn unknown_indices_fall_back_to_positional_names() {
        let flight = FlightRecorder::new(4);
        flight.record_iteration(0.0, 0.0, 1, 1.0, 7);
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 0.0,
                residual: 1.0,
                iterations: 1,
            },
            None,
        );
        assert_eq!(pm.trace[0].worst_node, "x[7]");
    }

    #[test]
    fn ring_bounds_the_trace_but_counts_everything() {
        let flight = FlightRecorder::new(3);
        for i in 1..=10 {
            flight.record_iteration(0.0, 0.0, i, 1.0 / i as f64, 0);
        }
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 0.0,
                residual: 0.1,
                iterations: 10,
            },
            None,
        );
        assert_eq!(pm.total_iterations, 10);
        assert_eq!(pm.trace.len(), 3);
        assert_eq!(pm.trace[0].iteration, 8);
        assert_eq!(pm.trace[2].iteration, 10);
    }

    #[test]
    fn worst_node_histogram_sorts_by_count_then_name() {
        let (nl, layout) = divider();
        let flight = FlightRecorder::new(8);
        flight.install_names(&nl, &layout);
        // "out" dominates twice, "in" once.
        flight.record_iteration(0.0, 0.0, 1, 1.0, 1);
        flight.record_iteration(0.0, 0.0, 2, 0.9, 0);
        flight.record_iteration(0.0, 0.0, 3, 0.8, 1);
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 0.0,
                residual: 0.8,
                iterations: 3,
            },
            None,
        );
        assert_eq!(pm.worst_nodes, vec![("out".into(), 2), ("in".into(), 1)]);
    }

    #[test]
    fn hazard_history_reaches_the_postmortem_and_is_bounded() {
        let flight = FlightRecorder::new(4);
        flight.record_hazard("rank1-breakdown", "demote:refactor", 1e-6);
        flight.record_hazard("non-finite", "terminal", 2e-6);
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 2e-6,
                residual: 1.0,
                iterations: 1,
            },
            None,
        );
        assert_eq!(pm.hazards.len(), 2);
        assert_eq!(pm.hazards[0].hazard, "rank1-breakdown");
        assert_eq!(pm.hazards[0].action, "demote:refactor");
        assert_eq!(pm.hazards[1].time, 2e-6);
        // The trace is bounded at MAX_HAZARDS even if a solve thrashes.
        for _ in 0..(FlightRecorder::MAX_HAZARDS * 2) {
            flight.record_hazard("non-finite", "demote:refactor", 0.0);
        }
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 0.0,
                residual: 1.0,
                iterations: 1,
            },
            None,
        );
        assert_eq!(pm.hazards.len(), FlightRecorder::MAX_HAZARDS);
    }

    #[test]
    fn ladder_path_records_rung_outcomes() {
        let flight = FlightRecorder::new(4);
        flight.begin_rung(0, "nominal");
        flight.end_rung("no-convergence");
        flight.begin_rung(1, "dt*0.5");
        flight.end_rung("budget");
        let pm = flight.freeze(
            "t",
            &AnalysisError::BudgetExceeded {
                time: 1e-6,
                steps: 42,
                kind: crate::BudgetKind::Steps,
            },
            Some(42),
        );
        assert_eq!(pm.ladder.len(), 2);
        assert_eq!(pm.ladder[0].outcome, "no-convergence");
        assert_eq!(pm.ladder[1].label, "dt*0.5");
        assert_eq!(pm.ladder[1].outcome, "budget");
        assert_eq!(pm.budget_steps, Some(42));
        assert_eq!(pm.time, 1e-6);
    }

    #[test]
    fn phases_tag_iterations() {
        let flight = FlightRecorder::new(8);
        flight.set_phase(SolvePhase::DcGmin);
        flight.record_iteration(0.0, 0.0, 1, 2.0, 0);
        flight.set_phase(SolvePhase::Transient);
        flight.record_iteration(1e-6, 1e-7, 1, 0.5, 0);
        let pm = flight.freeze(
            "t",
            &AnalysisError::NoConvergence {
                time: 1e-6,
                residual: 0.5,
                iterations: 1,
            },
            None,
        );
        assert_eq!(pm.trace[0].phase, "dc.gmin");
        assert_eq!(pm.trace[1].phase, "transient");
        assert_eq!(pm.trace[1].dt, 1e-7);
    }

    #[test]
    fn budget_death_falls_back_to_last_recorded_residual() {
        let flight = FlightRecorder::new(4);
        flight.record_iteration(1e-6, 1e-7, 1, 0.75, 0);
        let pm = flight.freeze(
            "t",
            &AnalysisError::BudgetExceeded {
                time: 1e-6,
                steps: 7,
                kind: crate::BudgetKind::WallClock,
            },
            Some(7),
        );
        assert_eq!(pm.residual, 0.75);
    }
}
