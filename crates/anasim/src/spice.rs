//! SPICE-deck export and import.
//!
//! Circuits travel between tools as SPICE decks; this module writes an
//! `anasim` netlist out as one ([`to_spice`]) and reads a documented
//! subset back in ([`from_spice`]). The dialect is classic SPICE3:
//!
//! ```text
//! * comment
//! R<name> <n+> <n-> <ohms>
//! C<name> <n+> <n-> <farads> [IC=<v>]
//! L<name> <n+> <n-> <henries>
//! V<name> <n+> <n-> DC <v>
//! V<name> <n+> <n-> PULSE(<low> <high> <delay> <rise> <fall> <width> <period>)
//! V<name> <n+> <n-> PWL(<t1> <v1> <t2> <v2> ...)
//! V<name> <n+> <n-> SIN(<offset> <ampl> <freq> [delay])
//! I<name> <n+> <n-> DC <a>
//! E<name> <n+> <n-> <nc+> <nc-> <gain>
//! G<name> <n+> <n-> <nc+> <nc-> <gm>
//! D<name> <anode> <cathode> [IS=<a>] [N=<n>]
//! M<name> <d> <g> <s> <NMOS|PMOS> [VT0=<v>] [BETA=<a/v2>] [LAMBDA=<1/v>]
//! S<name> <n+> <n-> <nc+> <nc-> [RON=<ohms>] [ROFF=<ohms>] [VT=<v>] [VW=<v>]
//! ```
//!
//! Values accept engineering suffixes (`f p n u m k meg g t`). Node `0`
//! is ground. Lines are case-insensitive; `*` starts a comment;
//! `.end` and other dot-cards are ignored.

use std::error::Error;
use std::fmt;

use crate::devices::{Device, DiodeParams, MosParams, MosPolarity, SwitchParams};
use crate::netlist::Netlist;
use crate::source::SourceWaveform;

/// Error from parsing a SPICE deck.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpiceError {
    /// 1-based line number of the offending card.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseSpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spice parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseSpiceError {}

/// Formats a value with an engineering suffix.
fn eng(value: f64) -> String {
    let a = value.abs();
    let (scaled, suffix) = if a == 0.0 {
        (value, "")
    } else if a >= 1e9 {
        (value / 1e9, "G")
    } else if a >= 1e6 {
        (value / 1e6, "MEG")
    } else if a >= 1e3 {
        (value / 1e3, "K")
    } else if a >= 1.0 {
        (value, "")
    } else if a >= 1e-3 {
        (value / 1e-3, "M")
    } else if a >= 1e-6 {
        (value / 1e-6, "U")
    } else if a >= 1e-9 {
        (value / 1e-9, "N")
    } else if a >= 1e-12 {
        (value / 1e-12, "P")
    } else {
        (value / 1e-15, "F")
    };
    // Trim trailing zeros for readability.
    let s = format!("{scaled:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    format!("{s}{suffix}")
}

/// Parses an engineering-notation value.
fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    let (num, mult) = if let Some(stripped) = t.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = t.strip_suffix('f') {
        (stripped, 1e-15)
    } else if let Some(stripped) = t.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = t.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = t.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = t.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = t.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = t.strip_suffix('g') {
        (stripped, 1e9)
    } else if let Some(stripped) = t.strip_suffix('t') {
        (stripped, 1e12)
    } else {
        (t.as_str(), 1.0)
    };
    num.parse::<f64>().ok().map(|v| v * mult)
}

fn waveform_card(wave: &SourceWaveform) -> String {
    match wave {
        SourceWaveform::Dc(v) => format!("DC {}", eng(*v)),
        SourceWaveform::Step {
            initial,
            level,
            delay,
        } => format!(
            "PWL({} {} {} {} {} {})",
            eng(0.0),
            eng(*initial),
            eng(*delay),
            eng(*initial),
            eng(delay + 1e-12),
            eng(*level)
        ),
        SourceWaveform::Ramp {
            start,
            end,
            duration,
        } => format!("PWL(0 {} {} {})", eng(*start), eng(*duration), eng(*end)),
        SourceWaveform::Pulse {
            low,
            high,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!(
            "PULSE({} {} {} {} {} {} {})",
            eng(*low),
            eng(*high),
            eng(*delay),
            eng(*rise),
            eng(*fall),
            eng(*width),
            eng(*period)
        ),
        SourceWaveform::Sine {
            offset,
            amplitude,
            freq,
            delay,
        } => format!(
            "SIN({} {} {} {})",
            eng(*offset),
            eng(*amplitude),
            eng(*freq),
            eng(*delay)
        ),
        SourceWaveform::Pwl(points) => {
            let body: Vec<String> = points
                .iter()
                .flat_map(|&(t, v)| [eng(t), eng(v)])
                .collect();
            format!("PWL({})", body.join(" "))
        }
        SourceWaveform::BitStream {
            bits,
            bit_period,
            low,
            high,
        } => {
            // Emit one PRBS period as PWL steps.
            let mut body = Vec::new();
            for (k, &b) in bits.iter().enumerate() {
                let level = if b { *high } else { *low };
                body.push(eng(k as f64 * bit_period));
                body.push(eng(level));
                body.push(eng((k + 1) as f64 * bit_period - 1e-12));
                body.push(eng(level));
            }
            format!("PWL({})", body.join(" "))
        }
    }
}

/// Sanitises an element or node name for a SPICE card (SPICE tokens are
/// whitespace-separated, so embedded separators become underscores).
fn token(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() || c == ':' { '_' } else { c })
        .collect()
}

/// Writes the netlist as a SPICE deck.
pub fn to_spice(netlist: &Netlist, title: &str) -> String {
    let mut out = format!("* {title}\n");
    let node = |n: crate::netlist::NodeId| token(netlist.node_name(n));
    for (_, name, dev) in netlist.devices() {
        let name = token(name);
        // Avoid double letters when the element is already SPICE-named
        // (e.g. a re-imported deck whose resistor is called "R1").
        let prefixed = |letter: char| -> String {
            if name
                .chars()
                .next()
                .is_some_and(|c| c.eq_ignore_ascii_case(&letter))
            {
                name.clone()
            } else {
                format!("{letter}{name}")
            }
        };
        let line = match dev {
            Device::Resistor { a, b, ohms } => {
                format!("{} {} {} {}", prefixed('R'), node(*a), node(*b), eng(*ohms))
            }
            Device::Capacitor { a, b, farads, ic } => {
                let ic_part = ic.map(|v| format!(" IC={}", eng(v))).unwrap_or_default();
                format!("{} {} {} {}{ic_part}", prefixed('C'), node(*a), node(*b), eng(*farads))
            }
            Device::Inductor { a, b, henries } => {
                format!("{} {} {} {}", prefixed('L'), node(*a), node(*b), eng(*henries))
            }
            Device::Vsource { pos, neg, wave } => {
                format!("{} {} {} {}", prefixed('V'), node(*pos), node(*neg), waveform_card(wave))
            }
            Device::Isource { pos, neg, wave } => {
                format!("{} {} {} {}", prefixed('I'), node(*pos), node(*neg), waveform_card(wave))
            }
            Device::Vcvs {
                pos,
                neg,
                cpos,
                cneg,
                gain,
            } => format!(
                "{} {} {} {} {} {}",
                prefixed('E'),
                node(*pos),
                node(*neg),
                node(*cpos),
                node(*cneg),
                eng(*gain)
            ),
            Device::Vccs {
                pos,
                neg,
                cpos,
                cneg,
                gm,
            } => format!(
                "{} {} {} {} {} {}",
                prefixed('G'),
                node(*pos),
                node(*neg),
                node(*cpos),
                node(*cneg),
                eng(*gm)
            ),
            Device::Mosfet {
                drain,
                gate,
                source,
                polarity,
                params,
            } => {
                let pol = match polarity {
                    MosPolarity::Nmos => "NMOS",
                    MosPolarity::Pmos => "PMOS",
                };
                format!(
                    "{} {} {} {} {pol} VT0={} BETA={} LAMBDA={}",
                    prefixed('M'),
                    node(*drain),
                    node(*gate),
                    node(*source),
                    eng(params.vt0),
                    eng(params.beta),
                    eng(params.lambda)
                )
            }
            Device::Diode {
                anode,
                cathode,
                params,
            } => format!(
                "{} {} {} IS={} N={}",
                prefixed('D'),
                node(*anode),
                node(*cathode),
                eng(params.is),
                eng(params.n)
            ),
            Device::Switch {
                a,
                b,
                cpos,
                cneg,
                params,
            } => format!(
                "{} {} {} {} {} RON={} ROFF={} VT={} VW={}",
                prefixed('S'),
                node(*a),
                node(*b),
                node(*cpos),
                node(*cneg),
                eng(params.ron),
                eng(params.roff),
                eng(params.vthresh),
                eng(params.vwidth)
            ),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

/// Splits a card into tokens, treating parenthesised groups as flattened
/// value lists: `PULSE(0 5 0 1n 1n 5u 10u)` → `PULSE`, `0`, `5`, ...
fn tokenize(line: &str) -> Vec<String> {
    line.replace('(', " ( ")
        .replace(')', " ) ")
        .split_whitespace()
        .filter(|t| *t != "(" && *t != ")")
        .map(|t| t.to_string())
        .collect()
}

fn parse_kv(tokens: &[String]) -> impl Iterator<Item = (String, f64)> + '_ {
    tokens.iter().filter_map(|t| {
        let (k, v) = t.split_once('=')?;
        Some((k.to_ascii_uppercase(), parse_value(v)?))
    })
}

/// Parses a SPICE deck into a netlist.
///
/// # Errors
///
/// Returns [`ParseSpiceError`] for unknown cards, malformed values or
/// missing fields. Dot-cards and comments are ignored.
pub fn from_spice(text: &str) -> Result<Netlist, ParseSpiceError> {
    let mut nl = Netlist::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with('.') {
            continue;
        }
        let err = |message: &str| ParseSpiceError {
            line: line_no,
            message: message.to_string(),
        };
        let tokens = tokenize(line);
        if tokens.is_empty() {
            continue; // e.g. a line of stray parentheses
        }
        let card = tokens[0].to_ascii_uppercase();
        let name = card.as_str();
        if nl.find_device(name).is_some() {
            return Err(err(&format!("duplicate element name {name}")));
        }
        let need = |k: usize| -> Result<(), ParseSpiceError> {
            if tokens.len() < k {
                Err(err("too few fields"))
            } else {
                Ok(())
            }
        };
        let val = |k: usize| -> Result<f64, ParseSpiceError> {
            parse_value(&tokens[k]).ok_or_else(|| err(&format!("bad value '{}'", tokens[k])))
        };
        // Passive element values must be physical (the netlist builders
        // enforce this with panics; surface it as a parse error).
        let positive = |k: usize| -> Result<f64, ParseSpiceError> {
            let v = val(k)?;
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(err(&format!("element value must be positive, got {v}")))
            }
        };
        match card.chars().next().expect("non-empty card") {
            'R' => {
                need(4)?;
                let ohms = positive(3)?;
                let a = nl.node(&tokens[1]);
                let b = nl.node(&tokens[2]);
                nl.resistor(name, a, b, ohms);
            }
            'C' => {
                need(4)?;
                let farads = positive(3)?;
                let a = nl.node(&tokens[1]);
                let b = nl.node(&tokens[2]);
                let ic = parse_kv(&tokens[4..]).find(|(k, _)| k == "IC").map(|(_, v)| v);
                match ic {
                    Some(v0) => nl.capacitor_ic(name, a, b, farads, v0),
                    None => nl.capacitor(name, a, b, farads),
                };
            }
            'L' => {
                need(4)?;
                let henries = positive(3)?;
                let a = nl.node(&tokens[1]);
                let b = nl.node(&tokens[2]);
                nl.inductor(name, a, b, henries);
            }
            'V' | 'I' => {
                need(4)?;
                let pos = nl.node(&tokens[1]);
                let neg = nl.node(&tokens[2]);
                let kind = tokens[3].to_ascii_uppercase();
                let wave = match kind.as_str() {
                    "DC" => {
                        need(5)?;
                        SourceWaveform::dc(val(4)?)
                    }
                    "PULSE" => {
                        need(11)?;
                        SourceWaveform::Pulse {
                            low: val(4)?,
                            high: val(5)?,
                            delay: val(6)?,
                            rise: val(7)?,
                            fall: val(8)?,
                            width: val(9)?,
                            period: val(10)?,
                        }
                    }
                    "SIN" => {
                        need(7)?;
                        SourceWaveform::Sine {
                            offset: val(4)?,
                            amplitude: val(5)?,
                            freq: val(6)?,
                            delay: if tokens.len() > 7 { val(7)? } else { 0.0 },
                        }
                    }
                    "PWL" => {
                        let rest = &tokens[4..];
                        if rest.len() < 2 || !rest.len().is_multiple_of(2) {
                            return Err(err("PWL needs time/value pairs"));
                        }
                        let mut points = Vec::with_capacity(rest.len() / 2);
                        for pair in rest.chunks(2) {
                            let t = parse_value(&pair[0]).ok_or_else(|| err("bad PWL time"))?;
                            let v = parse_value(&pair[1]).ok_or_else(|| err("bad PWL value"))?;
                            points.push((t, v));
                        }
                        SourceWaveform::Pwl(points)
                    }
                    // Bare value: treat as DC.
                    _ => SourceWaveform::dc(val(3)?),
                };
                if card.starts_with('V') {
                    nl.vsource(name, pos, neg, wave);
                } else {
                    nl.isource(name, pos, neg, wave);
                }
            }
            'E' => {
                need(7)?;
                let pos = nl.node(&tokens[1]);
                let neg = nl.node(&tokens[2]);
                let cpos = nl.node(&tokens[3]);
                let cneg = nl.node(&tokens[4]);
                nl.vcvs(name, pos, neg, cpos, cneg, val(5)?);
            }
            'G' => {
                need(7)?;
                let pos = nl.node(&tokens[1]);
                let neg = nl.node(&tokens[2]);
                let cpos = nl.node(&tokens[3]);
                let cneg = nl.node(&tokens[4]);
                nl.vccs(name, pos, neg, cpos, cneg, val(5)?);
            }
            'D' => {
                need(3)?;
                let a = nl.node(&tokens[1]);
                let c = nl.node(&tokens[2]);
                let mut params = DiodeParams::default();
                for (k, v) in parse_kv(&tokens[3..]) {
                    match k.as_str() {
                        "IS" => params.is = v,
                        "N" => params.n = v,
                        _ => return Err(err(&format!("unknown diode parameter {k}"))),
                    }
                }
                nl.diode(name, a, c, params);
            }
            'M' => {
                need(5)?;
                let d = nl.node(&tokens[1]);
                let g = nl.node(&tokens[2]);
                let s = nl.node(&tokens[3]);
                let polarity = match tokens[4].to_ascii_uppercase().as_str() {
                    "NMOS" => MosPolarity::Nmos,
                    "PMOS" => MosPolarity::Pmos,
                    other => return Err(err(&format!("unknown mos model {other}"))),
                };
                let mut params = match polarity {
                    MosPolarity::Nmos => MosParams::nmos_5um(),
                    MosPolarity::Pmos => MosParams::pmos_5um(),
                };
                for (k, v) in parse_kv(&tokens[5..]) {
                    match k.as_str() {
                        "VT0" => params.vt0 = v,
                        "BETA" => params.beta = v,
                        "LAMBDA" => params.lambda = v,
                        _ => return Err(err(&format!("unknown mos parameter {k}"))),
                    }
                }
                nl.mosfet(name, d, g, s, polarity, params);
            }
            'S' => {
                need(5)?;
                let a = nl.node(&tokens[1]);
                let b = nl.node(&tokens[2]);
                let cpos = nl.node(&tokens[3]);
                let cneg = nl.node(&tokens[4]);
                let mut params = SwitchParams::default();
                for (k, v) in parse_kv(&tokens[5..]) {
                    match k.as_str() {
                        "RON" => params.ron = v,
                        "ROFF" => params.roff = v,
                        "VT" => params.vthresh = v,
                        "VW" => params.vwidth = v,
                        _ => return Err(err(&format!("unknown switch parameter {k}"))),
                    }
                }
                nl.switch(name, a, b, cpos, cneg, params);
            }
            other => return Err(err(&format!("unknown card type '{other}'"))),
        }
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;

    #[test]
    fn engineering_format_roundtrip() {
        for v in [0.0, 1.0, 2.5, 1e3, 4.7e-12, 3.3e6, -2e-9, 1e-15] {
            let s = eng(v);
            let back = parse_value(&s).unwrap();
            assert!(
                (back - v).abs() <= 1e-6 * v.abs().max(1e-18),
                "{v} -> {s} -> {back}"
            );
        }
    }

    #[test]
    fn parses_simple_divider() {
        let deck = "\
* divider
V1 in 0 DC 5
R1 in out 1K
R2 out 0 1K
.end
";
        let nl = from_spice(deck).unwrap();
        assert_eq!(nl.device_count(), 3);
        let out = nl.find_node("out").unwrap();
        let op = dc_operating_point(&nl).unwrap();
        assert!((op.voltage(out) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn export_import_roundtrip_preserves_behaviour() {
        // Build a mixed circuit, export, re-import, compare operating
        // points node by node.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("inp");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.vsource("VIN", inp, Netlist::GROUND, SourceWaveform::dc(1.5));
        nl.mosfet(
            "M1",
            out,
            inp,
            Netlist::GROUND,
            MosPolarity::Nmos,
            MosParams {
                vt0: 1.0,
                beta: 200e-6,
                lambda: 0.01,
            },
        );
        nl.resistor("RD", vdd, out, 20e3);
        nl.capacitor("CL", out, Netlist::GROUND, 5e-12);
        nl.diode("D1", out, Netlist::GROUND, DiodeParams::default());

        let deck = to_spice(&nl, "roundtrip test");
        let nl2 = from_spice(&deck).unwrap();
        assert_eq!(nl2.device_count(), nl.device_count());

        let op1 = dc_operating_point(&nl).unwrap();
        let op2 = dc_operating_point(&nl2).unwrap();
        for node_name in ["vdd", "inp", "out"] {
            let n1 = nl.find_node(node_name).unwrap();
            let n2 = nl2.find_node(node_name).unwrap();
            assert!(
                (op1.voltage(n1) - op2.voltage(n2)).abs() < 1e-6,
                "node {node_name}"
            );
        }
    }

    #[test]
    fn parses_pulse_and_pwl_sources() {
        let deck = "\
VCK clk 0 PULSE(0 5 0 1N 1N 5U 10U)
VRAMP r 0 PWL(0 0 1M 2.5)
R1 clk 0 1K
R2 r 0 1K
";
        let nl = from_spice(deck).unwrap();
        let vck = nl.find_device("VCK").unwrap();
        match nl.device(vck) {
            Device::Vsource { wave, .. } => {
                assert!((wave.value_at(2e-6) - 5.0).abs() < 1e-9);
                assert!(wave.value_at(8e-6).abs() < 1e-9);
            }
            _ => panic!("expected vsource"),
        }
    }

    #[test]
    fn rejects_unknown_card() {
        let e = from_spice("Q1 a b c 2N3904\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown card"));
    }

    #[test]
    fn rejects_bad_value_with_line_number() {
        let e = from_spice("* ok\nR1 a 0 abc\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad value"));
    }

    #[test]
    fn op1_macro_survives_roundtrip() {
        // The full 13-transistor op-amp: export and re-import, then
        // compare the comparator decision.
        let mut nl = Netlist::new();
        // Build via macrolib is not available here (dependency
        // direction), so approximate with a diode-connected chain that
        // exercises M, D and S cards together.
        let vdd = nl.node("vdd");
        let mid = nl.node("mid");
        let ctl = nl.node("ctl");
        let sw = nl.node("sw");
        nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.vsource("VC", ctl, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", vdd, mid, 50e3);
        nl.mosfet(
            "M1",
            mid,
            mid,
            Netlist::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_5um().with_aspect(2.0),
        );
        nl.switch("S1", mid, sw, ctl, Netlist::GROUND, SwitchParams::default());
        nl.resistor("R2", sw, Netlist::GROUND, 100e3);
        let deck = to_spice(&nl, "mixed card test");
        let nl2 = from_spice(&deck).unwrap();
        let op1 = dc_operating_point(&nl).unwrap();
        let op2 = dc_operating_point(&nl2).unwrap();
        let m1 = nl.find_node("mid").unwrap();
        let m2 = nl2.find_node("mid").unwrap();
        assert!((op1.voltage(m1) - op2.voltage(m2)).abs() < 1e-6);
    }
}
