//! Transient (time-domain) analysis.

use crate::dc::{dc_operating_point_metered, dc_operating_point_solver, DcOptions};
use crate::devices::Device;
use crate::flight::{FlightRecorder, SolveHooks, SolvePhase};
use crate::metrics::SolverMetrics;
use crate::mna::{
    newton_solve_with_context, CompanionMode, Integrator, MnaLayout, NewtonOptions,
    ReactiveHistory, StampParams,
};
use crate::netlist::{DeviceId, Netlist, NodeId};
use crate::robust::{BudgetClock, CancelToken, SolveBudget, SolveSettings, DEFAULT_MAX_STEPS};
use crate::solver::{Backend, Rank1Setup, SolverContext, WarmStart};
use crate::waveform::Waveform;
use crate::AnalysisError;

use std::sync::Arc;
use std::time::Instant;

/// Breakpoint comparisons use a tolerance relative to the analysis
/// horizon rather than an absolute epsilon, so behaviour is invariant
/// under time rescaling (an absolute 1e-15 s is coarse for picosecond
/// circuits and needlessly fine for second-scale ones).
const BREAKPOINT_RELTOL: f64 = 1e-12;

/// How the initial condition at `t = 0` is established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartCondition {
    /// Solve a DC operating point with sources at their `t = 0` values.
    #[default]
    OperatingPoint,
    /// "Use initial conditions": start from zero node voltages, honouring
    /// explicit capacitor `ic` values.
    Uic,
}

/// Transient analysis configuration and runner.
///
/// # Example
///
/// An RC low-pass step response:
///
/// ```
/// use anasim::netlist::Netlist;
/// use anasim::source::SourceWaveform;
/// use anasim::transient::TransientAnalysis;
///
/// # fn main() -> Result<(), anasim::AnalysisError> {
/// let mut nl = Netlist::new();
/// let vin = nl.node("in");
/// let out = nl.node("out");
/// nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::step(1.0, 0.0));
/// nl.resistor("R1", vin, out, 1e3);
/// nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
/// let result = TransientAnalysis::new(5e-3, 10e-6).run(&nl)?;
/// let w = result.voltage(out);
/// // After 5 time constants the output has settled near 1 V.
/// assert!((w.value_at(5e-3) - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientAnalysis {
    t_stop: f64,
    dt: f64,
    min_dt: f64,
    integrator: Integrator,
    start: StartCondition,
    newton: NewtonOptions,
    gmin: f64,
    budget: SolveBudget,
    metrics: Option<Arc<SolverMetrics>>,
    flight: Option<Arc<FlightRecorder>>,
    cancel: Option<CancelToken>,
    profile: Option<Arc<obs::profile::PhaseProfiler>>,
    backend: Backend,
    warm_start: Option<Arc<WarmStart>>,
    rank1: Option<Rank1Setup>,
    numeric_chaos: Option<Arc<obs::NumericChaosState>>,
}

impl TransientAnalysis {
    /// Creates an analysis running to `t_stop` seconds with nominal
    /// timestep `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt` is not finite and positive.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(t_stop.is_finite() && t_stop > 0.0, "t_stop must be positive");
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        TransientAnalysis {
            t_stop,
            dt,
            min_dt: dt / 1024.0,
            integrator: Integrator::Trapezoidal,
            start: StartCondition::OperatingPoint,
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            budget: SolveBudget::unlimited().steps(DEFAULT_MAX_STEPS),
            metrics: None,
            flight: None,
            cancel: None,
            profile: None,
            backend: Backend::default(),
            warm_start: None,
            rank1: None,
            numeric_chaos: None,
        }
    }

    /// Selects the linear-solver backend (default: sparse).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Seeds the DC starting point from a previously solved golden
    /// operating point instead of the zero vector.
    pub fn warm_start(mut self, warm: Arc<WarmStart>) -> Self {
        self.warm_start = Some(warm);
        self
    }

    /// Attaches a rank-1 factorization-reuse setup: either capturing
    /// linear factors into a shared cache (golden run) or applying a
    /// Sherman–Morrison update against it (faulty run).
    pub fn rank1(mut self, rank1: Rank1Setup) -> Self {
        self.rank1 = Some(rank1);
        self
    }

    /// Selects the integration rule (default: trapezoidal).
    pub fn integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Selects the initial-condition strategy (default: DC operating
    /// point).
    pub fn start_condition(mut self, start: StartCondition) -> Self {
        self.start = start;
        self
    }

    /// Overrides the Newton options.
    pub fn newton_options(mut self, newton: NewtonOptions) -> Self {
        self.newton = newton;
        self
    }

    /// Overrides the minimum timestep used when retrying failed steps.
    pub fn min_dt(mut self, min_dt: f64) -> Self {
        self.min_dt = min_dt;
        self
    }

    /// Overrides the `gmin` conductance stamped from every node to
    /// ground (default `1e-12` S).
    pub fn gmin(mut self, gmin: f64) -> Self {
        self.gmin = gmin;
        self
    }

    /// Installs a resource budget. The default limits the analysis to
    /// 50 million attempted timesteps with no wall-clock ceiling.
    pub fn budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a [`SolverMetrics`] handle: Newton iterations, step
    /// accept/reject counts and dt shrinks are counted on it, and an
    /// `anasim.transient` span is reported to its recorder per run.
    pub fn metrics(mut self, metrics: Arc<SolverMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Arms a [`FlightRecorder`]: every Newton iteration of the DC
    /// start and the time-march is captured into its bounded ring, so a
    /// failure can be frozen into an [`obs::Postmortem`] afterwards.
    pub fn flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Attaches a [`CancelToken`]: raising it from any thread makes the
    /// run abort with [`AnalysisError::Cancelled`] within one Newton
    /// iteration.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Arms a phase profiler: the run's wall time is attributed across
    /// the [`obs::profile::Phase`] taxonomy (stamping, device
    /// evaluation, LU factor/solve, residual update, timestep control).
    pub fn profile(mut self, profile: Arc<obs::profile::PhaseProfiler>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Applies a complete [`SolveSettings`]: the escalation-rung scaling
    /// (timestep, integrator, `gmin`) plus the resource budget.
    ///
    /// This is how fault campaigns retry a failed extraction with a more
    /// conservative configuration without rebuilding the analysis by
    /// hand.
    pub fn with_settings(mut self, settings: &SolveSettings) -> Self {
        let rung = settings.rung;
        self.dt *= rung.dt_scale;
        self.min_dt *= rung.dt_scale * rung.min_dt_scale;
        if rung.force_backward_euler {
            self.integrator = Integrator::BackwardEuler;
        }
        if let Some(gmin) = rung.gmin {
            self.gmin = gmin;
        }
        self.budget = settings.budget;
        if let Some(metrics) = &settings.metrics {
            self.metrics = Some(Arc::clone(metrics));
        }
        if let Some(flight) = &settings.flight {
            self.flight = Some(Arc::clone(flight));
        }
        if let Some(cancel) = &settings.cancel {
            self.cancel = Some(cancel.clone());
        }
        if let Some(profile) = &settings.profile {
            self.profile = Some(Arc::clone(profile));
        }
        self.backend = settings.backend;
        if let Some(warm) = &settings.warm_start {
            self.warm_start = Some(Arc::clone(warm));
        }
        if let Some(rank1) = &settings.rank1 {
            self.rank1 = Some(rank1.clone());
        }
        if let Some(chaos) = &settings.numeric_chaos {
            self.numeric_chaos = Some(Arc::clone(chaos));
        }
        self
    }

    /// Runs the analysis over `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoConvergence`] if a timestep cannot be
    /// solved even at the minimum step size,
    /// [`AnalysisError::SingularMatrix`] for structurally singular
    /// circuits, or [`AnalysisError::BudgetExceeded`] when the
    /// [`SolveBudget`] runs out of steps or wall-clock time.
    pub fn run(&self, netlist: &Netlist) -> Result<TransientResult, AnalysisError> {
        let started = Instant::now();
        let result = self.run_inner(netlist);
        if let Some(metrics) = &self.metrics {
            metrics.record_span("anasim.transient", started.elapsed());
        }
        result
    }

    fn run_inner(&self, netlist: &Netlist) -> Result<TransientResult, AnalysisError> {
        let layout = MnaLayout::new(netlist);
        let mut history = ReactiveHistory::new(netlist);
        let hooks = SolveHooks {
            metrics: self.metrics.as_deref(),
            flight: self.flight.as_deref(),
            profile: self.profile.as_deref(),
            chaos: self.numeric_chaos.as_deref(),
        };
        // Everything in this run not attributed to a nested phase (the
        // Newton solve internals, the DC start) is timestep control:
        // step selection, history updates, dt halving, result storage.
        let _march = hooks
            .profile
            .map(|p| p.enter(obs::profile::Phase::StepControl));
        let metrics = hooks.metrics;
        if let Some(flight) = hooks.flight {
            flight.install_names(netlist, &layout);
        }

        // One solver context serves the DC start and the whole march:
        // the sparse symbolic analysis, baseline stamps and LU factors
        // it accumulates are reused across every timestep.
        let mut ctx = SolverContext::new(self.backend);

        // --- Initial condition ------------------------------------------
        let mut x = match self.start {
            StartCondition::OperatingPoint => {
                let op = dc_operating_point_solver(
                    netlist,
                    &DcOptions {
                        newton: self.newton,
                        gmin: self.gmin,
                        time: 0.0,
                    },
                    hooks,
                    self.warm_start.as_deref(),
                    self.rank1.as_ref(),
                    &mut ctx,
                )?;
                op.into_solution()
            }
            StartCondition::Uic => vec![0.0; layout.size()],
        };
        if let Some(flight) = hooks.flight {
            flight.set_phase(SolvePhase::Transient);
        }
        seed_history(netlist, &layout, &x, self.start, &mut history);

        // --- Breakpoints --------------------------------------------------
        let mut breakpoints: Vec<f64> = netlist
            .devices()
            .filter_map(|(_, _, dev)| match dev {
                Device::Vsource { wave, .. } | Device::Isource { wave, .. } => {
                    Some(wave.breakpoints(0.0, self.t_stop))
                }
                _ => None,
            })
            .flatten()
            .filter(|&t| t > 0.0)
            .collect();
        // Tolerance for breakpoint bookkeeping, relative to the horizon.
        let bp_tol = BREAKPOINT_RELTOL * self.t_stop;
        breakpoints.sort_by(|a, b| a.total_cmp(b));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < bp_tol);
        let mut bp_iter = breakpoints.into_iter().peekable();

        // --- Time march ---------------------------------------------------
        let mut result = TransientResult {
            layout: layout.clone(),
            time: vec![0.0],
            solutions: vec![x.clone()],
        };

        let mut t = 0.0;
        // Force a conservative first step after t=0 and after each
        // breakpoint: backward Euler damps the discontinuity that would
        // make trapezoidal ring.
        let mut post_discontinuity = true;
        // Previous accepted solution and step, for the linear
        // extrapolation predictor.
        let mut prev: Option<(Vec<f64>, f64)> = None;
        let mut clock = BudgetClock::new(self.budget).with_cancel(self.cancel.clone());

        while t < self.t_stop - 1e-15 * self.t_stop {
            clock.charge_step(t)?;
            // Candidate next time: regular grid, clipped to breakpoint/stop.
            let mut t_next = (t + self.dt).min(self.t_stop);
            let mut hit_bp = false;
            while let Some(&bp) = bp_iter.peek() {
                if bp <= t + bp_tol {
                    bp_iter.next();
                    continue;
                }
                if bp < t_next - bp_tol {
                    t_next = bp;
                    hit_bp = true;
                }
                break;
            }

            // Attempt the step, halving on Newton failure. The loop only
            // exits by accepting a step or propagating a real error, so
            // a terminal `NoConvergence` always carries the residual and
            // iteration count of the last actual Newton attempt — never
            // a synthetic placeholder.
            let mut dt_try = t_next - t;
            let (x_new, method, dt_used) = loop {
                let method = if post_discontinuity {
                    Integrator::BackwardEuler
                } else {
                    self.integrator
                };
                let mut x_try = x.clone();
                // Linear extrapolation predictor: seed Newton from the
                // trajectory's tangent rather than the previous point.
                // Skipped across discontinuities, where extrapolating
                // through the corner would mislead; recomputed from the
                // accepted state on every dt-halving retry.
                if !post_discontinuity {
                    if let Some((x_prev, dt_prev)) = &prev {
                        let ratio = dt_try / dt_prev;
                        for (k, guess) in x_try.iter_mut().enumerate() {
                            *guess = x[k] + (x[k] - x_prev[k]) * ratio;
                        }
                    }
                }
                let params = StampParams {
                    time: t + dt_try,
                    companion: CompanionMode::Transient {
                        method,
                        dt: dt_try,
                        history: &history,
                    },
                    gmin: self.gmin,
                    source_scale: 1.0,
                };
                match newton_solve_with_context(
                    netlist,
                    &layout,
                    &params,
                    &self.newton,
                    Some(&clock),
                    hooks,
                    &mut ctx,
                    self.rank1.as_ref(),
                    &mut x_try,
                ) {
                    Ok(()) => break (x_try, method, dt_try),
                    Err(
                        AnalysisError::NoConvergence { .. } | AnalysisError::Numerical { .. },
                    ) if dt_try / 2.0 >= self.min_dt => {
                        // Each halving retry is a fresh attempted step as
                        // far as the budget is concerned.
                        clock.charge_step(t)?;
                        if let Some(metrics) = metrics {
                            metrics.step_rejected();
                            metrics.dt_shrink();
                        }
                        dt_try /= 2.0;
                    }
                    Err(e) => return Err(e),
                }
            };

            t += dt_used;
            if let Some(metrics) = metrics {
                metrics.step_accepted();
            }
            update_history(netlist, &layout, &x_new, method, dt_used, &mut history);
            prev = Some((std::mem::take(&mut x), dt_used));
            x = x_new;
            result.time.push(t);
            result.solutions.push(x.clone());

            // If we landed exactly on a breakpoint, consume it and damp the
            // next step.
            if hit_bp && (t - t_next).abs() < bp_tol {
                bp_iter.next();
                post_discontinuity = true;
            } else {
                post_discontinuity = false;
            }
        }
        Ok(result)
    }
}

/// Seeds the reactive history from the initial solution.
fn seed_history(
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    start: StartCondition,
    history: &mut ReactiveHistory,
) {
    for (id, _, dev) in netlist.devices() {
        match dev {
            Device::Capacitor { a, b, ic, .. } => {
                history.v[id.index()] = match (start, ic) {
                    (StartCondition::Uic, Some(v0)) => *v0,
                    _ => layout.voltage(x, *a) - layout.voltage(x, *b),
                };
                history.i[id.index()] = 0.0;
            }
            Device::Inductor { a, b, .. } => {
                history.i[id.index()] = layout
                    .branch_index(id)
                    .map(|j| x[j])
                    .unwrap_or(0.0);
                history.v[id.index()] = layout.voltage(x, *a) - layout.voltage(x, *b);
            }
            _ => {}
        }
    }
}

/// Updates reactive history after an accepted step.
fn update_history(
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    method: Integrator,
    dt: f64,
    history: &mut ReactiveHistory,
) {
    for (id, _, dev) in netlist.devices() {
        match dev {
            Device::Capacitor { a, b, farads, .. } => {
                let v_new = layout.voltage(x, *a) - layout.voltage(x, *b);
                let v_old = history.v[id.index()];
                let i_old = history.i[id.index()];
                let i_new = match method {
                    Integrator::BackwardEuler => farads / dt * (v_new - v_old),
                    Integrator::Trapezoidal => 2.0 * farads / dt * (v_new - v_old) - i_old,
                };
                history.v[id.index()] = v_new;
                history.i[id.index()] = i_new;
            }
            Device::Inductor { a, b, .. } => {
                history.i[id.index()] = layout
                    .branch_index(id)
                    .map(|j| x[j])
                    .unwrap_or(0.0);
                history.v[id.index()] = layout.voltage(x, *a) - layout.voltage(x, *b);
            }
            _ => {}
        }
    }
}

/// The result of a transient run: one solution vector per accepted
/// timepoint.
#[derive(Debug, Clone)]
pub struct TransientResult {
    layout: MnaLayout,
    time: Vec<f64>,
    solutions: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Accepted timepoints.
    pub fn times(&self) -> &[f64] {
        &self.time
    }

    /// Number of accepted timepoints.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True if the run produced no points (cannot happen for successful
    /// runs, which always include `t = 0`).
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// The voltage waveform at `node`.
    pub fn voltage(&self, node: NodeId) -> Waveform {
        let v = self
            .solutions
            .iter()
            .map(|x| self.layout.voltage(x, node))
            .collect();
        Waveform::from_samples(self.time.clone(), v)
    }

    /// The branch-current waveform of a voltage-defined device, if it has
    /// a branch unknown.
    pub fn branch_current(&self, device: DeviceId) -> Option<Waveform> {
        let j = self.layout.branch_index(device)?;
        let v = self.solutions.iter().map(|x| x[j]).collect();
        Some(Waveform::from_samples(self.time.clone(), v))
    }

    /// Voltage at `node` at the final timepoint.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        self.layout
            .voltage(self.solutions.last().expect("non-empty result"), node)
    }
}


/// A resumable transient simulation for co-simulation: the circuit
/// state persists between calls, sources can be rewritten at run time,
/// and an external controller (e.g. a gate-level state machine) can
/// read node voltages at its clock ticks and steer the analogue side.
///
/// # Example
///
/// An RC charged for one interval, then actively discharged by
/// rewriting its source mid-run:
///
/// ```
/// use anasim::netlist::Netlist;
/// use anasim::source::SourceWaveform;
/// use anasim::transient::TransientSession;
///
/// # fn main() -> Result<(), anasim::AnalysisError> {
/// let mut nl = Netlist::new();
/// let vin = nl.node("in");
/// let out = nl.node("out");
/// let src = nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(5.0));
/// nl.resistor("R1", vin, out, 1e3);
/// nl.capacitor("C1", out, Netlist::GROUND, 1e-6);
///
/// let mut session = TransientSession::begin(&nl, 10e-6)?;
/// session.advance_to(5e-3)?;                    // charge ~5 tau
/// assert!(session.voltage(out) > 4.9);
/// session.set_source(src, SourceWaveform::dc(0.0))?;
/// session.advance_to(10e-3)?;                   // discharge
/// assert!(session.voltage(out) < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSession {
    netlist: Netlist,
    layout: MnaLayout,
    history: ReactiveHistory,
    x: Vec<f64>,
    t: f64,
    dt: f64,
    min_dt: f64,
    integrator: Integrator,
    newton: NewtonOptions,
    gmin: f64,
    /// Damp the first step after a source rewrite or session start.
    post_discontinuity: bool,
    metrics: Option<Arc<SolverMetrics>>,
    /// Persistent solver state: sparse structure, baseline stamps and
    /// LU factors survive between `advance_to` calls.
    ctx: SolverContext,
}

impl TransientSession {
    /// Opens a session from the DC operating point at `t = 0`, stepping
    /// with nominal timestep `dt`.
    ///
    /// # Errors
    ///
    /// Propagates DC non-convergence.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn begin(netlist: &Netlist, dt: f64) -> Result<Self, AnalysisError> {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        let layout = MnaLayout::new(netlist);
        let newton = NewtonOptions::default();
        let gmin = 1e-12;
        let op = dc_operating_point_metered(
            netlist,
            &DcOptions {
                newton,
                gmin,
                time: 0.0,
            },
            None,
        )?;
        let x = op.into_solution();
        let mut history = ReactiveHistory::new(netlist);
        seed_history(netlist, &layout, &x, StartCondition::OperatingPoint, &mut history);
        Ok(TransientSession {
            netlist: netlist.clone(),
            layout,
            history,
            x,
            t: 0.0,
            dt,
            min_dt: dt / 1024.0,
            integrator: Integrator::Trapezoidal,
            newton,
            gmin,
            post_discontinuity: true,
            metrics: None,
            ctx: SolverContext::default(),
        })
    }

    /// Installs a [`SolverMetrics`] handle counting the session's Newton
    /// iterations and step accept/reject totals.
    pub fn with_metrics(mut self, metrics: Arc<SolverMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Present simulation time, seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Voltage at a node at the present time.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.layout.voltage(&self.x, node)
    }

    /// Branch current of a voltage-defined device at the present time.
    pub fn branch_current(&self, device: DeviceId) -> Option<f64> {
        self.layout.branch_index(device).map(|j| self.x[j])
    }

    /// Rewrites a source's waveform at the present time (the
    /// co-simulation control input).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::UnknownElement`] if `device` is not an
    /// independent source.
    pub fn set_source(
        &mut self,
        device: DeviceId,
        wave: crate::source::SourceWaveform,
    ) -> Result<(), AnalysisError> {
        match self.netlist.device_mut(device) {
            crate::devices::Device::Vsource { wave: w, .. }
            | crate::devices::Device::Isource { wave: w, .. } => *w = wave,
            other => {
                return Err(AnalysisError::UnknownElement(format!(
                    "set_source needs an independent source, found {other:?}"
                )))
            }
        }
        self.post_discontinuity = true;
        Ok(())
    }

    /// Advances the session to absolute time `t_stop`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoConvergence`] if a step fails at the
    /// minimum step size; [`AnalysisError::InvalidParameter`] if
    /// `t_stop` is not ahead of the present time.
    pub fn advance_to(&mut self, t_stop: f64) -> Result<(), AnalysisError> {
        if t_stop <= self.t {
            return Err(AnalysisError::InvalidParameter(format!(
                "t_stop {t_stop} is not ahead of t = {}",
                self.t
            )));
        }
        // Source breakpoints within the window keep steps aligned with
        // waveform corners.
        let mut breakpoints: Vec<f64> = self
            .netlist
            .devices()
            .filter_map(|(_, _, dev)| match dev {
                crate::devices::Device::Vsource { wave, .. }
                | crate::devices::Device::Isource { wave, .. } => {
                    Some(wave.breakpoints(self.t, t_stop))
                }
                _ => None,
            })
            .flatten()
            .filter(|&bp| bp > self.t)
            .collect();
        // Tolerance relative to the step size: session windows can be
        // arbitrarily short, so the horizon is a poor scale here.
        let bp_tol = BREAKPOINT_RELTOL * t_stop.abs().max(self.dt);
        breakpoints.sort_by(|a, b| a.total_cmp(b));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < bp_tol);
        let mut bp_iter = breakpoints.into_iter().peekable();

        while self.t < t_stop - 1e-15 * t_stop.abs().max(1.0) {
            let mut t_next = (self.t + self.dt).min(t_stop);
            while let Some(&bp) = bp_iter.peek() {
                if bp <= self.t + bp_tol {
                    bp_iter.next();
                    continue;
                }
                if bp < t_next - bp_tol {
                    t_next = bp;
                }
                break;
            }

            let mut dt_try = t_next - self.t;
            loop {
                let method = if self.post_discontinuity {
                    Integrator::BackwardEuler
                } else {
                    self.integrator
                };
                let mut x_try = self.x.clone();
                let params = StampParams {
                    time: self.t + dt_try,
                    companion: CompanionMode::Transient {
                        method,
                        dt: dt_try,
                        history: &self.history,
                    },
                    gmin: self.gmin,
                    source_scale: 1.0,
                };
                match newton_solve_with_context(
                    &self.netlist,
                    &self.layout,
                    &params,
                    &self.newton,
                    None,
                    SolveHooks::metrics(self.metrics.as_deref()),
                    &mut self.ctx,
                    None,
                    &mut x_try,
                ) {
                    Ok(()) => {
                        self.t += dt_try;
                        if let Some(metrics) = &self.metrics {
                            metrics.step_accepted();
                        }
                        update_history(
                            &self.netlist,
                            &self.layout,
                            &x_try,
                            method,
                            dt_try,
                            &mut self.history,
                        );
                        self.x = x_try;
                        self.post_discontinuity = false;
                        break;
                    }
                    Err(
                        AnalysisError::NoConvergence { .. } | AnalysisError::Numerical { .. },
                    ) if dt_try / 2.0 >= self.min_dt => {
                        if let Some(metrics) = &self.metrics {
                            metrics.step_rejected();
                            metrics.dt_shrink();
                        }
                        dt_try /= 2.0;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    fn rc_circuit(tau_r: f64, tau_c: f64) -> (Netlist, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::step(1.0, 0.0));
        nl.resistor("R1", vin, out, tau_r);
        nl.capacitor("C1", out, Netlist::GROUND, tau_c);
        (nl, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        // tau = 1 ms. UIC start: the source is already high at t = 0, so an
        // operating-point start would begin from the settled state.
        let (nl, out) = rc_circuit(1e3, 1e-6);
        let res = TransientAnalysis::new(5e-3, 5e-6)
            .start_condition(StartCondition::Uic)
            .run(&nl)
            .unwrap();
        let w = res.voltage(out);
        for &frac in &[0.5, 1.0, 2.0, 3.0] {
            let t = frac * 1e-3;
            let expect = 1.0 - (-t / 1e-3_f64).exp();
            assert!(
                (w.value_at(t) - expect).abs() < 2e-3,
                "at t={t}: got {}, want {expect}",
                w.value_at(t)
            );
        }
    }

    #[test]
    fn backward_euler_also_converges() {
        let (nl, out) = rc_circuit(1e3, 1e-6);
        let res = TransientAnalysis::new(5e-3, 2e-6)
            .integrator(Integrator::BackwardEuler)
            .run(&nl)
            .unwrap();
        assert!((res.final_voltage(out) - 1.0).abs() < 5e-3);
    }

    #[test]
    fn uic_honours_capacitor_initial_voltage() {
        let mut nl = Netlist::new();
        let out = nl.node("out");
        nl.resistor("R1", out, Netlist::GROUND, 1e3);
        nl.capacitor_ic("C1", out, Netlist::GROUND, 1e-6, 2.0);
        let res = TransientAnalysis::new(5e-3, 5e-6)
            .start_condition(StartCondition::Uic)
            .run(&nl)
            .unwrap();
        let w = res.voltage(out);
        // Discharges from 2 V with tau = 1 ms.
        let at_tau = w.value_at(1e-3);
        let expect = 2.0 * (-1.0_f64).exp();
        assert!((at_tau - expect).abs() < 0.02, "got {at_tau}, want {expect}");
    }

    #[test]
    fn lc_oscillation_frequency() {
        // Ideal LC tank started via capacitor IC; f = 1/(2*pi*sqrt(LC)).
        let mut nl = Netlist::new();
        let n1 = nl.node("n1");
        nl.inductor("L1", n1, Netlist::GROUND, 1e-3);
        nl.capacitor_ic("C1", n1, Netlist::GROUND, 1e-6, 1.0);
        // Slight damping to keep matrices friendly.
        nl.resistor("Rp", n1, Netlist::GROUND, 1e6);
        let res = TransientAnalysis::new(200e-6, 0.2e-6)
            .start_condition(StartCondition::Uic)
            .run(&nl)
            .unwrap();
        let w = res.voltage(n1);
        // Find first zero crossing (quarter period); T/4 = pi/2*sqrt(LC).
        let expect_quarter = std::f64::consts::FRAC_PI_2 * (1e-3_f64 * 1e-6).sqrt();
        let mut crossing = None;
        let times = w.times();
        let values = w.values();
        for i in 1..w.len() {
            if values[i - 1] > 0.0 && values[i] <= 0.0 {
                crossing = Some(times[i]);
                break;
            }
        }
        let crossing = crossing.expect("oscillation crossed zero");
        assert!(
            (crossing - expect_quarter).abs() / expect_quarter < 0.02,
            "quarter period {crossing}, expected {expect_quarter}"
        );
    }

    #[test]
    fn breakpoints_align_with_pulse_edges() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource(
            "V1",
            a,
            Netlist::GROUND,
            SourceWaveform::Pulse {
                low: 0.0,
                high: 5.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 10e-6,
                period: 20e-6,
            },
        );
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        let res = TransientAnalysis::new(40e-6, 1.5e-6).run(&nl).unwrap();
        // The step times should include the pulse edges despite the odd dt.
        let has_time = |t: f64| res.times().iter().any(|&ti| (ti - t).abs() < 1e-12);
        assert!(has_time(10e-6 + 1e-9)); // falling edge corner
        assert!(has_time(20e-6)); // next period start
    }

    #[test]
    fn result_reports_branch_current() {
        let (nl, _) = rc_circuit(1e3, 1e-6);
        let v1 = nl.find_device("V1").unwrap();
        let res = TransientAnalysis::new(1e-3, 10e-6)
            .start_condition(StartCondition::Uic)
            .run(&nl)
            .unwrap();
        let i = res.branch_current(v1).unwrap();
        // Inrush current magnitude ~ 1V/1k = 1 mA at t=0+.
        assert!(i.values().iter().any(|&x| x.abs() > 0.5e-3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        let _ = TransientAnalysis::new(1.0, 0.0);
    }

    #[test]
    fn session_matches_one_shot_run() {
        // Advancing a session in three chunks must land on the same
        // trajectory as a single run.
        let (nl, out) = rc_circuit(1e3, 1e-6);
        let mut session = TransientSession::begin(&nl, 5e-6).unwrap();
        session.advance_to(1e-3).unwrap();
        let s1 = session.voltage(out);
        session.advance_to(2e-3).unwrap();
        session.advance_to(4e-3).unwrap();
        let s2 = session.voltage(out);

        let res = TransientAnalysis::new(4e-3, 5e-6).run(&nl).unwrap();
        let w = res.voltage(out);
        assert!((s1 - w.value_at(1e-3)).abs() < 2e-3, "{s1}");
        assert!((s2 - w.value_at(4e-3)).abs() < 2e-3, "{s2}");
        assert!((session.time() - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn session_source_rewrite_steers_the_circuit() {
        let (nl, out) = rc_circuit(1e3, 1e-6);
        let v1 = nl.find_device("V1").unwrap();
        let mut session = TransientSession::begin(&nl, 5e-6).unwrap();
        session.advance_to(5e-3).unwrap();
        assert!(session.voltage(out) > 0.99);
        session.set_source(v1, SourceWaveform::dc(-1.0)).unwrap();
        session.advance_to(10e-3).unwrap();
        // 5 tau of swing from +1 toward -1: 2 e^-5 ~ 0.013 remains.
        assert!((session.voltage(out) + 1.0).abs() < 0.02);
    }

    #[test]
    fn session_rejects_backwards_time() {
        let (nl, _) = rc_circuit(1e3, 1e-6);
        let mut session = TransientSession::begin(&nl, 5e-6).unwrap();
        session.advance_to(1e-3).unwrap();
        assert!(session.advance_to(0.5e-3).is_err());
    }

    #[test]
    fn session_set_source_validates_device() {
        let (nl, out) = rc_circuit(1e3, 1e-6);
        let r1 = nl.find_device("R1").unwrap();
        let mut session = TransientSession::begin(&nl, 5e-6).unwrap();
        let err = session.set_source(r1, SourceWaveform::dc(0.0)).unwrap_err();
        assert!(matches!(err, AnalysisError::UnknownElement(_)));
        assert!(err.to_string().contains("independent source"));
        // The session stays usable after the rejected rewrite.
        session.advance_to(1e-3).unwrap();
        assert!(session.voltage(out) > 0.0);
    }

    #[test]
    fn step_budget_is_reported_as_budget_exceeded() {
        use crate::robust::SolveBudget;
        let (nl, _) = rc_circuit(1e3, 1e-6);
        let err = TransientAnalysis::new(5e-3, 5e-6)
            .budget(SolveBudget::unlimited().steps(10))
            .run(&nl)
            .unwrap_err();
        assert!(
            matches!(
                err,
                AnalysisError::BudgetExceeded {
                    kind: crate::BudgetKind::Steps,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn wall_budget_is_reported_as_budget_exceeded() {
        use crate::robust::SolveBudget;
        use std::time::Duration;
        let (nl, _) = rc_circuit(1e3, 1e-6);
        let err = TransientAnalysis::new(5e-3, 5e-6)
            .budget(SolveBudget::unlimited().wall(Duration::ZERO))
            .run(&nl)
            .unwrap_err();
        assert!(
            matches!(
                err,
                AnalysisError::BudgetExceeded {
                    kind: crate::BudgetKind::WallClock,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn dt_halving_rescues_a_tight_newton_budget() {
        use crate::devices::DiodeParams;
        // A 1 mA step into R ∥ C wants to move the node ~1.7 V in the
        // nominal-dt solve at the source corner, but the per-iteration
        // voltage clamp walks at most 0.5 V per Newton iteration, so 4
        // iterations cannot converge there. (The corner step is the
        // binding one: the extrapolation predictor seeds later steps
        // from the trajectory's tangent, but extrapolating the flat
        // pre-step history says nothing about the corner itself.)
        // Every dt halving doubles the capacitor's companion
        // conductance and shrinks the per-step excursion, so a halved
        // retry fits inside the iteration cap. The isolated reverse
        // diode only marks the system nonlinear so the damped Newton
        // walk (and thus the cap) is actually exercised.
        let tight = NewtonOptions {
            max_iterations: 4,
            vstep_limit: 0.5,
            ..NewtonOptions::default()
        };
        let circuit = || {
            let mut nl = Netlist::new();
            let out = nl.node("out");
            let iso = nl.node("iso");
            nl.isource("I1", out, Netlist::GROUND, SourceWaveform::step(1e-3, 2e-6));
            nl.resistor("R1", out, Netlist::GROUND, 5e3);
            nl.capacitor("C1", out, Netlist::GROUND, 0.2e-9);
            nl.diode("D1", iso, Netlist::GROUND, DiodeParams::default());
            (nl, out)
        };

        // Halving forbidden (min_dt pinned at dt): the step cannot
        // converge and the analysis dies at the transition.
        let (nl, _) = circuit();
        let err = TransientAnalysis::new(20e-6, 1e-6)
            .newton_options(tight)
            .min_dt(1e-6)
            .run(&nl)
            .unwrap_err();
        assert!(
            matches!(err, AnalysisError::NoConvergence { .. }),
            "got {err:?}"
        );

        // With halving room the same analysis completes and settles to
        // the I·R level a generously-budgeted run agrees on.
        let (nl, out) = circuit();
        let rescued = TransientAnalysis::new(20e-6, 1e-6)
            .newton_options(tight)
            .run(&nl)
            .unwrap();
        let reference = TransientAnalysis::new(20e-6, 1e-6).run(&nl).unwrap();
        let v = rescued.final_voltage(out);
        let v_ref = reference.final_voltage(out);
        assert!((v - v_ref).abs() < 1e-3, "rescued {v} vs reference {v_ref}");
        assert!((v - 5.0).abs() < 0.05, "settled at {v}");
    }

    #[test]
    fn with_settings_applies_rung_scaling() {
        use crate::robust::{SolveBudget, SolveSettings, SolverRung};
        let base = TransientAnalysis::new(1e-3, 1e-6);
        let settings = SolveSettings {
            rung: SolverRung {
                dt_scale: 0.5,
                min_dt_scale: 4.0,
                force_backward_euler: true,
                gmin: Some(1e-9),
            },
            budget: SolveBudget::unlimited().steps(123),
            metrics: None,
            flight: None,
            cancel: None,
            profile: None,
            backend: crate::solver::Backend::default(),
            warm_start: None,
            rank1: None,
            numeric_chaos: None,
        };
        let tuned = base.clone().with_settings(&settings);
        assert!((tuned.dt - 0.5e-6).abs() < 1e-18);
        // min_dt scales by dt_scale * min_dt_scale.
        assert!((tuned.min_dt - 1e-6 / 1024.0 * 0.5 * 4.0).abs() < 1e-18);
        assert_eq!(tuned.integrator, Integrator::BackwardEuler);
        assert_eq!(tuned.gmin, 1e-9);
        assert_eq!(tuned.budget.max_steps, Some(123));
        // A nominal rung leaves the analysis unchanged apart from budget.
        let nominal = base.clone().with_settings(&SolveSettings::default());
        assert_eq!(nominal.dt, base.dt);
        assert_eq!(nominal.integrator, base.integrator);
    }

    #[test]
    fn pre_raised_cancel_token_aborts_the_run() {
        use crate::robust::CancelToken;

        let (nl, _) = rc_circuit(1e3, 1e-6);
        let token = CancelToken::new();
        token.cancel();
        let err = TransientAnalysis::new(1e-3, 10e-6)
            .cancel(token)
            .run(&nl)
            .unwrap_err();
        assert_eq!(err, AnalysisError::Cancelled);
    }

    #[test]
    fn cancel_token_arrives_through_with_settings() {
        use crate::robust::{CancelToken, SolveSettings};

        let (nl, _) = rc_circuit(1e3, 1e-6);
        let token = CancelToken::new();
        token.cancel();
        let settings = SolveSettings::default().cancel(token);
        let err = TransientAnalysis::new(1e-3, 10e-6)
            .with_settings(&settings)
            .run(&nl)
            .unwrap_err();
        assert_eq!(err, AnalysisError::Cancelled);
    }

    #[test]
    fn metrics_count_steps_and_newton_iterations() {
        use crate::metrics::SolverMetrics;
        use crate::robust::SolveSettings;
        use std::sync::Arc;

        let (nl, _) = rc_circuit(1e3, 1e-6);
        let metrics = Arc::new(SolverMetrics::new());
        let settings = SolveSettings::default().metrics(Arc::clone(&metrics));
        TransientAnalysis::new(1e-3, 10e-6)
            .with_settings(&settings)
            .run(&nl)
            .unwrap();
        let snap = metrics.snapshot();
        // 1 ms horizon at 10 us nominal dt: ~100 accepted steps, each
        // needing at least one Newton iteration, plus the DC start.
        assert!(snap.steps_accepted >= 100, "accepted {snap:?}");
        assert!(snap.newton_iterations > snap.steps_accepted);
        assert_eq!(snap.steps_rejected, 0);

        // A second run on a fresh handle sees only its own work — there
        // is no cross-analysis bleed-through.
        let fresh = Arc::new(SolverMetrics::new());
        TransientAnalysis::new(1e-4, 10e-6)
            .metrics(Arc::clone(&fresh))
            .run(&nl)
            .unwrap();
        assert!(fresh.snapshot().steps_accepted < snap.steps_accepted);
    }

    #[test]
    fn metrics_record_transient_and_dc_spans() {
        use crate::metrics::SolverMetrics;
        use obs::AggregatingRecorder;
        use std::sync::Arc;

        let (nl, _) = rc_circuit(1e3, 1e-6);
        let recorder = Arc::new(AggregatingRecorder::new());
        let metrics = Arc::new(SolverMetrics::with_recorder(recorder.clone()));
        TransientAnalysis::new(1e-4, 10e-6)
            .metrics(metrics)
            .run(&nl)
            .unwrap();
        let agg = recorder.snapshot();
        assert_eq!(agg.spans["anasim.transient"].count(), 1);
        assert_eq!(agg.spans["anasim.dc"].count(), 1);
    }
}
