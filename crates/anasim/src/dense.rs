//! Dense linear algebra for the MNA solver.
//!
//! The matrix types live in [`linsys::matrix`]; this module re-exports
//! them and adapts error types to [`AnalysisError`].

pub use linsys::matrix::{Lu, Matrix};

use crate::AnalysisError;

/// Solves `A·x = b` with a one-shot factorisation.
///
/// # Errors
///
/// Returns [`AnalysisError::SingularMatrix`] if `a` is singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, AnalysisError> {
    linsys::matrix::solve(a, b).map_err(AnalysisError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_maps_singularity_to_analysis_error() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        match solve(&a, &[1.0, 2.0]) {
            Err(AnalysisError::SingularMatrix { .. }) => {}
            other => panic!("expected singular matrix error, got {other:?}"),
        }
    }

    #[test]
    fn solve_passes_through_solution() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        let x = solve(&a, &[2.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }
}
