//! Circuit element models.
//!
//! Devices are plain data; their electrical behaviour (MNA stamps) lives in
//! [`crate::mna`]. Nonlinear models (MOSFET, diode) expose small-signal
//! evaluation helpers used by the Newton iteration.

use crate::netlist::NodeId;
use crate::source::SourceWaveform;

/// MOS transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Level-1 (Shichman–Hodges) MOSFET parameters.
///
/// `beta` is the composite transconductance factor `KP · W / L` in A/V²,
/// i.e. the drain current in saturation is
/// `Id = (beta/2)·(Vgs − Vt)²·(1 + lambda·Vds)`.
///
/// Default values model the 5 µm CMOS gate-array process of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Zero-bias threshold voltage in volts (positive for both polarities;
    /// the sign convention is handled by [`MosPolarity`]).
    pub vt0: f64,
    /// Composite transconductance `KP · W / L` in A/V².
    pub beta: f64,
    /// Channel-length modulation in 1/V.
    pub lambda: f64,
}

impl MosParams {
    /// Parameters for a minimum-size NMOS device in the 5 µm process.
    pub fn nmos_5um() -> Self {
        MosParams {
            vt0: 1.0,
            beta: 40e-6,
            lambda: 0.02,
        }
    }

    /// Parameters for a minimum-size PMOS device in the 5 µm process.
    pub fn pmos_5um() -> Self {
        MosParams {
            vt0: 1.0,
            beta: 16e-6,
            lambda: 0.02,
        }
    }

    /// Returns a copy scaled to an aspect ratio `w_over_l`, relative to the
    /// unit device (`W/L = 1`).
    pub fn with_aspect(self, w_over_l: f64) -> Self {
        MosParams {
            beta: self.beta * w_over_l,
            ..self
        }
    }
}

/// Operating region of a MOSFET at a bias point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// `Vgs < Vt`: device off.
    Cutoff,
    /// `Vds < Vgs − Vt`: resistive/triode region.
    Linear,
    /// `Vds >= Vgs − Vt`: current-source region.
    Saturation,
}

/// Small-signal linearisation of a MOSFET at a bias point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOperatingPoint {
    /// Drain current (drain → source through the channel), amperes.
    pub ids: f64,
    /// Transconductance ∂Id/∂Vgs, siemens.
    pub gm: f64,
    /// Output conductance ∂Id/∂Vds, siemens.
    pub gds: f64,
    /// Operating region.
    pub region: MosRegion,
}

impl MosParams {
    /// Evaluates the level-1 model at `(vgs, vds)` for an N-channel sign
    /// convention (`vds >= 0`; callers swap terminals when `vds < 0`).
    pub fn evaluate(&self, vgs: f64, vds: f64) -> MosOperatingPoint {
        debug_assert!(vds >= 0.0, "evaluate expects vds >= 0 (swap terminals)");
        let vov = vgs - self.vt0;
        if vov <= 0.0 {
            return MosOperatingPoint {
                ids: 0.0,
                gm: 0.0,
                gds: 0.0,
                region: MosRegion::Cutoff,
            };
        }
        let clm = 1.0 + self.lambda * vds;
        if vds < vov {
            // Triode.
            let ids = self.beta * (vov * vds - 0.5 * vds * vds) * clm;
            let gm = self.beta * vds * clm;
            let gds = self.beta * ((vov - vds) * clm + (vov * vds - 0.5 * vds * vds) * self.lambda);
            MosOperatingPoint {
                ids,
                gm,
                gds,
                region: MosRegion::Linear,
            }
        } else {
            // Saturation.
            let ids = 0.5 * self.beta * vov * vov * clm;
            let gm = self.beta * vov * clm;
            let gds = 0.5 * self.beta * vov * vov * self.lambda;
            MosOperatingPoint {
                ids,
                gm,
                gds,
                region: MosRegion::Saturation,
            }
        }
    }
}

/// Junction diode parameters (exponential model with series limiting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeParams {
    /// Saturation current in amperes.
    pub is: f64,
    /// Emission coefficient (ideality factor).
    pub n: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams { is: 1e-14, n: 1.0 }
    }
}

impl DiodeParams {
    /// Thermal voltage at 300 K, volts.
    pub const VT: f64 = 0.02585;

    /// Evaluates `(id, gd)` at junction voltage `vd`, with exponent
    /// limiting for numerical robustness.
    pub fn evaluate(&self, vd: f64) -> (f64, f64) {
        let nvt = self.n * Self::VT;
        // Limit the exponent to avoid overflow; linearise beyond the limit.
        let vcrit = nvt * 40.0;
        if vd <= vcrit {
            let e = (vd / nvt).exp();
            (self.is * (e - 1.0), self.is * e / nvt)
        } else {
            let e = (vcrit / nvt).exp();
            let id0 = self.is * (e - 1.0);
            let gd = self.is * e / nvt;
            (id0 + gd * (vd - vcrit), gd)
        }
    }
}

/// A voltage-controlled switch with smooth resistance transition.
///
/// The conductance interpolates log-linearly between `1/roff` and `1/ron`
/// over a transition band of width `vwidth` centred on `vthresh`, which
/// keeps Newton happy across switching instants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchParams {
    /// Closed (on) resistance, ohms.
    pub ron: f64,
    /// Open (off) resistance, ohms.
    pub roff: f64,
    /// Control threshold voltage, volts.
    pub vthresh: f64,
    /// Transition band width, volts.
    pub vwidth: f64,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            ron: 1e3,
            roff: 1e12,
            vthresh: 2.5,
            vwidth: 1.0,
        }
    }
}

impl SwitchParams {
    /// Conductance of the switch for control voltage `vc`.
    pub fn conductance(&self, vc: f64) -> f64 {
        let g_on = 1.0 / self.ron;
        let g_off = 1.0 / self.roff;
        let x = (vc - self.vthresh) / self.vwidth;
        if x <= -0.5 {
            g_off
        } else if x >= 0.5 {
            g_on
        } else {
            // Log-linear blend: smooth over many decades of conductance.
            let frac = x + 0.5;
            (g_off.ln() + frac * (g_on.ln() - g_off.ln())).exp()
        }
    }
}

/// A circuit element instance.
///
/// Node pairs follow the SPICE convention: positive current flows from the
/// first listed node through the device to the second.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
        /// Optional initial voltage `v(a) − v(b)` used by UIC transient.
        ic: Option<f64>,
    },
    /// Linear inductor between `a` and `b` (adds a branch current unknown).
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries.
        henries: f64,
    },
    /// Independent voltage source from `pos` to `neg` (adds a branch
    /// current unknown).
    Vsource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Waveform.
        wave: SourceWaveform,
    },
    /// Independent current source pushing current out of `pos` into `neg`
    /// externally (i.e. conventional current flows `pos → neg` through the
    /// source's environment).
    Isource {
        /// Terminal current is pulled from.
        pos: NodeId,
        /// Terminal current is pushed into.
        neg: NodeId,
        /// Waveform (amperes).
        wave: SourceWaveform,
    },
    /// Voltage-controlled voltage source: `v(pos) − v(neg) = gain ·
    /// (v(cpos) − v(cneg))`.
    Vcvs {
        /// Positive output terminal.
        pos: NodeId,
        /// Negative output terminal.
        neg: NodeId,
        /// Positive control terminal.
        cpos: NodeId,
        /// Negative control terminal.
        cneg: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source: current `gm · (v(cpos) − v(cneg))`
    /// flows from `pos` to `neg` through the source.
    Vccs {
        /// Current exits this terminal (into the source).
        pos: NodeId,
        /// Current re-enters the circuit here.
        neg: NodeId,
        /// Positive control terminal.
        cpos: NodeId,
        /// Negative control terminal.
        cneg: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Level-1 MOSFET.
    Mosfet {
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal.
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Device polarity.
        polarity: MosPolarity,
        /// Model parameters.
        params: MosParams,
    },
    /// Junction diode from `anode` to `cathode`.
    Diode {
        /// Anode.
        anode: NodeId,
        /// Cathode.
        cathode: NodeId,
        /// Model parameters.
        params: DiodeParams,
    },
    /// Voltage-controlled switch between `a` and `b`, controlled by
    /// `v(cpos) − v(cneg)`.
    Switch {
        /// First switched terminal.
        a: NodeId,
        /// Second switched terminal.
        b: NodeId,
        /// Positive control terminal.
        cpos: NodeId,
        /// Negative control terminal.
        cneg: NodeId,
        /// Switch model.
        params: SwitchParams,
    },
}

impl Device {
    /// True if the device needs an MNA branch-current unknown.
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self,
            Device::Vsource { .. } | Device::Vcvs { .. } | Device::Inductor { .. }
        )
    }

    /// True if the device is nonlinear (requires Newton iteration).
    pub fn is_nonlinear(&self) -> bool {
        matches!(
            self,
            Device::Mosfet { .. } | Device::Diode { .. } | Device::Switch { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosfet_cutoff_below_threshold() {
        let p = MosParams::nmos_5um();
        let op = p.evaluate(0.5, 3.0);
        assert_eq!(op.region, MosRegion::Cutoff);
        assert_eq!(op.ids, 0.0);
    }

    #[test]
    fn mosfet_saturation_current_quadratic() {
        let p = MosParams {
            vt0: 1.0,
            beta: 100e-6,
            lambda: 0.0,
        };
        let op = p.evaluate(3.0, 5.0);
        assert_eq!(op.region, MosRegion::Saturation);
        // Id = beta/2 * (3-1)^2 = 200 uA
        assert!((op.ids - 200e-6).abs() < 1e-12);
        assert!((op.gm - 200e-6).abs() < 1e-12);
        assert_eq!(op.gds, 0.0);
    }

    #[test]
    fn mosfet_triode_region() {
        let p = MosParams {
            vt0: 1.0,
            beta: 100e-6,
            lambda: 0.0,
        };
        let op = p.evaluate(3.0, 0.5);
        assert_eq!(op.region, MosRegion::Linear);
        // Id = beta*(vov*vds - vds^2/2) = 100u*(2*0.5 - 0.125) = 87.5 uA
        assert!((op.ids - 87.5e-6).abs() < 1e-12);
    }

    #[test]
    fn mosfet_current_is_continuous_at_pinchoff() {
        let p = MosParams::nmos_5um();
        let vov = 2.0;
        let below = p.evaluate(1.0 + vov, vov - 1e-9);
        let above = p.evaluate(1.0 + vov, vov + 1e-9);
        assert!((below.ids - above.ids).abs() < 1e-9 * p.beta * 10.0);
    }

    #[test]
    fn channel_length_modulation_increases_sat_current() {
        let p = MosParams {
            vt0: 1.0,
            beta: 100e-6,
            lambda: 0.05,
        };
        let low = p.evaluate(3.0, 2.5);
        let high = p.evaluate(3.0, 5.0);
        assert!(high.ids > low.ids);
        assert!(high.gds > 0.0);
    }

    #[test]
    fn diode_forward_and_reverse() {
        let d = DiodeParams::default();
        let (i_fwd, g_fwd) = d.evaluate(0.6);
        let (i_rev, _) = d.evaluate(-1.0);
        assert!(i_fwd > 1e-6);
        assert!(g_fwd > 0.0);
        assert!(i_rev < 0.0 && i_rev > -1e-13);
    }

    #[test]
    fn diode_limits_large_forward_bias() {
        let d = DiodeParams::default();
        let (i, g) = d.evaluate(5.0);
        assert!(i.is_finite());
        assert!(g.is_finite());
    }

    #[test]
    fn switch_conductance_extremes_and_monotonic() {
        let s = SwitchParams::default();
        assert!((s.conductance(0.0) - 1e-12).abs() < 1e-13);
        assert!((s.conductance(5.0) - 1e-3).abs() < 1e-6);
        let mut last = 0.0;
        for i in 0..100 {
            let g = s.conductance(i as f64 * 0.05);
            assert!(g >= last);
            last = g;
        }
    }

    #[test]
    fn aspect_scaling_multiplies_beta() {
        let p = MosParams::nmos_5um().with_aspect(4.0);
        assert!((p.beta - 160e-6).abs() < 1e-12);
    }
}
