//! Modified nodal analysis: unknown layout, device stamps and the shared
//! Newton–Raphson solver used by DC and transient analyses.

use crate::dense::{Lu, Matrix};
use crate::devices::{Device, MosPolarity};
use crate::flight::SolveHooks;
use crate::netlist::{DeviceId, Netlist, NodeId};
use crate::robust::BudgetClock;
use crate::AnalysisError;
use obs::profile::{LapTimer, Phase};

/// Mapping from circuit topology to MNA unknown indices.
///
/// Unknowns are ordered: node voltages for nodes `1..node_count` (ground is
/// eliminated), followed by one branch current per voltage-defined element
/// (independent voltage sources, VCVSs, inductors).
#[derive(Debug, Clone)]
pub struct MnaLayout {
    node_count: usize,
    branch_of_device: Vec<Option<usize>>,
    size: usize,
}

impl MnaLayout {
    /// Builds the layout for a netlist.
    pub fn new(netlist: &Netlist) -> Self {
        let node_count = netlist.node_count();
        let mut branch_of_device = vec![None; netlist.device_count()];
        let mut next_branch = 0;
        for (id, _, dev) in netlist.devices() {
            if dev.needs_branch_current() {
                branch_of_device[id.index()] = Some(next_branch);
                next_branch += 1;
            }
        }
        MnaLayout {
            node_count,
            branch_of_device,
            size: (node_count - 1) + next_branch,
        }
    }

    /// Total number of unknowns.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of circuit nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Unknown index of a node voltage, or `None` for ground.
    #[inline]
    pub fn node_index(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of a device's branch current, if it has one.
    #[inline]
    pub fn branch_index(&self, device: DeviceId) -> Option<usize> {
        self.branch_of_device[device.index()].map(|b| (self.node_count - 1) + b)
    }

    /// Reads a node voltage out of a solution vector.
    #[inline]
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_index(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }
}

/// Numerical integration method for reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order implicit Euler: very stable, damps ringing.
    BackwardEuler,
    /// Second-order trapezoidal rule: more accurate, may ring on
    /// discontinuities.
    #[default]
    Trapezoidal,
}

/// Per-device history for reactive companion models, indexed by device.
#[derive(Debug, Clone)]
pub struct ReactiveHistory {
    /// Branch voltage `v(a) − v(b)` at the previous accepted timepoint.
    pub v: Vec<f64>,
    /// Branch current at the previous accepted timepoint.
    pub i: Vec<f64>,
}

impl ReactiveHistory {
    /// Zero-initialised history for a netlist.
    pub fn new(netlist: &Netlist) -> Self {
        ReactiveHistory {
            v: vec![0.0; netlist.device_count()],
            i: vec![0.0; netlist.device_count()],
        }
    }
}

/// How reactive elements are stamped.
#[derive(Debug, Clone)]
pub enum CompanionMode<'a> {
    /// DC: capacitors open, inductors shorted.
    Dc,
    /// Transient step of size `dt` from the state in `history`.
    Transient {
        /// Integration rule.
        method: Integrator,
        /// Timestep in seconds.
        dt: f64,
        /// State at the previous accepted timepoint.
        history: &'a ReactiveHistory,
    },
}

/// Everything the stamper needs to evaluate devices at one time/iterate.
#[derive(Debug, Clone)]
pub struct StampParams<'a> {
    /// Absolute simulation time (seconds).
    pub time: f64,
    /// Reactive element handling.
    pub companion: CompanionMode<'a>,
    /// Conductance added from every node to ground for robustness.
    pub gmin: f64,
    /// Scale factor on independent sources (1.0 normally; <1 during
    /// source stepping).
    pub source_scale: f64,
}

/// Stamps the full linearised MNA system `A·x_new = b` around the guess `x`.
pub fn stamp_system(
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    params: &StampParams<'_>,
    a: &mut Matrix,
    b: &mut [f64],
) {
    stamp_system_profiled(netlist, layout, x, params, a, b, None);
}

/// [`stamp_system`] with optional boundary-timed phase attribution.
///
/// Assembly runs in two passes — linear stamps plus gmin first,
/// nonlinear device model evaluation (MOSFET / diode / switch) second —
/// so a [`LapTimer`] can attribute each pass with a single clock read
/// ([`Phase::Stamp`] and [`Phase::DeviceEval`] respectively) instead of
/// paying a timing guard per device inside the Newton hot loop. The
/// pass split is unconditional (armed and disarmed runs assemble in
/// the same order), so arming the profiler never changes a bit of the
/// stamped system.
pub fn stamp_system_profiled(
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    params: &StampParams<'_>,
    a: &mut Matrix,
    b: &mut [f64],
    mut lap: Option<&mut LapTimer>,
) {
    a.clear();
    b.iter_mut().for_each(|v| *v = 0.0);

    // Helper closures for ground-aware stamping.
    let v_at = |node: NodeId| layout.voltage(x, node);

    for (dev_id, _, dev) in netlist.devices() {
        match dev {
            Device::Resistor { a: na, b: nb, ohms } => {
                stamp_conductance(layout, a, *na, *nb, 1.0 / ohms);
            }
            Device::Capacitor {
                a: na,
                b: nb,
                farads,
                ..
            } => match &params.companion {
                CompanionMode::Dc => {}
                CompanionMode::Transient {
                    method,
                    dt,
                    history,
                } => {
                    let (geq, irhs) = match method {
                        Integrator::BackwardEuler => {
                            let geq = farads / dt;
                            (geq, geq * history.v[dev_id.index()])
                        }
                        Integrator::Trapezoidal => {
                            let geq = 2.0 * farads / dt;
                            (
                                geq,
                                geq * history.v[dev_id.index()] + history.i[dev_id.index()],
                            )
                        }
                    };
                    stamp_conductance(layout, a, *na, *nb, geq);
                    stamp_current_injection(layout, b, *na, *nb, irhs);
                }
            },
            Device::Inductor {
                a: na,
                b: nb,
                henries,
            } => {
                let j = layout
                    .branch_index(dev_id)
                    .expect("inductor has a branch index");
                stamp_branch_kcl(layout, a, *na, *nb, j);
                // Branch equation: v(a) - v(b) - z*i = rhs
                match &params.companion {
                    CompanionMode::Dc => {
                        // Short: v(a) - v(b) = 0.
                    }
                    CompanionMode::Transient {
                        method,
                        dt,
                        history,
                    } => {
                        let (z, rhs) = match method {
                            Integrator::BackwardEuler => {
                                let z = henries / dt;
                                (z, -z * history.i[dev_id.index()])
                            }
                            Integrator::Trapezoidal => {
                                let z = 2.0 * henries / dt;
                                (
                                    z,
                                    -z * history.i[dev_id.index()] - history.v[dev_id.index()],
                                )
                            }
                        };
                        a.add(j, j, -z);
                        b[j] += rhs;
                    }
                }
            }
            Device::Vsource { pos, neg, wave } => {
                let j = layout
                    .branch_index(dev_id)
                    .expect("vsource has a branch index");
                stamp_branch_kcl(layout, a, *pos, *neg, j);
                b[j] += wave.value_at(params.time) * params.source_scale;
            }
            Device::Isource { pos, neg, wave } => {
                let i = wave.value_at(params.time) * params.source_scale;
                stamp_current_injection(layout, b, *pos, *neg, i);
            }
            Device::Vcvs {
                pos,
                neg,
                cpos,
                cneg,
                gain,
            } => {
                let j = layout
                    .branch_index(dev_id)
                    .expect("vcvs has a branch index");
                stamp_branch_kcl(layout, a, *pos, *neg, j);
                if let Some(ic) = layout.node_index(*cpos) {
                    a.add(j, ic, -gain);
                }
                if let Some(ic) = layout.node_index(*cneg) {
                    a.add(j, ic, *gain);
                }
            }
            Device::Vccs {
                pos,
                neg,
                cpos,
                cneg,
                gm,
            } => {
                stamp_transconductance(layout, a, *pos, *neg, *cpos, *cneg, *gm);
            }
            // Nonlinear devices are stamped in the second pass below.
            Device::Mosfet { .. } | Device::Diode { .. } | Device::Switch { .. } => {}
        }
    }

    // gmin to ground on every node for numerical robustness.
    if params.gmin > 0.0 {
        for n in 0..layout.node_count - 1 {
            a.add(n, n, params.gmin);
        }
    }

    if let Some(lap) = lap.as_deref_mut() {
        lap.lap(Phase::Stamp);
    }

    if !netlist.has_nonlinear_devices() {
        return;
    }
    for (_, _, dev) in netlist.devices() {
        match dev {
            Device::Mosfet {
                drain,
                gate,
                source,
                polarity,
                params: mp,
            } => {
                stamp_mosfet(layout, a, b, v_at, *drain, *gate, *source, *polarity, mp);
            }
            Device::Diode {
                anode,
                cathode,
                params: dp,
            } => {
                let vd = v_at(*anode) - v_at(*cathode);
                let (id, gd) = dp.evaluate(vd);
                let ieq = id - gd * vd;
                stamp_conductance(layout, a, *anode, *cathode, gd);
                stamp_current_injection(layout, b, *anode, *cathode, -ieq);
            }
            Device::Switch {
                a: na,
                b: nb,
                cpos,
                cneg,
                params: sp,
            } => {
                let vc = v_at(*cpos) - v_at(*cneg);
                stamp_conductance(layout, a, *na, *nb, sp.conductance(vc));
            }
            _ => {}
        }
    }

    if let Some(lap) = lap {
        lap.lap(Phase::DeviceEval);
    }
}

/// Stamps a two-terminal conductance.
#[inline]
fn stamp_conductance(layout: &MnaLayout, a: &mut Matrix, na: NodeId, nb: NodeId, g: f64) {
    let ia = layout.node_index(na);
    let ib = layout.node_index(nb);
    if let Some(i) = ia {
        a.add(i, i, g);
        if let Some(j) = ib {
            a.add(i, j, -g);
        }
    }
    if let Some(j) = ib {
        a.add(j, j, g);
        if let Some(i) = ia {
            a.add(j, i, -g);
        }
    }
}

/// Injects a constant current `i` into node `pos` and out of node `neg`.
#[inline]
fn stamp_current_injection(layout: &MnaLayout, b: &mut [f64], pos: NodeId, neg: NodeId, i: f64) {
    if let Some(ip) = layout.node_index(pos) {
        b[ip] += i;
    }
    if let Some(in_) = layout.node_index(neg) {
        b[in_] -= i;
    }
}

/// Stamps the KCL ±1 entries and the branch-row voltage terms for a
/// voltage-defined branch `j` between `pos` and `neg`.
#[inline]
fn stamp_branch_kcl(layout: &MnaLayout, a: &mut Matrix, pos: NodeId, neg: NodeId, j: usize) {
    if let Some(ip) = layout.node_index(pos) {
        a.add(ip, j, 1.0);
        a.add(j, ip, 1.0);
    }
    if let Some(in_) = layout.node_index(neg) {
        a.add(in_, j, -1.0);
        a.add(j, in_, -1.0);
    }
}

/// Stamps a transconductance `gm·(v(cpos) − v(cneg))` flowing `pos → neg`.
#[inline]
fn stamp_transconductance(
    layout: &MnaLayout,
    a: &mut Matrix,
    pos: NodeId,
    neg: NodeId,
    cpos: NodeId,
    cneg: NodeId,
    gm: f64,
) {
    for (row, sign_row) in [(pos, 1.0), (neg, -1.0)] {
        let Some(ir) = layout.node_index(row) else {
            continue;
        };
        if let Some(ic) = layout.node_index(cpos) {
            a.add(ir, ic, sign_row * gm);
        }
        if let Some(ic) = layout.node_index(cneg) {
            a.add(ir, ic, -sign_row * gm);
        }
    }
}

/// Stamps a level-1 MOSFET linearised around the present guess.
#[allow(clippy::too_many_arguments)]
fn stamp_mosfet(
    layout: &MnaLayout,
    a: &mut Matrix,
    b: &mut [f64],
    v_at: impl Fn(NodeId) -> f64,
    drain: NodeId,
    gate: NodeId,
    source: NodeId,
    polarity: MosPolarity,
    mp: &crate::devices::MosParams,
) {
    let vd = v_at(drain);
    let vg = v_at(gate);
    let vs = v_at(source);

    // Work in a "hi/lo" channel frame so the model only ever sees
    // vds >= 0; the physical source/drain swap when reverse-biased.
    //
    // For each polarity we compute the current `i` leaving node `hi`
    // through the channel into `lo`, plus its partial derivatives w.r.t.
    // (v_hi, v_g, v_lo).
    let (hi, lo, i0, d_hi, d_g, d_lo) = match polarity {
        MosPolarity::Nmos => {
            let (hi, lo) = if vd >= vs { (drain, source) } else { (source, drain) };
            let vhi = v_at(hi);
            let vlo = v_at(lo);
            let op = mp.evaluate(vg - vlo, vhi - vlo);
            // i(v_hi, v_g, v_lo) = Ids(vgs = vg - vlo, vds = vhi - vlo)
            (
                hi,
                lo,
                op.ids,
                op.gds,
                op.gm,
                -(op.gm + op.gds),
            )
        }
        MosPolarity::Pmos => {
            // PMOS conducts source -> drain when Vsg > Vt; the "hi" node is
            // the more positive of source/drain and acts as the source.
            let (hi, lo) = if vs >= vd { (source, drain) } else { (drain, source) };
            let vhi = v_at(hi);
            let vlo = v_at(lo);
            let op = mp.evaluate(vhi - vg, vhi - vlo);
            // i(v_hi, v_g, v_lo) = Ids(vgs = vhi - vg, vds = vhi - vlo)
            (
                hi,
                lo,
                op.ids,
                op.gm + op.gds,
                -op.gm,
                -op.gds,
            )
        }
    };

    let vhi = v_at(hi);
    let vlo = v_at(lo);
    // Linearisation: i ≈ i0 + d_hi·(v_hi−vhi0) + d_g·(v_g−vg0) + d_lo·(v_lo−vlo0)
    let ieq = i0 - d_hi * vhi - d_g * vg - d_lo * vlo;

    let ihi = layout.node_index(hi);
    let ilo = layout.node_index(lo);
    let ig = layout.node_index(gate);

    // Current leaves `hi`, enters `lo`; gate carries no current.
    for (row, sign) in [(ihi, 1.0), (ilo, -1.0)] {
        let Some(r) = row else { continue };
        if let Some(c) = ihi {
            a.add(r, c, sign * d_hi);
        }
        if let Some(c) = ig {
            a.add(r, c, sign * d_g);
        }
        if let Some(c) = ilo {
            a.add(r, c, sign * d_lo);
        }
        b[r] -= sign * ieq;
    }
}

/// Options for the Newton–Raphson solve.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Absolute voltage tolerance (volts).
    pub vabstol: f64,
    /// Absolute current tolerance (amperes).
    pub iabstol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Per-iteration clamp on voltage updates (volts); limits Newton
    /// overshoot through the exponential/quadratic device models.
    pub vstep_limit: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 150,
            vabstol: 1e-6,
            iabstol: 1e-9,
            reltol: 1e-4,
            vstep_limit: 1.0,
        }
    }
}

/// Runs damped Newton–Raphson from the guess in `x`, overwriting it with
/// the solution.
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] after `max_iterations`, or
/// [`AnalysisError::SingularMatrix`] if the Jacobian cannot be factored.
pub fn newton_solve(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    options: &NewtonOptions,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    newton_solve_budgeted(netlist, layout, params, options, None, SolveHooks::none(), x)
}

/// [`newton_solve`] with an optional wall-clock meter and the
/// per-solve observer bundle.
///
/// When `clock` is provided, its wall-clock budget is polled between
/// Newton iterations so a single stuck timestep cannot outlive the
/// analysis budget. `hooks` carries the optional iteration counter
/// ([`crate::metrics::SolverMetrics`]), the optional
/// [`crate::flight::FlightRecorder`] and the optional
/// [`PhaseProfiler`] attributing stamp / factor / back-substitute /
/// residual wall time; all handles are owned by the caller, so counts,
/// traces and timings cannot bleed between unrelated analyses the way
/// thread-global state would. A fully disarmed bundle costs a few
/// `None` branches per iteration, allocates nothing and never reads
/// the clock.
///
/// # Errors
///
/// As [`newton_solve`], plus [`AnalysisError::BudgetExceeded`] when the
/// clock's wall-clock ceiling is crossed.
pub fn newton_solve_budgeted(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    options: &NewtonOptions,
    clock: Option<&BudgetClock>,
    hooks: SolveHooks<'_>,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    // One lap timer per solve: phase boundaries inside the Newton loop
    // are single clock reads into local accumulators, published (and
    // credited to any enclosing phase guard) in one flush. Per-phase
    // RAII guards here cost tens of percent of a microsecond-scale
    // iteration; the lap timer keeps armed overhead in the low single
    // digits. The flush runs on every exit path so partial attribution
    // survives singular matrices and convergence failures.
    let mut lap = hooks.profile.map(|_| LapTimer::start());
    let result = newton_iterate(netlist, layout, params, options, clock, &hooks, lap.as_mut(), x);
    if let (Some(lap), Some(profile)) = (lap, hooks.profile) {
        lap.flush(profile);
    }
    result
}

/// The damped Newton loop behind [`newton_solve_budgeted`], with phase
/// boundaries marked on the caller's [`LapTimer`].
#[allow(clippy::too_many_arguments)]
fn newton_iterate(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    options: &NewtonOptions,
    clock: Option<&BudgetClock>,
    hooks: &SolveHooks<'_>,
    mut lap: Option<&mut LapTimer>,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    let n = layout.size();
    let nv = layout.node_count() - 1;
    let mut a = Matrix::zeros(n, n);
    let mut b = vec![0.0; n];

    // Flight records need the attempted step size; DC solves carry 0.
    let dt = match &params.companion {
        CompanionMode::Dc => 0.0,
        CompanionMode::Transient { dt, .. } => *dt,
    };

    // Linear circuits need exactly one solve.
    let linear = !netlist.has_nonlinear_devices();

    let mut worst = f64::INFINITY;
    for iter in 0..options.max_iterations {
        if let Some(clock) = clock {
            clock.check_wall(params.time)?;
        }
        if let Some(metrics) = hooks.metrics {
            metrics.newton_iteration();
        }
        // Budget/metrics bookkeeping (and the previous iteration's
        // tail) stays with the enclosing guard, not any solver phase.
        if let Some(l) = lap.as_deref_mut() {
            l.skip();
        }
        stamp_system_profiled(netlist, layout, x, params, &mut a, &mut b, lap.as_deref_mut());
        let lu = Lu::factor(&a)?;
        if let Some(l) = lap.as_deref_mut() {
            l.lap(Phase::Factor);
        }
        let x_new = lu.solve(&b);
        if let Some(l) = lap.as_deref_mut() {
            l.lap(Phase::BackSubstitute);
        }

        if linear {
            *x = x_new;
            return Ok(());
        }

        // Damped update with convergence check.
        worst = 0.0;
        let mut worst_index = 0;
        let mut converged = true;
        for k in 0..n {
            let mut delta = x_new[k] - x[k];
            if !delta.is_finite() {
                if let Some(flight) = hooks.flight {
                    flight.record_iteration(
                        params.time,
                        dt,
                        (iter + 1) as u64,
                        f64::INFINITY,
                        k,
                    );
                }
                return Err(AnalysisError::NoConvergence {
                    time: params.time,
                    residual: f64::INFINITY,
                    iterations: iter + 1,
                });
            }
            let (abstol, limit) = if k < nv {
                (options.vabstol, options.vstep_limit)
            } else {
                (options.iabstol, f64::INFINITY)
            };
            if delta.abs() > abstol + options.reltol * x_new[k].abs() {
                converged = false;
            }
            if delta.abs() > worst {
                worst = delta.abs();
                worst_index = k;
            }
            if delta.abs() > limit {
                delta = limit.copysign(delta);
            }
            x[k] += delta;
        }
        if let Some(l) = lap.as_deref_mut() {
            l.lap(Phase::Residual);
        }
        if let Some(flight) = hooks.flight {
            flight.record_iteration(params.time, dt, (iter + 1) as u64, worst, worst_index);
        }
        if converged {
            return Ok(());
        }
    }
    Err(AnalysisError::NoConvergence {
        time: params.time,
        residual: worst,
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    fn divider() -> (Netlist, NodeId, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(10.0));
        nl.resistor("R1", vin, out, 1e3);
        nl.resistor("R2", out, Netlist::GROUND, 3e3);
        (nl, vin, out)
    }

    fn solve_dc(nl: &Netlist) -> (MnaLayout, Vec<f64>) {
        let layout = MnaLayout::new(nl);
        let mut x = vec![0.0; layout.size()];
        let params = StampParams {
            time: 0.0,
            companion: CompanionMode::Dc,
            gmin: 1e-12,
            source_scale: 1.0,
        };
        newton_solve(nl, &layout, &params, &NewtonOptions::default(), &mut x).unwrap();
        (layout, x)
    }

    #[test]
    fn layout_counts_branches() {
        let (nl, _, _) = divider();
        let layout = MnaLayout::new(&nl);
        // 2 non-ground nodes + 1 vsource branch.
        assert_eq!(layout.size(), 3);
    }

    #[test]
    fn resistive_divider_solution() {
        let (nl, vin, out) = divider();
        let (layout, x) = solve_dc(&nl);
        // gmin (1e-12 S) to ground leaks a little current, so allow 1e-6.
        assert!((layout.voltage(&x, vin) - 10.0).abs() < 1e-6);
        assert!((layout.voltage(&x, out) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn vsource_branch_current() {
        let (nl, _, _) = divider();
        let (layout, x) = solve_dc(&nl);
        let v1 = nl.find_device("V1").unwrap();
        let j = layout.branch_index(v1).unwrap();
        // 10 V across 4 kΩ: branch current convention is current flowing
        // pos -> neg *through the source*, i.e. -2.5 mA here.
        assert!((x[j] + 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn vccs_injects_proportional_current() {
        let mut nl = Netlist::new();
        let c = nl.node("ctl");
        let o = nl.node("out");
        nl.vsource("V1", c, Netlist::GROUND, SourceWaveform::dc(2.0));
        // i = gm * v(ctl) flows out -> ground through the source; with a
        // load resistor the output voltage is -gm*R*vc.
        nl.vccs("G1", o, Netlist::GROUND, c, Netlist::GROUND, 1e-3);
        nl.resistor("RL", o, Netlist::GROUND, 1e3);
        let (layout, x) = solve_dc(&nl);
        assert!((layout.voltage(&x, o) + 2.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut nl = Netlist::new();
        let c = nl.node("ctl");
        let o = nl.node("out");
        nl.vsource("V1", c, Netlist::GROUND, SourceWaveform::dc(0.5));
        nl.vcvs("E1", o, Netlist::GROUND, c, Netlist::GROUND, 10.0);
        nl.resistor("RL", o, Netlist::GROUND, 1e3);
        let (layout, x) = solve_dc(&nl);
        assert!((layout.voltage(&x, o) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn nmos_diode_connected_bias() {
        // Diode-connected NMOS pulled up through a resistor: solves the
        // classic quadratic bias point.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let d = nl.node("d");
        nl.vsource("V1", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", vdd, d, 100e3);
        nl.mosfet(
            "M1",
            d,
            d,
            Netlist::GROUND,
            MosPolarity::Nmos,
            crate::devices::MosParams {
                vt0: 1.0,
                beta: 100e-6,
                lambda: 0.0,
            },
        );
        let (layout, x) = solve_dc(&nl);
        let vgs = layout.voltage(&x, d);
        // Check KCL: (5 - vgs)/100k = beta/2 (vgs-1)^2
        let i_r = (5.0 - vgs) / 100e3;
        let i_m = 0.5 * 100e-6 * (vgs - 1.0).powi(2);
        assert!(
            (i_r - i_m).abs() < 1e-9,
            "vgs = {vgs}, i_r = {i_r}, i_m = {i_m}"
        );
    }

    #[test]
    fn pmos_source_follower_direction() {
        // PMOS with gate grounded, source pulled to VDD through resistor:
        // conducts, dropping the source node near Vt above gate.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let s = nl.node("s");
        nl.vsource("V1", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", vdd, s, 10e3);
        // PMOS: source at node s, drain at ground, gate at ground.
        nl.mosfet(
            "M1",
            Netlist::GROUND,
            Netlist::GROUND,
            s,
            MosPolarity::Pmos,
            crate::devices::MosParams {
                vt0: 1.0,
                beta: 400e-6,
                lambda: 0.0,
            },
        );
        let (layout, x) = solve_dc(&nl);
        let vs = layout.voltage(&x, s);
        // The device conducts hard, so v(s) sits a little above Vt = 1 V.
        assert!(vs > 1.0 && vs < 2.5, "vs = {vs}");
    }

    #[test]
    fn cmos_inverter_transfers() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.vsource("VIN", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.mosfet(
            "MN",
            out,
            vin,
            Netlist::GROUND,
            MosPolarity::Nmos,
            crate::devices::MosParams::nmos_5um().with_aspect(2.0),
        );
        nl.mosfet(
            "MP",
            out,
            vin,
            vdd,
            MosPolarity::Pmos,
            crate::devices::MosParams::pmos_5um().with_aspect(5.0),
        );
        let (layout, x) = solve_dc(&nl);
        // Input low -> output high.
        assert!(layout.voltage(&x, out) > 4.5);
    }

    #[test]
    fn diode_clamp() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        let k = nl.node("k");
        nl.resistor("R1", a, k, 1e3);
        nl.diode("D1", k, Netlist::GROUND, crate::devices::DiodeParams::default());
        let (layout, x) = solve_dc(&nl);
        let vk = layout.voltage(&x, k);
        assert!(vk > 0.4 && vk < 0.8, "diode drop was {vk}");
    }

    #[test]
    fn floating_node_fails_without_gmin() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b_node = nl.node("b");
        nl.resistor("R1", a, b_node, 1e3);
        // Nothing connects to ground: singular without gmin.
        let layout = MnaLayout::new(&nl);
        let mut x = vec![0.0; layout.size()];
        let params = StampParams {
            time: 0.0,
            companion: CompanionMode::Dc,
            gmin: 0.0,
            source_scale: 1.0,
        };
        assert!(newton_solve(&nl, &layout, &params, &NewtonOptions::default(), &mut x).is_err());
    }
}
