//! Modified nodal analysis: unknown layout, device stamps and the shared
//! Newton–Raphson solver used by DC and transient analyses.

use std::sync::Arc;

use crate::dense::Matrix;
use crate::devices::{Device, MosPolarity};
use crate::flight::SolveHooks;
use crate::metrics::DemotionTier;
use crate::netlist::{DeviceId, Netlist, NodeId};
use crate::robust::BudgetClock;
use crate::solver::{
    FactorKey, MnaMatrix, PositionProbe, Rank1Action, Rank1Setup, SolverContext, SystemMatrix,
};
use crate::AnalysisError;
use linsys::sparse::{SparseMatrix, SparseStructure};
use linsys::{refine_once, NumericalHazard, SingularMatrixError};
use obs::profile::{LapTimer, Phase};
use obs::NumericSite;

/// Mapping from circuit topology to MNA unknown indices.
///
/// Unknowns are ordered: node voltages for nodes `1..node_count` (ground is
/// eliminated), followed by one branch current per voltage-defined element
/// (independent voltage sources, VCVSs, inductors).
#[derive(Debug, Clone)]
pub struct MnaLayout {
    node_count: usize,
    branch_of_device: Vec<Option<usize>>,
    size: usize,
}

impl MnaLayout {
    /// Builds the layout for a netlist.
    pub fn new(netlist: &Netlist) -> Self {
        let node_count = netlist.node_count();
        let mut branch_of_device = vec![None; netlist.device_count()];
        let mut next_branch = 0;
        for (id, _, dev) in netlist.devices() {
            if dev.needs_branch_current() {
                branch_of_device[id.index()] = Some(next_branch);
                next_branch += 1;
            }
        }
        MnaLayout {
            node_count,
            branch_of_device,
            size: (node_count - 1) + next_branch,
        }
    }

    /// Total number of unknowns.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of circuit nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Unknown index of a node voltage, or `None` for ground.
    #[inline]
    pub fn node_index(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of a device's branch current, if it has one.
    #[inline]
    pub fn branch_index(&self, device: DeviceId) -> Option<usize> {
        self.branch_of_device[device.index()].map(|b| (self.node_count - 1) + b)
    }

    /// Reads a node voltage out of a solution vector.
    #[inline]
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_index(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }
}

/// Numerical integration method for reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// First-order implicit Euler: very stable, damps ringing.
    BackwardEuler,
    /// Second-order trapezoidal rule: more accurate, may ring on
    /// discontinuities.
    #[default]
    Trapezoidal,
}

/// Per-device history for reactive companion models, indexed by device.
#[derive(Debug, Clone)]
pub struct ReactiveHistory {
    /// Branch voltage `v(a) − v(b)` at the previous accepted timepoint.
    pub v: Vec<f64>,
    /// Branch current at the previous accepted timepoint.
    pub i: Vec<f64>,
}

impl ReactiveHistory {
    /// Zero-initialised history for a netlist.
    pub fn new(netlist: &Netlist) -> Self {
        ReactiveHistory {
            v: vec![0.0; netlist.device_count()],
            i: vec![0.0; netlist.device_count()],
        }
    }
}

/// How reactive elements are stamped.
#[derive(Debug, Clone)]
pub enum CompanionMode<'a> {
    /// DC: capacitors open, inductors shorted.
    Dc,
    /// Transient step of size `dt` from the state in `history`.
    Transient {
        /// Integration rule.
        method: Integrator,
        /// Timestep in seconds.
        dt: f64,
        /// State at the previous accepted timepoint.
        history: &'a ReactiveHistory,
    },
}

/// Everything the stamper needs to evaluate devices at one time/iterate.
#[derive(Debug, Clone)]
pub struct StampParams<'a> {
    /// Absolute simulation time (seconds).
    pub time: f64,
    /// Reactive element handling.
    pub companion: CompanionMode<'a>,
    /// Conductance added from every node to ground for robustness.
    pub gmin: f64,
    /// Scale factor on independent sources (1.0 normally; <1 during
    /// source stepping).
    pub source_scale: f64,
}

/// Stamps the full linearised MNA system `A·x_new = b` around the guess `x`.
pub fn stamp_system<M: MnaMatrix>(
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    params: &StampParams<'_>,
    a: &mut M,
    b: &mut [f64],
) {
    stamp_system_profiled(netlist, layout, x, params, a, b, None);
}

/// [`stamp_system`] with optional boundary-timed phase attribution.
///
/// Assembly runs in two passes — linear stamps plus gmin first,
/// nonlinear device model evaluation (MOSFET / diode / switch) second —
/// so a [`LapTimer`] can attribute each pass with a single clock read
/// ([`Phase::Stamp`] and [`Phase::DeviceEval`] respectively) instead of
/// paying a timing guard per device inside the Newton hot loop. The
/// pass split is unconditional (armed and disarmed runs assemble in
/// the same order), so arming the profiler never changes a bit of the
/// stamped system.
pub fn stamp_system_profiled<M: MnaMatrix>(
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    params: &StampParams<'_>,
    a: &mut M,
    b: &mut [f64],
    mut lap: Option<&mut LapTimer>,
) {
    a.clear();
    b.iter_mut().for_each(|v| *v = 0.0);
    stamp_linear(netlist, layout, params, a, b);
    if let Some(lap) = lap.as_deref_mut() {
        lap.lap(Phase::Stamp);
    }
    if !netlist.has_nonlinear_devices() {
        return;
    }
    stamp_nonlinear(netlist, layout, x, a, b);
    if let Some(lap) = lap {
        lap.lap(Phase::DeviceEval);
    }
}

/// Pass 1: every linear device plus gmin. Independent of the Newton
/// iterate `x`, so one assembly per solve can serve every iteration
/// through a values snapshot.
pub fn stamp_linear<M: MnaMatrix>(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    a: &mut M,
    b: &mut [f64],
) {
    for (dev_id, _, dev) in netlist.devices() {
        match dev {
            Device::Resistor { a: na, b: nb, ohms } => {
                stamp_conductance(layout, a, *na, *nb, 1.0 / ohms);
            }
            Device::Capacitor {
                a: na,
                b: nb,
                farads,
                ..
            } => match &params.companion {
                CompanionMode::Dc => {}
                CompanionMode::Transient {
                    method,
                    dt,
                    history,
                } => {
                    let (geq, irhs) = match method {
                        Integrator::BackwardEuler => {
                            let geq = farads / dt;
                            (geq, geq * history.v[dev_id.index()])
                        }
                        Integrator::Trapezoidal => {
                            let geq = 2.0 * farads / dt;
                            (
                                geq,
                                geq * history.v[dev_id.index()] + history.i[dev_id.index()],
                            )
                        }
                    };
                    stamp_conductance(layout, a, *na, *nb, geq);
                    stamp_current_injection(layout, b, *na, *nb, irhs);
                }
            },
            Device::Inductor {
                a: na,
                b: nb,
                henries,
            } => {
                let j = layout
                    .branch_index(dev_id)
                    .expect("inductor has a branch index");
                stamp_branch_kcl(layout, a, *na, *nb, j);
                // Branch equation: v(a) - v(b) - z*i = rhs
                match &params.companion {
                    CompanionMode::Dc => {
                        // Short: v(a) - v(b) = 0.
                    }
                    CompanionMode::Transient {
                        method,
                        dt,
                        history,
                    } => {
                        let (z, rhs) = match method {
                            Integrator::BackwardEuler => {
                                let z = henries / dt;
                                (z, -z * history.i[dev_id.index()])
                            }
                            Integrator::Trapezoidal => {
                                let z = 2.0 * henries / dt;
                                (
                                    z,
                                    -z * history.i[dev_id.index()] - history.v[dev_id.index()],
                                )
                            }
                        };
                        a.add(j, j, -z);
                        b[j] += rhs;
                    }
                }
            }
            Device::Vsource { pos, neg, wave } => {
                let j = layout
                    .branch_index(dev_id)
                    .expect("vsource has a branch index");
                stamp_branch_kcl(layout, a, *pos, *neg, j);
                b[j] += wave.value_at(params.time) * params.source_scale;
            }
            Device::Isource { pos, neg, wave } => {
                let i = wave.value_at(params.time) * params.source_scale;
                stamp_current_injection(layout, b, *pos, *neg, i);
            }
            Device::Vcvs {
                pos,
                neg,
                cpos,
                cneg,
                gain,
            } => {
                let j = layout
                    .branch_index(dev_id)
                    .expect("vcvs has a branch index");
                stamp_branch_kcl(layout, a, *pos, *neg, j);
                if let Some(ic) = layout.node_index(*cpos) {
                    a.add(j, ic, -gain);
                }
                if let Some(ic) = layout.node_index(*cneg) {
                    a.add(j, ic, *gain);
                }
            }
            Device::Vccs {
                pos,
                neg,
                cpos,
                cneg,
                gm,
            } => {
                stamp_transconductance(layout, a, *pos, *neg, *cpos, *cneg, *gm);
            }
            // Nonlinear devices are stamped in the second pass below.
            Device::Mosfet { .. } | Device::Diode { .. } | Device::Switch { .. } => {}
        }
    }

    // gmin to ground on every node for numerical robustness.
    if params.gmin > 0.0 {
        for n in 0..layout.node_count - 1 {
            a.add(n, n, params.gmin);
        }
    }
}

/// Pass 2: nonlinear device models (MOSFET / diode / switch) linearised
/// around the present guess `x`, stamped on top of the linear baseline.
pub fn stamp_nonlinear<M: MnaMatrix>(
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    a: &mut M,
    b: &mut [f64],
) {
    // Helper closure for ground-aware stamping.
    let v_at = |node: NodeId| layout.voltage(x, node);
    for (_, _, dev) in netlist.devices() {
        match dev {
            Device::Mosfet {
                drain,
                gate,
                source,
                polarity,
                params: mp,
            } => {
                stamp_mosfet(layout, a, b, v_at, *drain, *gate, *source, *polarity, mp);
            }
            Device::Diode {
                anode,
                cathode,
                params: dp,
            } => {
                let vd = v_at(*anode) - v_at(*cathode);
                let (id, gd) = dp.evaluate(vd);
                let ieq = id - gd * vd;
                stamp_conductance(layout, a, *anode, *cathode, gd);
                stamp_current_injection(layout, b, *anode, *cathode, -ieq);
            }
            Device::Switch {
                a: na,
                b: nb,
                cpos,
                cneg,
                params: sp,
            } => {
                let vc = v_at(*cpos) - v_at(*cneg);
                stamp_conductance(layout, a, *na, *nb, sp.conductance(vc));
            }
            _ => {}
        }
    }
}

/// Stamps a two-terminal conductance.
#[inline]
fn stamp_conductance<M: MnaMatrix>(layout: &MnaLayout, a: &mut M, na: NodeId, nb: NodeId, g: f64) {
    let ia = layout.node_index(na);
    let ib = layout.node_index(nb);
    if let Some(i) = ia {
        a.add(i, i, g);
        if let Some(j) = ib {
            a.add(i, j, -g);
        }
    }
    if let Some(j) = ib {
        a.add(j, j, g);
        if let Some(i) = ia {
            a.add(j, i, -g);
        }
    }
}

/// Injects a constant current `i` into node `pos` and out of node `neg`.
#[inline]
fn stamp_current_injection(layout: &MnaLayout, b: &mut [f64], pos: NodeId, neg: NodeId, i: f64) {
    if let Some(ip) = layout.node_index(pos) {
        b[ip] += i;
    }
    if let Some(in_) = layout.node_index(neg) {
        b[in_] -= i;
    }
}

/// Stamps the KCL ±1 entries and the branch-row voltage terms for a
/// voltage-defined branch `j` between `pos` and `neg`.
#[inline]
fn stamp_branch_kcl<M: MnaMatrix>(layout: &MnaLayout, a: &mut M, pos: NodeId, neg: NodeId, j: usize) {
    if let Some(ip) = layout.node_index(pos) {
        a.add(ip, j, 1.0);
        a.add(j, ip, 1.0);
    }
    if let Some(in_) = layout.node_index(neg) {
        a.add(in_, j, -1.0);
        a.add(j, in_, -1.0);
    }
}

/// Stamps a transconductance `gm·(v(cpos) − v(cneg))` flowing `pos → neg`.
#[inline]
fn stamp_transconductance<M: MnaMatrix>(
    layout: &MnaLayout,
    a: &mut M,
    pos: NodeId,
    neg: NodeId,
    cpos: NodeId,
    cneg: NodeId,
    gm: f64,
) {
    for (row, sign_row) in [(pos, 1.0), (neg, -1.0)] {
        let Some(ir) = layout.node_index(row) else {
            continue;
        };
        if let Some(ic) = layout.node_index(cpos) {
            a.add(ir, ic, sign_row * gm);
        }
        if let Some(ic) = layout.node_index(cneg) {
            a.add(ir, ic, -sign_row * gm);
        }
    }
}

/// Stamps a level-1 MOSFET linearised around the present guess.
#[allow(clippy::too_many_arguments)]
fn stamp_mosfet<M: MnaMatrix>(
    layout: &MnaLayout,
    a: &mut M,
    b: &mut [f64],
    v_at: impl Fn(NodeId) -> f64,
    drain: NodeId,
    gate: NodeId,
    source: NodeId,
    polarity: MosPolarity,
    mp: &crate::devices::MosParams,
) {
    let vd = v_at(drain);
    let vg = v_at(gate);
    let vs = v_at(source);

    // Work in a "hi/lo" channel frame so the model only ever sees
    // vds >= 0; the physical source/drain swap when reverse-biased.
    //
    // For each polarity we compute the current `i` leaving node `hi`
    // through the channel into `lo`, plus its partial derivatives w.r.t.
    // (v_hi, v_g, v_lo).
    let (hi, lo, vhi, vlo, i0, d_hi, d_g, d_lo) = match polarity {
        MosPolarity::Nmos => {
            let (hi, lo, vhi, vlo) = if vd >= vs {
                (drain, source, vd, vs)
            } else {
                (source, drain, vs, vd)
            };
            let op = mp.evaluate(vg - vlo, vhi - vlo);
            // i(v_hi, v_g, v_lo) = Ids(vgs = vg - vlo, vds = vhi - vlo)
            (hi, lo, vhi, vlo, op.ids, op.gds, op.gm, -(op.gm + op.gds))
        }
        MosPolarity::Pmos => {
            // PMOS conducts source -> drain when Vsg > Vt; the "hi" node is
            // the more positive of source/drain and acts as the source.
            let (hi, lo, vhi, vlo) = if vs >= vd {
                (source, drain, vs, vd)
            } else {
                (drain, source, vd, vs)
            };
            let op = mp.evaluate(vhi - vg, vhi - vlo);
            // i(v_hi, v_g, v_lo) = Ids(vgs = vhi - vg, vds = vhi - vlo)
            (hi, lo, vhi, vlo, op.ids, op.gm + op.gds, -op.gm, -op.gds)
        }
    };
    // Linearisation: i ≈ i0 + d_hi·(v_hi−vhi0) + d_g·(v_g−vg0) + d_lo·(v_lo−vlo0)
    let ieq = i0 - d_hi * vhi - d_g * vg - d_lo * vlo;

    let ihi = layout.node_index(hi);
    let ilo = layout.node_index(lo);
    let ig = layout.node_index(gate);

    // Current leaves `hi`, enters `lo`; gate carries no current.
    for (row, sign) in [(ihi, 1.0), (ilo, -1.0)] {
        let Some(r) = row else { continue };
        if let Some(c) = ihi {
            a.add(r, c, sign * d_hi);
        }
        if let Some(c) = ig {
            a.add(r, c, sign * d_g);
        }
        if let Some(c) = ilo {
            a.add(r, c, sign * d_lo);
        }
        b[r] -= sign * ieq;
    }
}

/// Options for the Newton–Raphson solve.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Absolute voltage tolerance (volts).
    pub vabstol: f64,
    /// Absolute current tolerance (amperes).
    pub iabstol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Per-iteration clamp on voltage updates (volts); limits Newton
    /// overshoot through the exponential/quadratic device models.
    pub vstep_limit: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 150,
            vabstol: 1e-6,
            iabstol: 1e-9,
            reltol: 1e-4,
            vstep_limit: 1.0,
        }
    }
}

/// Runs damped Newton–Raphson from the guess in `x`, overwriting it with
/// the solution.
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] after `max_iterations`, or
/// [`AnalysisError::SingularMatrix`] if the Jacobian cannot be factored.
pub fn newton_solve(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    options: &NewtonOptions,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    newton_solve_budgeted(netlist, layout, params, options, None, SolveHooks::none(), x)
}

/// [`newton_solve`] with an optional wall-clock meter and the
/// per-solve observer bundle.
///
/// When `clock` is provided, its wall-clock budget is polled between
/// Newton iterations so a single stuck timestep cannot outlive the
/// analysis budget. `hooks` carries the optional iteration counter
/// ([`crate::metrics::SolverMetrics`]), the optional
/// [`crate::flight::FlightRecorder`] and the optional
/// [`PhaseProfiler`] attributing stamp / factor / back-substitute /
/// residual wall time; all handles are owned by the caller, so counts,
/// traces and timings cannot bleed between unrelated analyses the way
/// thread-global state would. A fully disarmed bundle costs a few
/// `None` branches per iteration, allocates nothing and never reads
/// the clock.
///
/// # Errors
///
/// As [`newton_solve`], plus [`AnalysisError::BudgetExceeded`] when the
/// clock's wall-clock ceiling is crossed.
pub fn newton_solve_budgeted(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    options: &NewtonOptions,
    clock: Option<&BudgetClock>,
    hooks: SolveHooks<'_>,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    let mut ctx = SolverContext::default();
    newton_solve_with_context(
        netlist, layout, params, options, clock, hooks, &mut ctx, None, x,
    )
}

/// [`newton_solve_budgeted`] against a caller-owned [`SolverContext`].
///
/// The context carries the sparse symbolic structure, the assembled
/// system workspace and the cached factorisation *across* solves, which
/// is where the reuse wins come from: a transient march passes the same
/// context for every timestep, so a factorisation computed at one
/// timepoint keeps serving as the modified-Newton preconditioner until
/// the reuse policy retires it. `rank1` optionally routes linear solves
/// through a golden factorisation cache (capture on the golden run,
/// Sherman–Morrison application on fault runs).
///
/// # Errors
///
/// As [`newton_solve_budgeted`].
#[allow(clippy::too_many_arguments)]
pub fn newton_solve_with_context(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    options: &NewtonOptions,
    clock: Option<&BudgetClock>,
    hooks: SolveHooks<'_>,
    ctx: &mut SolverContext,
    rank1: Option<&Rank1Setup>,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    // One lap timer per solve: phase boundaries inside the Newton loop
    // are single clock reads into local accumulators, published (and
    // credited to any enclosing phase guard) in one flush. Per-phase
    // RAII guards here cost tens of percent of a microsecond-scale
    // iteration; the lap timer keeps armed overhead in the low single
    // digits. The flush runs on every exit path so partial attribution
    // survives singular matrices and convergence failures.
    let mut lap = hooks.profile.map(|_| LapTimer::start());
    let result = newton_iterate(
        netlist,
        layout,
        params,
        options,
        clock,
        &hooks,
        ctx,
        rank1,
        lap.as_mut(),
        x,
    );
    if let (Some(lap), Some(profile)) = (lap, hooks.profile) {
        lap.flush(profile);
    }
    result
}

/// Consecutive Newton iterations a cached factorisation may serve
/// before a refactorisation is forced regardless of contraction. The
/// contraction guard is what protects solution quality; this cap only
/// bounds how long a lucky-but-marginal factorisation can linger, so
/// it can be generous.
const STALE_ITER_CAP: u32 = 64;

/// Minimum per-iteration contraction a stale factorisation must keep
/// delivering: a trial stale step with `worst >= STALE_CONTRACTION *
/// prev_worst` is rejected and the iteration refactorises instead.
///
/// The value trades cheap stale iterations (an assembly plus two
/// back-substitutions) against expensive refactorisations. Sweeping it
/// on the e6 campaigns: 0.5 demands near-Newton contraction and
/// refactorises on a quarter of all iterations; 0.9 tolerates slowly
/// converging stale chains and cuts refactorisations 4× for ~20% more
/// iterations — a net win because a refactorisation costs ~3× a stale
/// iteration at macro scale. Beyond 0.9 the curve is flat, so the
/// guard keeps the tightest setting on the plateau. Solution quality
/// is unaffected either way: acceptance only decides *which matrix*
/// solves the next step, and convergence is still declared against the
/// caller's tolerances.
const STALE_CONTRACTION: f64 = 0.9;

/// [`STALE_CONTRACTION`] for **DC** solves. Far from an operating
/// point, Newton steps are clamped by `vstep_limit`, so a stale
/// Jacobian can shuffle the iterate sideways in barely-contracting
/// steps that each pass a loose guard yet never reach the solution —
/// a diode-connected bias from a cold start cycles exactly this way.
/// Demanding near-Newton contraction makes any DC stale chain earn its
/// keep or hand over to a fresh factorisation immediately. DC solves
/// are a rounding error of campaign time (hundreds of calls against
/// millions of transient steps), so this buys homotopy robustness for
/// free.
const STALE_CONTRACTION_DC: f64 = 0.5;

/// Tolerance tightening applied when declaring convergence on a stale
/// step of a **DC** solve. The residual-form step
/// `x − M⁻¹(A(x)·x − b(x))` has the true solution as its fixed point
/// and the contraction guard bounds the rate at [`STALE_CONTRACTION`],
/// so stopping at `tol` leaves at most `tol·ρ/(1−ρ) ≤ tol` of error —
/// fine inside a transient step, whose local truncation error already
/// dwarfs the solver tolerance. DC sweeps are different: each point is
/// reported directly and adjacent points share cached factors, so
/// point-to-point solver error of `O(tol)` shows up as visible wiggle
/// on an otherwise monotone curve (the inverter-VTC quality test
/// catches exactly this). Tightening only the DC stale stop keeps
/// sweep quality at fresh-Newton levels without touching the transient
/// hot path.
const STALE_TOL_SCALE_DC: f64 = 1e-4;

/// Length, in solves, of the distrust window opened when a stale trial
/// step fails its contraction guard. During fast transients (source
/// edges, switch flips) consecutive solves keep landing in new
/// operating regions where the cached Jacobian loses every trial;
/// refactorising immediately on the first iteration of the next few
/// solves saves the doomed trial's assembly, two back-substitutions
/// and a wasted Newton iteration per solve. The window is short so
/// reuse resumes a few steps after the circuit settles.
const DISTRUST_SOLVES: u8 = 4;

/// Pivot-growth factor above which a fresh factorisation raises the
/// advisory [`NumericalHazard::PivotGrowth`]. Partial pivoting keeps
/// growth near 1 on every well-behaved MNA system; values past 1e8 mean
/// elimination amplified entries enough to eat half the mantissa.
/// Advisory only: the acceptance gates decide whether the answer
/// stands, the counter tells the postmortem *why* it might not have.
const GROWTH_LIMIT: f64 = 1e8;

/// 1-norm condition estimate above which a fresh factorisation raises
/// the advisory [`NumericalHazard::IllConditioned`]. κ₁ ≈ 1e14 leaves
/// roughly two significant decimal digits in the solve — the point
/// where a fault signature stops being trustworthy. Estimated only on
/// fresh-key factorisations (a handful per analysis) because the Hager
/// probe costs a few extra back-substitutions.
const COND_LIMIT: f64 = 1e14;

/// Componentwise acceptance gate for solves returned off a *reused* (or
/// single-shot fresh) factorisation: the solve passes when the true
/// residual ∞-norm is below this fraction of its Oettli–Prager scale
/// `max_r(Σ_c |a_rc·x_c| + |b_r|)`. Honest solves sit at rounding level
/// (~1e-13 of scale even through a rank-1 update), so 1e-8 leaves four
/// orders of margin while still catching a corrupted factor, a stale
/// structure or a poisoned right-hand side. Failures take one round of
/// iterative refinement before the tier demotes.
const RESID_GATE_TOL: f64 = 1e-8;

/// Scale-relative breakdown threshold for the Sherman–Morrison
/// denominator `1 + g·wᵀz`: the update is degenerate when the sum
/// cancels to within this fraction of its operands' magnitude. The old
/// absolute `1e-300` floor only caught underflow — a denominator of
/// 1e-14 built from operands of size 1e2 is pure cancellation noise yet
/// sailed through it.
const RANK1_DENOM_REL_TOL: f64 = 1e-12;

/// Counts a hazard and appends it to the flight-recorder history.
fn note_hazard(hooks: &SolveHooks<'_>, hazard: NumericalHazard, action: &str, time: f64) {
    if let Some(metrics) = hooks.metrics {
        metrics.hazard(hazard);
    }
    if let Some(flight) = hooks.flight {
        flight.record_hazard(hazard.label(), action, time);
    }
}

/// Counts a demotion to `tier`.
fn note_demotion(hooks: &SolveHooks<'_>, tier: DemotionTier) {
    if let Some(metrics) = hooks.metrics {
        metrics.demotion(tier);
    }
}

/// Flight-recorder action string for a demotion to `tier`.
fn demote_action(tier: DemotionTier) -> &'static str {
    match tier {
        DemotionTier::Stale => "demote:stale",
        DemotionTier::Refactor => "demote:refactor",
        DemotionTier::Symbolic => "demote:symbolic",
        DemotionTier::Dense => "demote:dense",
    }
}

/// Cache key for the current stamp parameters. Time and `source_scale`
/// only shape the right-hand side, so they stay out of the key.
fn factor_key(params: &StampParams<'_>) -> FactorKey {
    match &params.companion {
        CompanionMode::Dc => FactorKey {
            mode: 0,
            method: 2,
            dt_bits: 0,
            gmin_bits: params.gmin.to_bits(),
        },
        CompanionMode::Transient { method, dt, .. } => FactorKey {
            mode: 1,
            method: match method {
                Integrator::BackwardEuler => 0,
                Integrator::Trapezoidal => 1,
            },
            dt_bits: dt.to_bits(),
            gmin_bits: params.gmin.to_bits(),
        },
    }
}

/// Prepares the context's assembled-system workspace for this solve:
/// sizes the scratch vectors, and (for the sparse backend) builds the
/// per-mode symbolic structure with a one-time stamping probe.
fn ensure_system(
    ctx: &mut SolverContext,
    netlist: &Netlist,
    layout: &MnaLayout,
    x: &[f64],
    params: &StampParams<'_>,
    lap: Option<&mut LapTimer>,
) {
    let n = layout.size();
    let mode = match &params.companion {
        CompanionMode::Dc => 0,
        CompanionMode::Transient { .. } => 1,
    };
    if ctx.b.len() != n {
        // Dimension change: this context is being pointed at a new
        // layout, so nothing cached about the old one survives.
        ctx.structures = [None, None];
        ctx.sys = None;
        ctx.factor = None;
        ctx.force_refactor = false;
        ctx.stale_iters = 0;
        ctx.b.resize(n, 0.0);
        ctx.x_new.resize(n, 0.0);
        ctx.resid.resize(n, 0.0);
        ctx.scratch.resize(n, 0.0);
        ctx.trial.resize(n, 0.0);
    }
    if matches!(&ctx.sys, Some((m, sys)) if *m == mode && sys.n() == n) {
        return;
    }
    let sys = match ctx.backend {
        crate::solver::Backend::Dense => SystemMatrix::Dense(Matrix::zeros(n, n)),
        // Even at macro scale (tens of unknowns) the sparse kernel wins
        // on the campaign hot path: factor-from-scratch favours dense
        // below ~64 unknowns, but the reuse tiers make back-substitution
        // (O(nnz), not O(n²)) and baseline restore (nnz values, not n²)
        // the dominant per-iteration costs, and those stay sparse-cheap
        // at every size.
        crate::solver::Backend::Sparse => {
            if ctx.structures[mode].is_none() {
                let mut probe = PositionProbe::new();
                let mut scratch_b = vec![0.0; n];
                stamp_linear(netlist, layout, params, &mut probe, &mut scratch_b);
                if netlist.has_nonlinear_devices() {
                    stamp_nonlinear(netlist, layout, x, &mut probe, &mut scratch_b);
                }
                // The nonlinear position set is iterate-independent
                // (MOSFET hi/lo frame swaps reorder adds inside a fixed
                // symmetric position set), and covering the diagonal
                // keeps gmin sweeps on the same structure.
                probe.cover_diagonal(n);
                ctx.structures[mode] = Some(SparseStructure::from_positions(n, probe.positions()));
                if let Some(lap) = lap {
                    lap.lap(Phase::Symbolic);
                }
            }
            let structure = ctx.structures[mode].as_ref().expect("structure just built");
            SystemMatrix::Sparse(SparseMatrix::zeros(Arc::clone(structure)))
        }
    };
    ctx.sys = Some((mode, sys));
}

/// The damped Newton loop behind [`newton_solve_with_context`], with
/// phase boundaries marked on the caller's [`LapTimer`].
///
/// Per iteration the loop restores the linear-baseline stamp snapshot
/// (first iteration of a solve assembles and captures it), stamps the
/// nonlinear devices on top, then picks a linear-solve tier:
///
/// 1. **Sherman–Morrison** (linear netlists with a rank-1 fault delta
///    and a golden factorisation cached under this key) — two
///    back-substitutions against the *golden* factors, no
///    factorisation of the faulty matrix at all.
/// 2. **Cached factorisation** (key matches, not forced): linear
///    netlists solve directly; nonlinear ones take a modified-Newton
///    step in residual form `x_new = x − M⁻¹(A(x)·x − b(x))` against
///    the stale factors.
/// 3. **(Re)factorisation** otherwise, attributed to
///    [`Phase::Factor`] on a fresh key and [`Phase::Refactor`] when the
///    reuse policy retired a same-key factorisation.
///
/// The stale policy is deterministic and depends only on quantities
/// that are bit-identical across backends (`worst` update magnitudes),
/// so dense and sparse runs take identical iteration trajectories.
#[allow(clippy::too_many_arguments)]
fn newton_iterate(
    netlist: &Netlist,
    layout: &MnaLayout,
    params: &StampParams<'_>,
    options: &NewtonOptions,
    clock: Option<&BudgetClock>,
    hooks: &SolveHooks<'_>,
    ctx: &mut SolverContext,
    rank1: Option<&Rank1Setup>,
    mut lap: Option<&mut LapTimer>,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    let n = layout.size();
    let nv = layout.node_count() - 1;
    let key = factor_key(params);

    ensure_system(ctx, netlist, layout, x, params, lap.as_deref_mut());

    // Flight records need the attempted step size; DC solves carry 0.
    let dt = match &params.companion {
        CompanionMode::Dc => 0.0,
        CompanionMode::Transient { dt, .. } => *dt,
    };

    // Linear circuits need exactly one solve.
    let linear = !netlist.has_nonlinear_devices();

    // Stale steps of a DC solve stop against a tightened tolerance (see
    // STALE_TOL_SCALE_DC); transient steps use the plain tolerance.
    let stale_tol_scale = match &params.companion {
        CompanionMode::Dc => STALE_TOL_SCALE_DC,
        CompanionMode::Transient { .. } => 1.0,
    };
    let stale_contraction = match &params.companion {
        CompanionMode::Dc => STALE_CONTRACTION_DC,
        CompanionMode::Transient { .. } => STALE_CONTRACTION,
    };

    // One solve has begun: age the distrust window. While it is open,
    // the first iteration refactorises instead of trialling the cached
    // factors (the gate below), because a just-failed contraction guard
    // says the circuit is moving too fast for the stale Jacobian.
    ctx.distrust = ctx.distrust.saturating_sub(1);

    let mut worst = f64::INFINITY;
    let mut prev_worst = f64::INFINITY;
    let mut baseline_ready = false;
    // Per-solve recovery latches: each rung of the demotion ladder may
    // fire once per `newton_iterate` call, so recovery work stays
    // bounded and a persistent hazard reaches its typed error promptly.
    let mut demoted: u8 = 0;
    let mut fresh_retry = false;
    let mut nonfinite_retry = false;
    'newton: for iter in 0..options.max_iterations {
        if let Some(clock) = clock {
            clock.check_wall(params.time)?;
        }
        if let Some(metrics) = hooks.metrics {
            metrics.newton_iteration();
        }
        // Budget/metrics bookkeeping (and the previous iteration's
        // tail) stays with the enclosing guard, not any solver phase.
        if let Some(l) = lap.as_deref_mut() {
            l.skip();
        }

        // Assemble: restore the linear baseline (captured on the first
        // iteration of this solve), then stamp nonlinear devices at x.
        {
            let (_, sys) = ctx.sys.as_mut().expect("system prepared");
            if baseline_ready {
                sys.load_values(&ctx.baseline_a);
                ctx.b.copy_from_slice(&ctx.baseline_b);
            } else {
                sys.clear();
                ctx.b.iter_mut().for_each(|v| *v = 0.0);
                stamp_linear(netlist, layout, params, sys, &mut ctx.b);
                ctx.baseline_a.clear();
                ctx.baseline_a.extend_from_slice(sys.values());
                ctx.baseline_b.clear();
                ctx.baseline_b.extend_from_slice(&ctx.b);
                baseline_ready = true;
            }
            if let Some(l) = lap.as_deref_mut() {
                l.lap(Phase::Stamp);
            }
            if !linear {
                stamp_nonlinear(netlist, layout, x, sys, &mut ctx.b);
                if let Some(l) = lap.as_deref_mut() {
                    l.lap(Phase::DeviceEval);
                }
            }
        }

        // Tier 1: Sherman–Morrison against the golden factorisation.
        if linear {
            if let Some(setup) = rank1 {
                if let Rank1Action::Apply(delta) = &setup.action {
                    if let Some(golden) = setup.cache.get(&key) {
                        // x = y − z·(g·wᵀy)/(1 + g·wᵀz) with
                        // y = M⁻¹b, z = M⁻¹w and A = M + g·w·wᵀ.
                        golden.solve_into(&ctx.b, &mut ctx.x_new);
                        delta.w_into(&mut ctx.resid);
                        golden.solve_into(&ctx.resid, &mut ctx.scratch);
                        let g = delta.conductance;
                        let gwz = g * delta.w_dot(&ctx.scratch);
                        let denom = 1.0 + gwz;
                        // The update is degenerate when `1 + g·wᵀz`
                        // cancels to rounding level of its operands — a
                        // scale-relative test, unlike the absolute
                        // underflow floor it replaces, which waved
                        // through catastrophically cancelled sums. The
                        // chaos hook forces a breakdown on schedule.
                        let breakdown = hooks.chaos.is_some_and(|c| c.fire(NumericSite::Denom))
                            || denom.abs() <= RANK1_DENOM_REL_TOL * 1.0_f64.max(gwz.abs());
                        let mut sm_hazard = NumericalHazard::Rank1Breakdown;
                        if !breakdown {
                            let coef = g * delta.w_dot(&ctx.x_new) / denom;
                            for k in 0..n {
                                ctx.x_new[k] -= coef * ctx.scratch[k];
                            }
                            if let Some(l) = lap.as_deref_mut() {
                                l.lap(Phase::Rank1Update);
                            }
                            // Acceptance gate: the golden factors are a
                            // reused tier, so the corrected solve must
                            // reproduce the assembled faulty system
                            // before it is returned. One refinement
                            // round through the same factors (M ≈ A)
                            // repairs marginal solves; anything still
                            // above the gate demotes below.
                            let (_, sys) = ctx.sys.as_ref().expect("system prepared");
                            let (rnorm, scale) =
                                sys.residual_gate_into(&ctx.x_new, &ctx.b, &mut ctx.resid);
                            let mut accepted = rnorm <= RESID_GATE_TOL * scale;
                            if !accepted {
                                if let Some(metrics) = hooks.metrics {
                                    metrics.refinement_round();
                                }
                                let b = &ctx.b;
                                let out = refine_once(
                                    &mut ctx.x_new,
                                    &mut ctx.resid,
                                    &mut ctx.scratch,
                                    &mut ctx.trial,
                                    |xv, out| sys.residual_into(xv, b, out),
                                    |r, out| golden.solve_into(r, out),
                                );
                                accepted = out.residual_after <= RESID_GATE_TOL * scale;
                            }
                            if accepted {
                                if let Some(metrics) = hooks.metrics {
                                    metrics.factor_reuse_hit();
                                }
                                x.clear();
                                x.extend_from_slice(&ctx.x_new);
                                return Ok(());
                            }
                            sm_hazard = NumericalHazard::RefinementStall;
                        }
                        // Degenerate or unrepairable update: demote to
                        // the cached factorisation of the faulty matrix
                        // when one exists under this key, else to a
                        // refactorisation, and fall through to those
                        // tiers.
                        let tier = if !ctx.force_refactor
                            && matches!(&ctx.factor, Some((k, _)) if *k == key)
                        {
                            DemotionTier::Stale
                        } else {
                            DemotionTier::Refactor
                        };
                        note_demotion(hooks, tier);
                        note_hazard(hooks, sm_hazard, demote_action(tier), params.time);
                    }
                }
            }
        }

        let mut cached = !ctx.force_refactor && matches!(&ctx.factor, Some((k, _)) if *k == key);
        let mut stale_accepted = false;
        let mut stale_rejected = false;
        if cached && linear {
            // The matrix is exactly the one the factorisation was
            // computed from (linear stamps depend only on the key), so
            // the cached solve is exact — but the factors are still a
            // reused tier, so the acceptance gate (plus one refinement
            // round) must pass before the solve is returned.
            let (_, factor) = ctx.factor.as_ref().expect("cached factor present");
            factor.solve_into(&ctx.b, &mut ctx.x_new);
            if let Some(l) = lap.as_deref_mut() {
                l.lap(Phase::BackSubstitute);
            }
            let (_, sys) = ctx.sys.as_ref().expect("system prepared");
            let (rnorm, scale) = sys.residual_gate_into(&ctx.x_new, &ctx.b, &mut ctx.resid);
            let mut accepted = rnorm <= RESID_GATE_TOL * scale;
            if !accepted {
                if let Some(metrics) = hooks.metrics {
                    metrics.refinement_round();
                }
                let b = &ctx.b;
                let out = refine_once(
                    &mut ctx.x_new,
                    &mut ctx.resid,
                    &mut ctx.scratch,
                    &mut ctx.trial,
                    |xv, out| sys.residual_into(xv, b, out),
                    |r, out| factor.solve_into(r, out),
                );
                accepted = out.residual_after <= RESID_GATE_TOL * scale;
            }
            if accepted {
                if let Some(metrics) = hooks.metrics {
                    metrics.factor_reuse_hit();
                }
                x.clear();
                x.extend_from_slice(&ctx.x_new);
                return Ok(());
            }
            // The cached factors failed their gate even after
            // refinement: retire them so this iteration refactorises.
            note_demotion(hooks, DemotionTier::Refactor);
            note_hazard(
                hooks,
                NumericalHazard::RefinementStall,
                demote_action(DemotionTier::Refactor),
                params.time,
            );
            cached = false;
        }
        if cached && ctx.stale_iters < STALE_ITER_CAP && (iter > 0 || ctx.distrust == 0) {
            // Tier 2: trial modified-Newton step in residual form
            // against the stale factors: x_new = x − M⁻¹(A(x)·x − b(x)).
            // The step is only *accepted* if it keeps contracting the
            // update; otherwise this iteration refactorises below, so a
            // stale Jacobian can never push the iterate off course.
            // Inside a distrust window the first iteration skips the
            // trial outright — after a recent rejection the odds of the
            // cached Jacobian carrying a brand-new solve are poor, and a
            // doomed trial costs an assembly and two back-substitutions.
            let (_, factor) = ctx.factor.as_ref().expect("cached factor present");
            let (_, sys) = ctx.sys.as_ref().expect("system prepared");
            sys.residual_into(x, &ctx.b, &mut ctx.resid);
            factor.solve_into(&ctx.resid, &mut ctx.scratch);
            for (slot, (xk, step)) in ctx.x_new.iter_mut().zip(x.iter().zip(&ctx.scratch)) {
                *slot = xk - step;
            }
            if let Some(l) = lap.as_deref_mut() {
                l.lap(Phase::BackSubstitute);
            }
            let mut candidate_worst: f64 = 0.0;
            for (xn, xk) in ctx.x_new.iter().zip(x.iter()) {
                let d = (xn - xk).abs();
                if !d.is_finite() {
                    candidate_worst = f64::INFINITY;
                    break;
                }
                if d > candidate_worst {
                    candidate_worst = d;
                }
            }
            if candidate_worst < stale_contraction * prev_worst {
                if let Some(metrics) = hooks.metrics {
                    metrics.factor_reuse_hit();
                }
                ctx.stale_iters += 1;
                stale_accepted = true;
            } else {
                stale_rejected = true;
            }
        }
        if !stale_accepted {
            // Tier 3: (re)factorise at the current iterate.
            if stale_rejected {
                // The contraction guard just retired these factors: open
                // a distrust window so the next few solves go straight
                // to a fresh Jacobian instead of repeating the trial.
                ctx.distrust = DISTRUST_SOLVES;
            }
            if let Some(metrics) = hooks.metrics {
                metrics.factor_reuse_miss();
            }
            let same_key = matches!(&ctx.factor, Some((k, _)) if *k == key);
            let reuse = ctx.factor.take().map(|(_, f)| f);
            let (_, sys) = ctx.sys.as_ref().expect("system prepared");
            // Numeric-chaos hook: a forced pivot breakdown walks the
            // demotion ladder exactly as a genuinely unfactorable
            // system would, without needing one in the netlist.
            let factored = if hooks.chaos.is_some_and(|c| c.fire(NumericSite::Pivot)) {
                Err(SingularMatrixError { row: 0 })
            } else {
                sys.factor(&mut ctx.ws, reuse)
            };
            let mut factor = match factored {
                Ok(f) => f,
                Err(err) => {
                    ctx.force_refactor = false;
                    ctx.stale_iters = 0;
                    // Demotion ladder for a failed factorisation:
                    // rebuild the symbolic structure (a stale pattern
                    // can starve the numeric phase of the positions it
                    // needs), then abandon the sparse backend for dense
                    // LU (partial pivoting over the full column), then
                    // give up with the typed error. Each rung consumes
                    // one Newton iteration of budget, so a genuinely
                    // singular system still terminates promptly.
                    let tier = match (demoted, ctx.backend) {
                        (0, crate::solver::Backend::Sparse) => Some(DemotionTier::Symbolic),
                        (1, crate::solver::Backend::Sparse) => Some(DemotionTier::Dense),
                        _ => None,
                    };
                    match tier {
                        Some(tier) => {
                            demoted = if tier == DemotionTier::Dense { 2 } else { 1 };
                            if tier == DemotionTier::Dense {
                                ctx.backend = crate::solver::Backend::Dense;
                            }
                            note_demotion(hooks, tier);
                            note_hazard(
                                hooks,
                                NumericalHazard::NearSingularPivot,
                                demote_action(tier),
                                params.time,
                            );
                            ctx.structures = [None, None];
                            ctx.sys = None;
                            ctx.factor = None;
                            ensure_system(ctx, netlist, layout, x, params, lap.as_deref_mut());
                            baseline_ready = false;
                            continue 'newton;
                        }
                        None => {
                            note_hazard(
                                hooks,
                                NumericalHazard::NearSingularPivot,
                                "terminal",
                                params.time,
                            );
                            return Err(err.into());
                        }
                    }
                }
            };
            if let Some(l) = lap.as_deref_mut() {
                l.lap(if same_key {
                    Phase::Refactor
                } else {
                    Phase::Factor
                });
            }
            // Numeric-chaos hook: corrupting a pivot hands the
            // acceptance gate a realistically-wrong factorisation.
            if hooks.chaos.is_some_and(|c| c.fire(NumericSite::Perturb)) {
                factor.chaos_perturb_pivot(1.5);
            }
            // Advisory hazards on fresh factorisations: flagged for
            // diagnosis, never demoted on — the acceptance gates and
            // Newton's own convergence tests decide whether the answer
            // stands; the counters tell the postmortem why it may not.
            if factor.pivot_growth() > GROWTH_LIMIT {
                note_hazard(hooks, NumericalHazard::PivotGrowth, "advisory", params.time);
            }
            if !same_key && factor.condest(sys.norm_one()) > COND_LIMIT {
                note_hazard(
                    hooks,
                    NumericalHazard::IllConditioned,
                    "advisory",
                    params.time,
                );
            }
            factor.solve_into(&ctx.b, &mut ctx.x_new);
            if let Some(l) = lap.as_deref_mut() {
                l.lap(Phase::BackSubstitute);
            }
            // Numeric-chaos hook: a poisoned solution exercises the
            // non-finite scrub downstream of every fresh solve.
            if hooks.chaos.is_some_and(|c| c.fire(NumericSite::Nan)) {
                ctx.x_new[0] = f64::NAN;
            }
            if linear {
                // A linear solve returns this answer directly, so even
                // a fresh factorisation proves it first: the gate is
                // what turns a corrupted factor or a poisoned solution
                // into a typed hazard instead of a silent wrong report.
                let (rnorm, scale) = sys.residual_gate_into(&ctx.x_new, &ctx.b, &mut ctx.resid);
                let mut accepted = rnorm <= RESID_GATE_TOL * scale;
                if !accepted {
                    if let Some(metrics) = hooks.metrics {
                        metrics.refinement_round();
                    }
                    let b = &ctx.b;
                    let out = refine_once(
                        &mut ctx.x_new,
                        &mut ctx.resid,
                        &mut ctx.scratch,
                        &mut ctx.trial,
                        |xv, out| sys.residual_into(xv, b, out),
                        |r, out| factor.solve_into(r, out),
                    );
                    accepted = out.residual_after <= RESID_GATE_TOL * scale;
                }
                if !accepted {
                    let hazard = if rnorm.is_finite() {
                        NumericalHazard::RefinementStall
                    } else {
                        NumericalHazard::NonFinite
                    };
                    ctx.invalidate();
                    if !fresh_retry {
                        // One retry from a full refactorisation: a
                        // transiently corrupted factor or solution is
                        // repaired; a persistent hazard lands on the
                        // typed error below.
                        fresh_retry = true;
                        ctx.force_refactor = true;
                        note_demotion(hooks, DemotionTier::Refactor);
                        note_hazard(
                            hooks,
                            hazard,
                            demote_action(DemotionTier::Refactor),
                            params.time,
                        );
                        baseline_ready = false;
                        continue 'newton;
                    }
                    note_hazard(hooks, hazard, "terminal", params.time);
                    return Err(AnalysisError::Numerical {
                        hazard,
                        time: params.time,
                    });
                }
                if let Some(setup) = rank1 {
                    if matches!(setup.action, Rank1Action::Capture) {
                        setup.cache.insert(key, &factor);
                    }
                }
                ctx.factor = Some((key, factor));
                ctx.force_refactor = false;
                ctx.stale_iters = 0;
                x.clear();
                x.extend_from_slice(&ctx.x_new);
                return Ok(());
            }
            ctx.factor = Some((key, factor));
            ctx.force_refactor = false;
            ctx.stale_iters = 0;
        }

        // Damped update with convergence check.
        worst = 0.0;
        let mut worst_index = 0;
        let mut converged = true;
        for (k, (xk, xn)) in x.iter_mut().zip(ctx.x_new.iter()).enumerate() {
            let mut delta = xn - *xk;
            if !delta.is_finite() {
                if let Some(flight) = hooks.flight {
                    flight.record_iteration(
                        params.time,
                        dt,
                        (iter + 1) as u64,
                        f64::INFINITY,
                        k,
                    );
                }
                ctx.invalidate();
                if !nonfinite_retry {
                    // One demotion retry from a fresh factorisation at
                    // the last finite iterate: a transient overflow (a
                    // bad stale step, a corrupted factor) is repaired;
                    // a genuinely divergent system fails again and
                    // lands on the typed hazard below.
                    nonfinite_retry = true;
                    ctx.force_refactor = true;
                    note_demotion(hooks, DemotionTier::Refactor);
                    note_hazard(
                        hooks,
                        NumericalHazard::NonFinite,
                        demote_action(DemotionTier::Refactor),
                        params.time,
                    );
                    baseline_ready = false;
                    continue 'newton;
                }
                note_hazard(hooks, NumericalHazard::NonFinite, "terminal", params.time);
                return Err(AnalysisError::Numerical {
                    hazard: NumericalHazard::NonFinite,
                    time: params.time,
                });
            }
            let (abstol, limit) = if k < nv {
                (options.vabstol, options.vstep_limit)
            } else {
                (options.iabstol, f64::INFINITY)
            };
            let tol_scale = if stale_accepted { stale_tol_scale } else { 1.0 };
            if delta.abs() > tol_scale * (abstol + options.reltol * xn.abs()) {
                converged = false;
            }
            if delta.abs() > worst {
                worst = delta.abs();
                worst_index = k;
            }
            if delta.abs() > limit {
                delta = limit.copysign(delta);
            }
            *xk += delta;
        }
        if let Some(l) = lap.as_deref_mut() {
            l.lap(Phase::Residual);
        }
        if let Some(flight) = hooks.flight {
            flight.record_iteration(params.time, dt, (iter + 1) as u64, worst, worst_index);
        }
        if converged {
            return Ok(());
        }
        prev_worst = worst;
    }
    ctx.invalidate();
    Err(AnalysisError::NoConvergence {
        time: params.time,
        residual: worst,
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    fn divider() -> (Netlist, NodeId, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(10.0));
        nl.resistor("R1", vin, out, 1e3);
        nl.resistor("R2", out, Netlist::GROUND, 3e3);
        (nl, vin, out)
    }

    fn solve_dc(nl: &Netlist) -> (MnaLayout, Vec<f64>) {
        let layout = MnaLayout::new(nl);
        let mut x = vec![0.0; layout.size()];
        let params = StampParams {
            time: 0.0,
            companion: CompanionMode::Dc,
            gmin: 1e-12,
            source_scale: 1.0,
        };
        newton_solve(nl, &layout, &params, &NewtonOptions::default(), &mut x).unwrap();
        (layout, x)
    }

    #[test]
    fn layout_counts_branches() {
        let (nl, _, _) = divider();
        let layout = MnaLayout::new(&nl);
        // 2 non-ground nodes + 1 vsource branch.
        assert_eq!(layout.size(), 3);
    }

    #[test]
    fn resistive_divider_solution() {
        let (nl, vin, out) = divider();
        let (layout, x) = solve_dc(&nl);
        // gmin (1e-12 S) to ground leaks a little current, so allow 1e-6.
        assert!((layout.voltage(&x, vin) - 10.0).abs() < 1e-6);
        assert!((layout.voltage(&x, out) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn vsource_branch_current() {
        let (nl, _, _) = divider();
        let (layout, x) = solve_dc(&nl);
        let v1 = nl.find_device("V1").unwrap();
        let j = layout.branch_index(v1).unwrap();
        // 10 V across 4 kΩ: branch current convention is current flowing
        // pos -> neg *through the source*, i.e. -2.5 mA here.
        assert!((x[j] + 2.5e-3).abs() < 1e-9);
    }

    #[test]
    fn vccs_injects_proportional_current() {
        let mut nl = Netlist::new();
        let c = nl.node("ctl");
        let o = nl.node("out");
        nl.vsource("V1", c, Netlist::GROUND, SourceWaveform::dc(2.0));
        // i = gm * v(ctl) flows out -> ground through the source; with a
        // load resistor the output voltage is -gm*R*vc.
        nl.vccs("G1", o, Netlist::GROUND, c, Netlist::GROUND, 1e-3);
        nl.resistor("RL", o, Netlist::GROUND, 1e3);
        let (layout, x) = solve_dc(&nl);
        assert!((layout.voltage(&x, o) + 2.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut nl = Netlist::new();
        let c = nl.node("ctl");
        let o = nl.node("out");
        nl.vsource("V1", c, Netlist::GROUND, SourceWaveform::dc(0.5));
        nl.vcvs("E1", o, Netlist::GROUND, c, Netlist::GROUND, 10.0);
        nl.resistor("RL", o, Netlist::GROUND, 1e3);
        let (layout, x) = solve_dc(&nl);
        assert!((layout.voltage(&x, o) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn nmos_diode_connected_bias() {
        // Diode-connected NMOS pulled up through a resistor: solves the
        // classic quadratic bias point.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let d = nl.node("d");
        nl.vsource("V1", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", vdd, d, 100e3);
        nl.mosfet(
            "M1",
            d,
            d,
            Netlist::GROUND,
            MosPolarity::Nmos,
            crate::devices::MosParams {
                vt0: 1.0,
                beta: 100e-6,
                lambda: 0.0,
            },
        );
        let (layout, x) = solve_dc(&nl);
        let vgs = layout.voltage(&x, d);
        // Check KCL: (5 - vgs)/100k = beta/2 (vgs-1)^2
        let i_r = (5.0 - vgs) / 100e3;
        let i_m = 0.5 * 100e-6 * (vgs - 1.0).powi(2);
        assert!(
            (i_r - i_m).abs() < 1e-9,
            "vgs = {vgs}, i_r = {i_r}, i_m = {i_m}"
        );
    }

    #[test]
    fn pmos_source_follower_direction() {
        // PMOS with gate grounded, source pulled to VDD through resistor:
        // conducts, dropping the source node near Vt above gate.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let s = nl.node("s");
        nl.vsource("V1", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", vdd, s, 10e3);
        // PMOS: source at node s, drain at ground, gate at ground.
        nl.mosfet(
            "M1",
            Netlist::GROUND,
            Netlist::GROUND,
            s,
            MosPolarity::Pmos,
            crate::devices::MosParams {
                vt0: 1.0,
                beta: 400e-6,
                lambda: 0.0,
            },
        );
        let (layout, x) = solve_dc(&nl);
        let vs = layout.voltage(&x, s);
        // The device conducts hard, so v(s) sits a little above Vt = 1 V.
        assert!(vs > 1.0 && vs < 2.5, "vs = {vs}");
    }

    #[test]
    fn cmos_inverter_transfers() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.vsource("VIN", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.mosfet(
            "MN",
            out,
            vin,
            Netlist::GROUND,
            MosPolarity::Nmos,
            crate::devices::MosParams::nmos_5um().with_aspect(2.0),
        );
        nl.mosfet(
            "MP",
            out,
            vin,
            vdd,
            MosPolarity::Pmos,
            crate::devices::MosParams::pmos_5um().with_aspect(5.0),
        );
        let (layout, x) = solve_dc(&nl);
        // Input low -> output high.
        assert!(layout.voltage(&x, out) > 4.5);
    }

    #[test]
    fn diode_clamp() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        let k = nl.node("k");
        nl.resistor("R1", a, k, 1e3);
        nl.diode("D1", k, Netlist::GROUND, crate::devices::DiodeParams::default());
        let (layout, x) = solve_dc(&nl);
        let vk = layout.voltage(&x, k);
        assert!(vk > 0.4 && vk < 0.8, "diode drop was {vk}");
    }

    #[test]
    fn floating_node_fails_without_gmin() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b_node = nl.node("b");
        nl.resistor("R1", a, b_node, 1e3);
        // Nothing connects to ground: singular without gmin.
        let layout = MnaLayout::new(&nl);
        let mut x = vec![0.0; layout.size()];
        let params = StampParams {
            time: 0.0,
            companion: CompanionMode::Dc,
            gmin: 0.0,
            source_scale: 1.0,
        };
        assert!(newton_solve(&nl, &layout, &params, &NewtonOptions::default(), &mut x).is_err());
    }
}
