//! Sampled time-domain signals.

/// A sampled signal: strictly increasing time points with one value each.
///
/// Produced by transient analysis; consumed by the measurement and signal
/// processing layers. Linear interpolation is used between samples.
///
/// # Example
///
/// ```
/// use anasim::waveform::Waveform;
///
/// let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]);
/// assert_eq!(w.value_at(0.5), 5.0);
/// assert_eq!(w.max(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        Waveform::default()
    }

    /// Builds a waveform from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or times are not strictly
    /// increasing.
    pub fn from_samples(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "time/value length mismatch");
        assert!(
            t.windows(2).all(|w| w[0] < w[1]),
            "times must be strictly increasing"
        );
        Waveform { t, v }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not after the last sample.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&last) = self.t.last() {
            assert!(time > last, "samples must be strictly increasing in time");
        }
        self.t.push(time);
        self.v.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Time points.
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// First time point, or 0.0 if empty.
    pub fn t_start(&self) -> f64 {
        self.t.first().copied().unwrap_or(0.0)
    }

    /// Last time point, or 0.0 if empty.
    pub fn t_end(&self) -> f64 {
        self.t.last().copied().unwrap_or(0.0)
    }

    /// Linearly interpolated value at `time`, clamped to the ends.
    ///
    /// Returns 0.0 for an empty waveform.
    pub fn value_at(&self, time: f64) -> f64 {
        if self.t.is_empty() {
            return 0.0;
        }
        if time <= self.t[0] {
            return self.v[0];
        }
        let n = self.t.len();
        if time >= self.t[n - 1] {
            return self.v[n - 1];
        }
        let idx = self.t.partition_point(|&t| t <= time);
        let (t0, v0) = (self.t[idx - 1], self.v[idx - 1]);
        let (t1, v1) = (self.t[idx], self.v[idx]);
        v0 + (v1 - v0) * (time - t0) / (t1 - t0)
    }

    /// Minimum sample value (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Resamples onto a uniform grid of `n` points spanning
    /// `[t_start, t_end]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the waveform is empty.
    pub fn resample_uniform(&self, n: usize) -> Waveform {
        assert!(n >= 2, "need at least two resample points");
        assert!(!self.is_empty(), "cannot resample an empty waveform");
        let t0 = self.t_start();
        let t1 = self.t_end();
        let dt = (t1 - t0) / (n - 1) as f64;
        let t: Vec<f64> = (0..n).map(|i| t0 + i as f64 * dt).collect();
        let v: Vec<f64> = t.iter().map(|&ti| self.value_at(ti)).collect();
        Waveform { t, v }
    }

    /// Returns uniformly spaced values sampled every `dt` over
    /// `[t_start, t_end]` (values only; convenient for DSP routines).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or the waveform is empty.
    pub fn sample_every(&self, dt: f64) -> Vec<f64> {
        assert!(dt > 0.0, "dt must be positive");
        assert!(!self.is_empty(), "cannot sample an empty waveform");
        let mut out = Vec::new();
        let mut t = self.t_start();
        let t_end = self.t_end();
        // Tolerate floating point droop at the final sample.
        while t <= t_end + dt * 1e-9 {
            out.push(self.value_at(t));
            t += dt;
        }
        out
    }

    /// Pointwise difference `self − other`, sampled on `self`'s time grid.
    pub fn subtract(&self, other: &Waveform) -> Waveform {
        let v = self
            .t
            .iter()
            .zip(&self.v)
            .map(|(&t, &v)| v - other.value_at(t))
            .collect();
        Waveform {
            t: self.t.clone(),
            v,
        }
    }

    /// Root-mean-square of the sample values.
    pub fn rms(&self) -> f64 {
        if self.v.is_empty() {
            return 0.0;
        }
        (self.v.iter().map(|v| v * v).sum::<f64>() / self.v.len() as f64).sqrt()
    }
}

impl FromIterator<(f64, f64)> for Waveform {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut w = Waveform::new();
        for (t, v) in iter {
            w.push(t, v);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_midpoint() {
        let w = Waveform::from_samples(vec![0.0, 2.0], vec![0.0, 4.0]);
        assert_eq!(w.value_at(1.0), 2.0);
    }

    #[test]
    fn clamps_outside_range() {
        let w = Waveform::from_samples(vec![1.0, 2.0], vec![5.0, 6.0]);
        assert_eq!(w.value_at(0.0), 5.0);
        assert_eq!(w.value_at(3.0), 6.0);
    }

    #[test]
    fn empty_waveform_reads_zero() {
        let w = Waveform::new();
        assert_eq!(w.value_at(1.0), 0.0);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotonic_time() {
        let _ = Waveform::from_samples(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn push_accumulates() {
        let mut w = Waveform::new();
        w.push(0.0, 1.0);
        w.push(1.0, 2.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.t_end(), 1.0);
    }

    #[test]
    fn resample_hits_endpoints() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 10.0]);
        let r = w.resample_uniform(11);
        assert_eq!(r.len(), 11);
        assert_eq!(r.values()[0], 0.0);
        assert!((r.values()[10] - 10.0).abs() < 1e-12);
        assert!((r.values()[5] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sample_every_covers_range() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0]);
        let s = w.sample_every(0.25);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn subtract_aligns_time_grids() {
        let a = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![1.0, 2.0, 3.0]);
        let b = Waveform::from_samples(vec![0.0, 2.0], vec![1.0, 3.0]);
        let d = a.subtract(&b);
        assert!(d.values().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn rms_of_constant() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![3.0, 3.0, 3.0]);
        assert!((w.rms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collects_from_iterator() {
        let w: Waveform = (0..5).map(|i| (i as f64, i as f64 * 2.0)).collect();
        assert_eq!(w.len(), 5);
        assert_eq!(w.value_at(2.0), 4.0);
    }
}
