//! AC (small-signal frequency-domain) analysis.
//!
//! Linearises the circuit around its DC operating point, then solves the
//! complex MNA system `(G + jωC)·x = b` at each requested frequency with
//! a unit AC excitation on one designated source — the HSPICE `.AC`
//! analysis the paper used to obtain poles/zeros of its example
//! circuits.

use linsys::cmatrix::{solve as csolve, CMatrix};
use linsys::complex::Complex;

use crate::dc::{dc_operating_point_metered, DcOptions};
use crate::dense::Matrix;
use crate::devices::Device;
use crate::metrics::SolverMetrics;
use crate::mna::{stamp_system, CompanionMode, MnaLayout, StampParams};
use crate::netlist::{DeviceId, Netlist, NodeId};
use crate::AnalysisError;

use std::time::Instant;

/// Result of an AC sweep: node phasors per frequency for a unit-input
/// excitation.
#[derive(Debug, Clone)]
pub struct AcResult {
    layout: MnaLayout,
    freqs: Vec<f64>,
    /// One solution vector per frequency.
    solutions: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The swept frequencies in hertz.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// The complex transfer `V(node)/V(input)` at every frequency.
    pub fn transfer(&self, node: NodeId) -> Vec<Complex> {
        self.solutions
            .iter()
            .map(|x| match self.layout.node_index(node) {
                Some(i) => x[i],
                None => Complex::ZERO,
            })
            .collect()
    }

    /// Magnitude response in decibels at every frequency.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.transfer(node)
            .iter()
            .map(|z| 20.0 * z.abs().max(1e-300).log10())
            .collect()
    }

    /// Phase response in degrees at every frequency.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        self.transfer(node)
            .iter()
            .map(|z| z.arg().to_degrees())
            .collect()
    }

    /// The −3 dB frequency relative to the lowest-frequency gain, if the
    /// response crosses it within the sweep.
    pub fn corner_frequency(&self, node: NodeId) -> Option<f64> {
        let mags = self.magnitude_db(node);
        let reference = *mags.first()?;
        let target = reference - 3.0;
        for k in 1..mags.len() {
            if mags[k - 1] > target && mags[k] <= target {
                // Log-linear interpolation between the bracketing points.
                let frac = (mags[k - 1] - target) / (mags[k - 1] - mags[k]);
                let lf = self.freqs[k - 1].ln() + frac * (self.freqs[k].ln() - self.freqs[k - 1].ln());
                return Some(lf.exp());
            }
        }
        None
    }

    /// The unity-gain (0 dB) crossover frequency, if crossed.
    pub fn unity_gain_frequency(&self, node: NodeId) -> Option<f64> {
        let mags = self.magnitude_db(node);
        for k in 1..mags.len() {
            if mags[k - 1] > 0.0 && mags[k] <= 0.0 {
                let frac = mags[k - 1] / (mags[k - 1] - mags[k]);
                let lf = self.freqs[k - 1].ln() + frac * (self.freqs[k].ln() - self.freqs[k - 1].ln());
                return Some(lf.exp());
            }
        }
        None
    }
}

/// Generates a logarithmic frequency sweep with `points_per_decade`
/// points from `f_start` to `f_stop` (inclusive ends).
///
/// # Panics
///
/// Panics unless `0 < f_start < f_stop` and `points_per_decade >= 1`.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start, "need 0 < f_start < f_stop");
    assert!(points_per_decade >= 1, "need at least one point per decade");
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|k| {
            let frac = k as f64 / (n - 1) as f64;
            f_start * 10f64.powf(frac * decades)
        })
        .collect()
}

/// Runs an AC sweep.
///
/// `input` must be a voltage source of the netlist; it receives a unit
/// (1 V ∠ 0°) excitation while every other independent source is AC
/// grounded. Nonlinear devices are linearised at the DC operating
/// point.
///
/// # Errors
///
/// Propagates DC non-convergence or a singular complex system.
///
/// # Example
///
/// An RC low-pass rolls off −3 dB at `1/(2πRC)`:
///
/// ```
/// use anasim::netlist::Netlist;
/// use anasim::source::SourceWaveform;
/// use anasim::ac::{ac_analysis, log_sweep};
///
/// # fn main() -> Result<(), anasim::AnalysisError> {
/// let mut nl = Netlist::new();
/// let vin = nl.node("in");
/// let out = nl.node("out");
/// let src = nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
/// nl.resistor("R1", vin, out, 1e3);
/// nl.capacitor("C1", out, Netlist::GROUND, 1e-6); // fc = 159 Hz
/// let res = ac_analysis(&nl, src, &log_sweep(1.0, 100e3, 20))?;
/// let fc = res.corner_frequency(out).expect("rolls off");
/// assert!((fc - 159.2).abs() / 159.2 < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn ac_analysis(
    netlist: &Netlist,
    input: DeviceId,
    frequencies: &[f64],
) -> Result<AcResult, AnalysisError> {
    ac_analysis_metered(netlist, input, frequencies, None)
}

/// [`ac_analysis`] with an optional [`SolverMetrics`] handle: the
/// linearisation's DC Newton iterations are counted on it and an
/// `anasim.ac` span covering the whole sweep is reported to its
/// recorder.
///
/// # Errors
///
/// See [`ac_analysis`].
pub fn ac_analysis_metered(
    netlist: &Netlist,
    input: DeviceId,
    frequencies: &[f64],
    metrics: Option<&SolverMetrics>,
) -> Result<AcResult, AnalysisError> {
    let started = Instant::now();
    let result = ac_sweep(netlist, input, frequencies, metrics);
    if let Some(metrics) = metrics {
        metrics.record_span("anasim.ac", started.elapsed());
    }
    result
}

fn ac_sweep(
    netlist: &Netlist,
    input: DeviceId,
    frequencies: &[f64],
    metrics: Option<&SolverMetrics>,
) -> Result<AcResult, AnalysisError> {
    if !matches!(netlist.device(input), Device::Vsource { .. }) {
        return Err(AnalysisError::InvalidParameter(
            "ac input must be a voltage source".into(),
        ));
    }

    // 1. DC operating point for the linearisation.
    let op = dc_operating_point_metered(netlist, &DcOptions::default(), metrics)?;
    let layout = MnaLayout::new(netlist);
    let n = layout.size();

    // 2. Small-signal conductance matrix G: the MNA Jacobian at the OP
    //    with capacitors open and inductors shorted.
    let mut g = Matrix::zeros(n, n);
    let mut scratch_b = vec![0.0; n];
    let params = StampParams {
        time: 0.0,
        companion: CompanionMode::Dc,
        gmin: 1e-12,
        source_scale: 1.0,
    };
    stamp_system(netlist, &layout, op.solution(), &params, &mut g, &mut scratch_b);

    // 3. AC excitation vector: 1 V on the input source's branch row.
    let input_row = layout
        .branch_index(input)
        .expect("voltage sources have branch rows");
    let mut b = vec![Complex::ZERO; n];
    b[input_row] = Complex::ONE;

    // 4. Sweep: A(ω) = G + jωC, with the reactive parts re-stamped per
    //    frequency.
    let mut a = CMatrix::zeros(n, n);
    let mut solutions = Vec::with_capacity(frequencies.len());
    for &f in frequencies {
        let w = 2.0 * std::f64::consts::PI * f;
        a.clear();
        for r in 0..n {
            for c in 0..n {
                let v = g[(r, c)];
                if v != 0.0 {
                    a.add(r, c, Complex::real(v));
                }
            }
        }
        for (id, _, dev) in netlist.devices() {
            match dev {
                Device::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                    ..
                } => {
                    let jwc = Complex::new(0.0, w * farads);
                    if let Some(i) = layout.node_index(*na) {
                        a.add(i, i, jwc);
                        if let Some(j) = layout.node_index(*nb) {
                            a.add(i, j, -jwc);
                        }
                    }
                    if let Some(j) = layout.node_index(*nb) {
                        a.add(j, j, jwc);
                        if let Some(i) = layout.node_index(*na) {
                            a.add(j, i, -jwc);
                        }
                    }
                }
                Device::Inductor { henries, .. } => {
                    let j = layout
                        .branch_index(id)
                        .expect("inductors have branch rows");
                    a.add(j, j, Complex::new(0.0, -w * henries));
                }
                _ => {}
            }
        }
        let x = csolve(&a, &b).map_err(AnalysisError::from)?;
        solutions.push(x);
    }

    Ok(AcResult {
        layout,
        freqs: frequencies.to_vec(),
        solutions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    #[test]
    fn log_sweep_covers_range() {
        let f = log_sweep(1.0, 1000.0, 10);
        assert_eq!(f.len(), 31);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f.last().unwrap() - 1000.0).abs() < 1e-9);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn rc_phase_is_minus_45_at_corner() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        let src = nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.resistor("R1", vin, out, 10e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-9);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 10e3 * 1e-9);
        let res = ac_analysis(&nl, src, &[fc]).unwrap();
        let ph = res.phase_deg(out)[0];
        assert!((ph + 45.0).abs() < 0.5, "phase {ph}");
        let mag = res.magnitude_db(out)[0];
        assert!((mag + 3.0103).abs() < 0.05, "mag {mag}");
    }

    #[test]
    fn rlc_peak_at_resonance() {
        // Series RLC, output across C: peaks near 1/(2*pi*sqrt(LC)) with
        // Q = (1/R)*sqrt(L/C).
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let mid = nl.node("mid");
        let out = nl.node("out");
        let src = nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.resistor("R1", vin, mid, 50.0);
        nl.inductor("L1", mid, out, 1e-3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-9);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3_f64 * 1e-9).sqrt());
        let freqs = log_sweep(f0 / 10.0, f0 * 10.0, 60);
        let res = ac_analysis(&nl, src, &freqs).unwrap();
        let mags = res.magnitude_db(out);
        let peak_idx = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let f_peak = freqs[peak_idx];
        assert!(
            (f_peak - f0).abs() / f0 < 0.1,
            "peak at {f_peak}, expected {f0}"
        );
        // Q = sqrt(L/C)/R = 20: peak ~ 26 dB.
        assert!(mags[peak_idx] > 20.0, "peak {mags:?}");
    }

    #[test]
    fn vcvs_gain_is_flat() {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        let src = nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.vcvs("E1", out, Netlist::GROUND, vin, Netlist::GROUND, 40.0);
        nl.resistor("RL", out, Netlist::GROUND, 1e3);
        let res = ac_analysis(&nl, src, &log_sweep(1.0, 1e6, 5)).unwrap();
        for m in res.magnitude_db(out) {
            assert!((m - 32.04).abs() < 0.01, "gain {m}");
        }
    }

    #[test]
    fn mosfet_amplifier_has_small_signal_gain() {
        // Common-source NMOS with resistive load, biased in saturation:
        // |A| = gm * RD at low frequency.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        let src = nl.vsource("VIN", vin, Netlist::GROUND, SourceWaveform::dc(1.5));
        nl.mosfet(
            "M1",
            out,
            vin,
            Netlist::GROUND,
            crate::devices::MosPolarity::Nmos,
            crate::devices::MosParams {
                vt0: 1.0,
                beta: 400e-6,
                lambda: 0.0,
            },
        );
        nl.resistor("RD", vdd, out, 10e3);
        let res = ac_analysis(&nl, src, &[100.0]).unwrap();
        let gain = res.transfer(out)[0];
        // gm = beta*vov = 400u*0.5 = 200 uS; A = -gm*RD = -2.
        assert!((gain.re + 2.0).abs() < 0.05, "gain {gain}");
        assert!(gain.im.abs() < 0.01);
    }

    #[test]
    fn non_source_input_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor("R1", a, Netlist::GROUND, 1e3);
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(1.0));
        assert!(matches!(
            ac_analysis(&nl, r, &[1.0]),
            Err(AnalysisError::InvalidParameter(_))
        ));
    }
}
