//! Time-domain waveform descriptions for independent sources.

/// The time-domain shape of an independent voltage or current source.
///
/// All variants evaluate to a value at an absolute simulation time via
/// [`SourceWaveform::value_at`].
///
/// # Example
///
/// ```
/// use anasim::source::SourceWaveform;
///
/// let ramp = SourceWaveform::ramp(0.0, 2.5, 1.0);
/// assert_eq!(ramp.value_at(0.5), 1.25);
/// assert_eq!(ramp.value_at(2.0), 2.5); // holds the final value
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value for all time.
    Dc(f64),
    /// Single step from `initial` to `level` at `delay` seconds.
    Step {
        /// Value before the step.
        initial: f64,
        /// Value after the step.
        level: f64,
        /// Time of the step in seconds.
        delay: f64,
    },
    /// Linear ramp from `start` to `end` over `duration`, then held.
    Ramp {
        /// Value at t = 0.
        start: f64,
        /// Value at t = duration (held afterwards).
        end: f64,
        /// Ramp duration in seconds.
        duration: f64,
    },
    /// SPICE-style periodic pulse.
    Pulse {
        /// Initial (low) value.
        low: f64,
        /// Pulsed (high) value.
        high: f64,
        /// Delay before the first rising edge.
        delay: f64,
        /// Rise time (seconds).
        rise: f64,
        /// Fall time (seconds).
        fall: f64,
        /// Width of the high level (seconds).
        width: f64,
        /// Period of repetition (seconds).
        period: f64,
    },
    /// Sinusoid `offset + amplitude * sin(2π·freq·(t − delay))` for
    /// `t >= delay`, `offset` before.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
    },
    /// Piecewise-linear waveform through `(time, value)` points.
    ///
    /// Before the first point the first value is held; after the last point
    /// the last value is held. Points must be sorted by time.
    Pwl(Vec<(f64, f64)>),
    /// A binary sequence played as a staircase: bit `i` holds between
    /// `i*bit_period` and `(i+1)*bit_period`, mapping `false -> low`,
    /// `true -> high`. After the last bit the sequence repeats.
    BitStream {
        /// The bit pattern.
        bits: Vec<bool>,
        /// Duration of one bit in seconds.
        bit_period: f64,
        /// Output value for a 0 bit.
        low: f64,
        /// Output value for a 1 bit.
        high: f64,
    },
}

impl SourceWaveform {
    /// Constant-value source (shorthand for [`SourceWaveform::Dc`]).
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// Step from 0 to `level` at time `delay`.
    pub fn step(level: f64, delay: f64) -> Self {
        SourceWaveform::Step {
            initial: 0.0,
            level,
            delay,
        }
    }

    /// Linear ramp from `start` to `end` over `duration` seconds.
    pub fn ramp(start: f64, end: f64, duration: f64) -> Self {
        SourceWaveform::Ramp {
            start,
            end,
            duration,
        }
    }

    /// Ideal two-phase clock helper: a pulse train that is high for
    /// `width` out of every `period` seconds, starting at `delay`, with
    /// edge times `edge`.
    pub fn clock(low: f64, high: f64, delay: f64, width: f64, period: f64, edge: f64) -> Self {
        SourceWaveform::Pulse {
            low,
            high,
            delay,
            rise: edge,
            fall: edge,
            width,
            period,
        }
    }

    /// Evaluates the waveform at absolute time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Step {
                initial,
                level,
                delay,
            } => {
                if t < *delay {
                    *initial
                } else {
                    *level
                }
            }
            SourceWaveform::Ramp {
                start,
                end,
                duration,
            } => {
                if t <= 0.0 {
                    *start
                } else if t >= *duration {
                    *end
                } else {
                    start + (end - start) * t / duration
                }
            }
            SourceWaveform::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *low;
                }
                let tp = (t - delay) % period;
                if tp < *rise {
                    low + (high - low) * tp / rise.max(1e-15)
                } else if tp < rise + width {
                    *high
                } else if tp < rise + width + fall {
                    high - (high - low) * (tp - rise - width) / fall.max(1e-15)
                } else {
                    *low
                }
            }
            SourceWaveform::Sine {
                offset,
                amplitude,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            SourceWaveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                // Find the segment containing t.
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            SourceWaveform::BitStream {
                bits,
                bit_period,
                low,
                high,
            } => {
                if bits.is_empty() {
                    return *low;
                }
                let idx = ((t / bit_period).floor().max(0.0) as usize) % bits.len();
                if bits[idx] {
                    *high
                } else {
                    *low
                }
            }
        }
    }

    /// Returns times at which the waveform has a discontinuity or corner in
    /// `[t0, t1)` — used by the transient engine to align timesteps with
    /// sharp edges (breakpoints).
    pub fn breakpoints(&self, t0: f64, t1: f64) -> Vec<f64> {
        let mut pts = Vec::new();
        match self {
            SourceWaveform::Dc(_) => {}
            SourceWaveform::Step { delay, .. } => {
                if *delay >= t0 && *delay < t1 {
                    pts.push(*delay);
                }
            }
            SourceWaveform::Ramp { duration, .. } => {
                if *duration >= t0 && *duration < t1 {
                    pts.push(*duration);
                }
            }
            SourceWaveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let mut cycle_start = *delay;
                // Walk periods that intersect [t0, t1).
                if period > &0.0 && cycle_start < t1 {
                    let skip = ((t0 - cycle_start) / period).floor().max(0.0);
                    cycle_start += skip * period;
                    while cycle_start < t1 {
                        for offset in [0.0, *rise, rise + width, rise + width + fall] {
                            let bp = cycle_start + offset;
                            if bp >= t0 && bp < t1 {
                                pts.push(bp);
                            }
                        }
                        cycle_start += period;
                    }
                }
            }
            SourceWaveform::Sine { delay, .. } => {
                if *delay >= t0 && *delay < t1 {
                    pts.push(*delay);
                }
            }
            SourceWaveform::Pwl(points) => {
                pts.extend(points.iter().map(|&(t, _)| t).filter(|&t| t >= t0 && t < t1));
            }
            SourceWaveform::BitStream {
                bits, bit_period, ..
            } => {
                if !bits.is_empty() {
                    let mut k = (t0 / bit_period).floor().max(0.0) as u64;
                    loop {
                        let bp = k as f64 * bit_period;
                        if bp >= t1 {
                            break;
                        }
                        if bp >= t0 {
                            pts.push(bp);
                        }
                        k += 1;
                    }
                }
            }
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = SourceWaveform::dc(3.3);
        assert_eq!(w.value_at(0.0), 3.3);
        assert_eq!(w.value_at(1e9), 3.3);
    }

    #[test]
    fn step_switches_at_delay() {
        let w = SourceWaveform::step(5.0, 1e-3);
        assert_eq!(w.value_at(0.5e-3), 0.0);
        assert_eq!(w.value_at(1.5e-3), 5.0);
    }

    #[test]
    fn ramp_is_linear_then_held() {
        let w = SourceWaveform::ramp(0.0, 2.5, 1.0);
        assert!((w.value_at(0.2) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(5.0), 2.5);
        assert_eq!(w.value_at(-1.0), 0.0);
    }

    #[test]
    fn pulse_cycles() {
        let w = SourceWaveform::Pulse {
            low: 0.0,
            high: 5.0,
            delay: 0.0,
            rise: 1e-9,
            fall: 1e-9,
            width: 5e-6,
            period: 10e-6,
        };
        assert_eq!(w.value_at(2e-6), 5.0);
        assert_eq!(w.value_at(7e-6), 0.0);
        assert_eq!(w.value_at(12e-6), 5.0); // second period
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWaveform::Pwl(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 0.0)]);
        assert!((w.value_at(0.5) - 5.0).abs() < 1e-12);
        assert!((w.value_at(1.5) - 5.0).abs() < 1e-12);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(3.0), 0.0);
    }

    #[test]
    fn bitstream_plays_and_repeats() {
        let w = SourceWaveform::BitStream {
            bits: vec![true, false, true],
            bit_period: 1e-6,
            low: 0.0,
            high: 5.0,
        };
        assert_eq!(w.value_at(0.5e-6), 5.0);
        assert_eq!(w.value_at(1.5e-6), 0.0);
        assert_eq!(w.value_at(2.5e-6), 5.0);
        assert_eq!(w.value_at(3.5e-6), 5.0); // wraps to bit 0
    }

    #[test]
    fn sine_starts_after_delay() {
        let w = SourceWaveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            freq: 1.0,
            delay: 1.0,
        };
        assert_eq!(w.value_at(0.5), 1.0);
        assert!((w.value_at(1.25) - 3.0).abs() < 1e-9); // peak at quarter period
    }

    #[test]
    fn pulse_breakpoints_cover_edges() {
        let w = SourceWaveform::Pulse {
            low: 0.0,
            high: 5.0,
            delay: 0.0,
            rise: 1e-7,
            fall: 1e-7,
            width: 4e-6,
            period: 10e-6,
        };
        let bps = w.breakpoints(0.0, 20e-6);
        // 4 breakpoints per cycle, two cycles.
        assert_eq!(bps.len(), 8);
        assert!(bps.contains(&0.0));
    }

    #[test]
    fn bitstream_breakpoints_are_bit_boundaries() {
        let w = SourceWaveform::BitStream {
            bits: vec![true, false],
            bit_period: 1e-6,
            low: 0.0,
            high: 5.0,
        };
        let bps = w.breakpoints(0.0, 3e-6);
        assert_eq!(bps, vec![0.0, 1e-6, 2e-6]);
    }
}
