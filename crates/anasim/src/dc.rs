//! DC operating-point analysis.
//!
//! Runs Newton–Raphson on the MNA system with capacitors open and
//! inductors shorted. If plain Newton fails, two classic homotopies are
//! tried in order: `gmin` stepping (progressively removing an artificial
//! conductance to ground) and source stepping (ramping all independent
//! sources from zero).

use crate::flight::{SolveHooks, SolvePhase};
use crate::metrics::SolverMetrics;
use crate::mna::{newton_solve_with_context, CompanionMode, MnaLayout, NewtonOptions, StampParams};
use crate::netlist::{DeviceId, Netlist, NodeId};
use crate::solver::{Rank1Setup, SolverContext, WarmStart};
use crate::AnalysisError;

use std::time::Instant;

/// A solved operating point.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    layout: MnaLayout,
    x: Vec<f64>,
}

impl OperatingPoint {
    pub(crate) fn new(layout: MnaLayout, x: Vec<f64>) -> Self {
        OperatingPoint { layout, x }
    }

    /// Voltage at a node (0.0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.layout.voltage(&self.x, node)
    }

    /// Branch current of a voltage-defined device (vsource, VCVS,
    /// inductor), if it has one. Positive current flows from the positive
    /// terminal through the device to the negative terminal.
    pub fn branch_current(&self, device: DeviceId) -> Option<f64> {
        self.layout.branch_index(device).map(|j| self.x[j])
    }

    /// The raw solution vector (node voltages then branch currents).
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Consumes self, returning the raw solution vector.
    pub fn into_solution(self) -> Vec<f64> {
        self.x
    }
}

/// Options controlling the DC solve.
#[derive(Debug, Clone, Copy)]
pub struct DcOptions {
    /// Newton iteration options.
    pub newton: NewtonOptions,
    /// Final gmin left in place for robustness (siemens).
    pub gmin: f64,
    /// Evaluate sources at this time (normally 0.0).
    pub time: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            time: 0.0,
        }
    }
}

/// Computes the DC operating point with default options.
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] if Newton and both homotopy
/// fallbacks fail, or [`AnalysisError::SingularMatrix`] for structurally
/// singular circuits.
///
/// # Example
///
/// ```
/// use anasim::netlist::Netlist;
/// use anasim::source::SourceWaveform;
///
/// # fn main() -> Result<(), anasim::AnalysisError> {
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(3.0));
/// nl.resistor("R1", a, Netlist::GROUND, 1e3);
/// let op = anasim::dc::dc_operating_point(&nl)?;
/// assert!((op.voltage(a) - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn dc_operating_point(netlist: &Netlist) -> Result<OperatingPoint, AnalysisError> {
    dc_operating_point_with(netlist, &DcOptions::default())
}

/// Computes the DC operating point with explicit options.
///
/// # Errors
///
/// See [`dc_operating_point`].
pub fn dc_operating_point_with(
    netlist: &Netlist,
    options: &DcOptions,
) -> Result<OperatingPoint, AnalysisError> {
    dc_operating_point_metered(netlist, options, None)
}

/// [`dc_operating_point_with`] with an optional [`SolverMetrics`]
/// handle: Newton iterations and homotopy stages (`dc_gmin_steps`,
/// `dc_source_steps`) are counted on it, and an `anasim.dc` span is
/// reported to its recorder on every exit path, success or failure.
///
/// # Errors
///
/// See [`dc_operating_point`].
pub fn dc_operating_point_metered(
    netlist: &Netlist,
    options: &DcOptions,
    metrics: Option<&SolverMetrics>,
) -> Result<OperatingPoint, AnalysisError> {
    dc_operating_point_hooked(netlist, options, SolveHooks::metrics(metrics))
}

/// [`dc_operating_point_metered`] generalised to the full
/// [`SolveHooks`] bundle: an armed
/// [`crate::flight::FlightRecorder`] sees every Newton iteration of the
/// direct solve and both homotopies, each tagged with its
/// [`SolvePhase`], with worst-unknown indices resolvable to node names.
///
/// # Errors
///
/// See [`dc_operating_point`].
pub fn dc_operating_point_hooked(
    netlist: &Netlist,
    options: &DcOptions,
    hooks: SolveHooks<'_>,
) -> Result<OperatingPoint, AnalysisError> {
    let mut ctx = SolverContext::default();
    dc_operating_point_solver(netlist, options, hooks, None, None, &mut ctx)
}

/// [`dc_operating_point_hooked`] against a caller-owned
/// [`SolverContext`], optionally warm-started from a golden operating
/// point and routed through a rank-1 golden-factorisation cache.
///
/// The context's cached symbolic structure and factorisation carry
/// across the homotopy stages (and, when the caller is a transient
/// analysis, into the timestep march). A `warm` seed is tried with
/// plain Newton before the usual cold-start chain; on failure the
/// solve falls back to exactly the cold behaviour, so warm-starting
/// can only add one cheap attempt, never change the answer's
/// robustness.
///
/// # Errors
///
/// See [`dc_operating_point`].
pub fn dc_operating_point_solver(
    netlist: &Netlist,
    options: &DcOptions,
    hooks: SolveHooks<'_>,
    warm: Option<&WarmStart>,
    rank1: Option<&Rank1Setup>,
    ctx: &mut SolverContext,
) -> Result<OperatingPoint, AnalysisError> {
    let started = Instant::now();
    let result = dc_solve(netlist, options, hooks, warm, rank1, ctx);
    if let Some(metrics) = hooks.metrics {
        metrics.record_span("anasim.dc", started.elapsed());
    }
    result
}

fn dc_solve(
    netlist: &Netlist,
    options: &DcOptions,
    hooks: SolveHooks<'_>,
    warm: Option<&WarmStart>,
    rank1: Option<&Rank1Setup>,
    ctx: &mut SolverContext,
) -> Result<OperatingPoint, AnalysisError> {
    // Homotopy scheduling is DC self-time; the Newton solves underneath
    // attribute their own stamp/factor/solve/residual phases.
    let _dc = hooks
        .profile
        .map(|p| p.enter(obs::profile::Phase::DcSolve));
    let layout = MnaLayout::new(netlist);
    let mut x = vec![0.0; layout.size()];
    let set_phase = |phase: SolvePhase| {
        if let Some(flight) = hooks.flight {
            flight.set_phase(phase);
        }
    };
    if let Some(flight) = hooks.flight {
        flight.install_names(netlist, &layout);
    }

    // 0. Golden warm start: seed the guess from a golden operating
    // point and try plain Newton. Faulty variants of a circuit usually
    // sit near the golden bias, so this converges in a handful of
    // iterations and skips the homotopy chain entirely. Any failure
    // falls through to the untouched cold-start ladder.
    if let Some(warm) = warm {
        set_phase(SolvePhase::DcDirect);
        warm.seed(&layout, &mut x);
        if try_newton(
            netlist, &layout, options, options.gmin, 1.0, hooks, ctx, rank1, &mut x,
        )
        .is_ok()
        {
            return Ok(OperatingPoint::new(layout, x));
        }
        x.iter_mut().for_each(|v| *v = 0.0);
    }

    // 1. Plain Newton.
    set_phase(SolvePhase::DcDirect);
    let direct = try_newton(
        netlist, &layout, options, options.gmin, 1.0, hooks, ctx, rank1, &mut x,
    );
    if direct.is_ok() {
        return Ok(OperatingPoint::new(layout, x));
    }

    // 2. gmin stepping: start heavily damped, relax by decades.
    let mut last_err = direct.unwrap_err();
    if matches!(
        last_err,
        AnalysisError::NoConvergence { .. } | AnalysisError::Numerical { .. }
    ) {
        set_phase(SolvePhase::DcGmin);
        x.iter_mut().for_each(|v| *v = 0.0);
        let mut ok = true;
        let mut gmin = 1e-2;
        while gmin >= options.gmin {
            if let Some(metrics) = hooks.metrics {
                metrics.dc_gmin_step();
            }
            if let Err(e) = try_newton(
                netlist, &layout, options, gmin, 1.0, hooks, ctx, rank1, &mut x,
            ) {
                last_err = e;
                ok = false;
                break;
            }
            gmin /= 10.0;
        }
        if ok {
            // Final solve at the target gmin.
            if try_newton(
                netlist, &layout, options, options.gmin, 1.0, hooks, ctx, rank1, &mut x,
            )
            .is_ok()
            {
                return Ok(OperatingPoint::new(layout, x));
            }
        }
    }

    // 3. Source stepping: ramp independent sources 0 -> 100 %.
    set_phase(SolvePhase::DcSource);
    x.iter_mut().for_each(|v| *v = 0.0);
    let mut ok = true;
    for step in 1..=20 {
        let scale = step as f64 / 20.0;
        if let Some(metrics) = hooks.metrics {
            metrics.dc_source_step();
        }
        if let Err(e) = try_newton(
            netlist, &layout, options, options.gmin, scale, hooks, ctx, rank1, &mut x,
        ) {
            last_err = e;
            ok = false;
            break;
        }
    }
    if ok {
        return Ok(OperatingPoint::new(layout, x));
    }
    Err(last_err)
}

#[allow(clippy::too_many_arguments)]
fn try_newton(
    netlist: &Netlist,
    layout: &MnaLayout,
    options: &DcOptions,
    gmin: f64,
    source_scale: f64,
    hooks: SolveHooks<'_>,
    ctx: &mut SolverContext,
    rank1: Option<&Rank1Setup>,
    x: &mut Vec<f64>,
) -> Result<(), AnalysisError> {
    let params = StampParams {
        time: options.time,
        companion: CompanionMode::Dc,
        gmin,
        source_scale,
    };
    newton_solve_with_context(
        netlist,
        layout,
        &params,
        &options.newton,
        None,
        hooks,
        ctx,
        rank1,
        x,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{MosParams, MosPolarity};
    use crate::source::SourceWaveform;

    #[test]
    fn capacitors_are_open_at_dc() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", a, b, 1e3);
        nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
        // With C open, no current flows: v(b) = 5 V (gmin makes it
        // fractionally lower).
        let op = dc_operating_point(&nl).unwrap();
        assert!((op.voltage(b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn inductors_are_short_at_dc() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.inductor("L1", a, b, 1e-3);
        nl.resistor("R1", b, Netlist::GROUND, 1e3);
        let op = dc_operating_point(&nl).unwrap();
        assert!((op.voltage(b) - 5.0).abs() < 1e-6);
        let l1 = nl.find_device("L1").unwrap();
        assert!((op.branch_current(l1).unwrap() - 5e-3).abs() < 1e-8);
    }

    #[test]
    fn five_stage_inverter_chain_converges() {
        // A chain of CMOS inverters is a classic DC convergence test.
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        let vin = nl.node("in0");
        nl.vsource("VIN", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        let mut prev = vin;
        for i in 0..5 {
            let out = nl.node(&format!("out{i}"));
            nl.mosfet(
                &format!("MN{i}"),
                out,
                prev,
                Netlist::GROUND,
                MosPolarity::Nmos,
                MosParams::nmos_5um().with_aspect(2.0),
            );
            nl.mosfet(
                &format!("MP{i}"),
                out,
                prev,
                vdd,
                MosPolarity::Pmos,
                MosParams::pmos_5um().with_aspect(5.0),
            );
            prev = out;
        }
        let op = dc_operating_point(&nl).unwrap();
        // 5 inversions of a low input -> final output high.
        assert!(op.voltage(prev) > 4.0, "v = {}", op.voltage(prev));
    }

    #[test]
    fn unpowered_circuit_rests_at_zero() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        let op = dc_operating_point(&nl).unwrap();
        assert_eq!(op.voltage(a), 0.0);
        assert_eq!(op.voltage(Netlist::GROUND), 0.0);
    }

    #[test]
    fn solution_vector_is_exposed() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(1.0));
        nl.resistor("R1", a, Netlist::GROUND, 1.0);
        let op = dc_operating_point(&nl).unwrap();
        assert_eq!(op.solution().len(), 2);
        let sol = op.into_solution();
        assert!((sol[0] - 1.0).abs() < 1e-9);
    }
}
