//! DC sweep analysis: transfer curves.
//!
//! Steps one source through a list of values, solving the operating
//! point at each with warm-start continuation (the previous solution
//! seeds the next Newton solve) — SPICE's `.DC` analysis, used for
//! transfer curves like an inverter's VTC or the ADC front-end's
//! input/output characteristic.

use crate::dc::{DcOptions, OperatingPoint};
use crate::devices::Device;
use crate::mna::{newton_solve, CompanionMode, MnaLayout, StampParams};
use crate::netlist::{DeviceId, Netlist, NodeId};
use crate::source::SourceWaveform;
use crate::AnalysisError;

/// Result of a DC sweep.
#[derive(Debug, Clone)]
pub struct DcSweep {
    layout: MnaLayout,
    values: Vec<f64>,
    solutions: Vec<Vec<f64>>,
}

impl DcSweep {
    /// The swept source values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the sweep had no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The voltage at `node` across the sweep.
    pub fn voltage_curve(&self, node: NodeId) -> Vec<f64> {
        self.solutions
            .iter()
            .map(|x| self.layout.voltage(x, node))
            .collect()
    }

    /// The branch current of a voltage-defined device across the sweep.
    pub fn current_curve(&self, device: DeviceId) -> Option<Vec<f64>> {
        let j = self.layout.branch_index(device)?;
        Some(self.solutions.iter().map(|x| x[j]).collect())
    }

    /// The operating point at sweep index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn operating_point(&self, k: usize) -> OperatingPoint {
        OperatingPoint::new(self.layout.clone(), self.solutions[k].clone())
    }

    /// Incremental gain `d v(node) / d v(source)` between consecutive
    /// sweep points (finite differences; length `len() − 1`).
    pub fn incremental_gain(&self, node: NodeId) -> Vec<f64> {
        let v = self.voltage_curve(node);
        v.windows(2)
            .zip(self.values.windows(2))
            .map(|(vw, sw)| (vw[1] - vw[0]) / (sw[1] - sw[0]))
            .collect()
    }
}

/// Sweeps the DC value of `source` through `values`.
///
/// The swept device must be an independent voltage or current source;
/// its waveform is replaced by each DC value in turn. Warm-start
/// continuation makes strongly nonlinear curves (comparators, VTCs)
/// solve reliably point to point.
///
/// # Errors
///
/// Propagates Newton non-convergence (with the failing sweep value in
/// the error's `time` slot for lack of a better channel) and singular
/// systems.
///
/// # Example
///
/// ```
/// use anasim::netlist::Netlist;
/// use anasim::source::SourceWaveform;
/// use anasim::sweep::dc_sweep;
///
/// # fn main() -> Result<(), anasim::AnalysisError> {
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// let b = nl.node("b");
/// let src = nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(0.0));
/// nl.resistor("R1", a, b, 1e3);
/// nl.resistor("R2", b, Netlist::GROUND, 1e3);
/// let sweep = dc_sweep(&nl, src, &[0.0, 1.0, 2.0])?;
/// let curve = sweep.voltage_curve(b);
/// assert!((curve[2] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn dc_sweep(
    netlist: &Netlist,
    source: DeviceId,
    values: &[f64],
) -> Result<DcSweep, AnalysisError> {
    if !matches!(
        netlist.device(source),
        Device::Vsource { .. } | Device::Isource { .. }
    ) {
        return Err(AnalysisError::InvalidParameter(
            "swept device must be an independent source".into(),
        ));
    }
    let mut working = netlist.clone();
    let layout = MnaLayout::new(&working);
    let options = DcOptions::default();
    let mut x = vec![0.0; layout.size()];
    let mut solutions = Vec::with_capacity(values.len());

    for (k, &value) in values.iter().enumerate() {
        match working.device_mut(source) {
            Device::Vsource { wave, .. } | Device::Isource { wave, .. } => {
                *wave = SourceWaveform::dc(value)
            }
            _ => unreachable!("validated above"),
        }
        let params = StampParams {
            time: 0.0,
            companion: CompanionMode::Dc,
            gmin: options.gmin,
            source_scale: 1.0,
        };
        // Warm start from the previous point; on the first point (or a
        // cold failure) fall back to the full homotopy solver.
        let solved = newton_solve(&working, &layout, &params, &options.newton, &mut x);
        if solved.is_err() {
            let op = crate::dc::dc_operating_point_with(&working, &options).map_err(|e| {
                match e {
                    AnalysisError::NoConvergence {
                        residual,
                        iterations,
                        ..
                    } => AnalysisError::NoConvergence {
                        time: value,
                        residual,
                        iterations,
                    },
                    other => other,
                }
            })?;
            x = op.into_solution();
        }
        let _ = k;
        solutions.push(x.clone());
    }

    Ok(DcSweep {
        layout,
        values: values.to_vec(),
        solutions,
    })
}

/// Builds a linear list of sweep values.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn linspace(start: f64, stop: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two points");
    (0..points)
        .map(|k| start + (stop - start) * k as f64 / (points - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{MosParams, MosPolarity};

    #[test]
    fn linspace_endpoints() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn inverter_vtc_is_monotone_falling() {
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
        let src = nl.vsource("VIN", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.mosfet(
            "MN",
            out,
            vin,
            Netlist::GROUND,
            MosPolarity::Nmos,
            MosParams::nmos_5um().with_aspect(2.0),
        );
        nl.mosfet(
            "MP",
            out,
            vin,
            vdd,
            MosPolarity::Pmos,
            MosParams::pmos_5um().with_aspect(5.0),
        );
        let sweep = dc_sweep(&nl, src, &linspace(0.0, 5.0, 51)).unwrap();
        let curve = sweep.voltage_curve(out);
        assert!(curve[0] > 4.9, "low input -> high output");
        assert!(curve[50] < 0.1, "high input -> low output");
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "vtc must fall monotonically");
        }
        // Switching threshold in the middle of the supply.
        let gains = sweep.incremental_gain(out);
        let (steepest, g) = gains
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let v_m = sweep.values()[steepest];
        assert!((1.5..3.5).contains(&v_m), "threshold at {v_m}");
        assert!(*g < -5.0, "inverter gain {g}");
    }

    #[test]
    fn diode_iv_curve_is_exponential() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let src = nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.diode("D1", a, Netlist::GROUND, crate::devices::DiodeParams::default());
        let sweep = dc_sweep(&nl, src, &linspace(0.4, 0.7, 16)).unwrap();
        let i = sweep.current_curve(src).unwrap();
        // Source current is negative (flows out of + terminal through
        // the diode); check ~decade per 60 mV.
        let ratio = i[15] / i[0];
        let decades =
            0.3 / (crate::devices::DiodeParams::VT * std::f64::consts::LN_10);
        let expect = 10f64.powf(decades);
        assert!(
            (ratio / expect).abs() > 0.5 && (ratio / expect).abs() < 2.0,
            "ratio {ratio:.3e} vs {expect:.3e}"
        );
    }

    #[test]
    fn current_source_sweep() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let src = nl.isource("I1", a, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.resistor("R1", a, Netlist::GROUND, 1e3);
        let sweep = dc_sweep(&nl, src, &[0.0, 1e-3, 2e-3]).unwrap();
        let v = sweep.voltage_curve(a);
        assert!((v[1] - 1.0).abs() < 1e-6);
        assert!((v[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn non_source_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let r = nl.resistor("R1", a, Netlist::GROUND, 1e3);
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(1.0));
        assert!(matches!(
            dc_sweep(&nl, r, &[1.0, 2.0]),
            Err(AnalysisError::InvalidParameter(_))
        ));
    }
}

