//! Property-based tests for the analogue circuit simulator.

use anasim::dc::dc_operating_point;
use anasim::netlist::Netlist;
use anasim::source::SourceWaveform;
use anasim::transient::{StartCondition, TransientAnalysis};
use anasim::waveform::Waveform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn divider_voltage_between_rails(
        r1 in 1.0..1e6f64,
        r2 in 1.0..1e6f64,
        vs in -10.0..10.0f64,
    ) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(vs));
        nl.resistor("R1", a, b, r1);
        nl.resistor("R2", b, Netlist::GROUND, r2);
        let op = dc_operating_point(&nl).expect("divider solves");
        let v = op.voltage(b);
        let expect = vs * r2 / (r1 + r2);
        prop_assert!((v - expect).abs() < 1e-6 * (1.0 + vs.abs()) + 1e-4);
    }

    #[test]
    fn ladder_network_satisfies_kcl(
        rs in proptest::collection::vec(10.0..100e3f64, 3..8),
        vs in 0.1..10.0f64,
    ) {
        // A resistor ladder; check the source current equals the current
        // into the first resistor computed from node voltages.
        let mut nl = Netlist::new();
        let top = nl.node("n0");
        let v1 = nl.vsource("V1", top, Netlist::GROUND, SourceWaveform::dc(vs));
        let mut prev = top;
        for (k, &r) in rs.iter().enumerate() {
            let next = if k == rs.len() - 1 {
                Netlist::GROUND
            } else {
                nl.node(&format!("n{}", k + 1))
            };
            nl.resistor(&format!("R{k}"), prev, next, r);
            prev = next;
        }
        let op = dc_operating_point(&nl).expect("ladder solves");
        let total_r: f64 = rs.iter().sum();
        let i_expect = vs / total_r;
        let i_branch = -op.branch_current(v1).expect("source current");
        // Tolerance includes the per-node gmin (1e-12 S) leakage paths.
        prop_assert!(
            (i_branch - i_expect).abs() < 1e-5 * i_expect + 1e-10,
            "{i_branch} vs {i_expect}"
        );
    }

    #[test]
    fn rc_step_response_is_monotone_and_bounded(
        r in 100.0..100e3f64,
        c in 1e-10..1e-6f64,
        v in 0.1..5.0f64,
    ) {
        let tau = r * c;
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::step(v, 0.0));
        nl.resistor("R1", vin, out, r);
        nl.capacitor("C1", out, Netlist::GROUND, c);
        let res = TransientAnalysis::new(5.0 * tau, tau / 50.0)
            .start_condition(StartCondition::Uic)
            .run(&nl)
            .expect("rc simulates");
        let w = res.voltage(out);
        let mut last = -1e-9;
        for &val in w.values() {
            prop_assert!(val >= last - 1e-6 * v, "non-monotone");
            prop_assert!(val <= v * (1.0 + 1e-6), "overshoot {val}");
            last = val;
        }
        // Near the analytic value at one tau.
        let at_tau = w.value_at(tau);
        let expect = v * (1.0 - (-1.0_f64).exp());
        prop_assert!((at_tau - expect).abs() < 0.03 * v);
    }

    #[test]
    fn capacitor_charge_is_conserved_in_share(
        c1 in 1e-12..1e-9f64,
        c2 in 1e-12..1e-9f64,
        v0 in 0.5..5.0f64,
    ) {
        // Classic charge-sharing: C1 at v0 dumped into C2 through R; the
        // final voltage is the charge-conservation value.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.capacitor_ic("C1", a, Netlist::GROUND, c1, v0);
        nl.resistor("R1", a, b, 1e3);
        nl.capacitor_ic("C2", b, Netlist::GROUND, c2, 0.0);
        let tau = 1e3 * (c1 * c2) / (c1 + c2);
        let res = TransientAnalysis::new(20.0 * tau, tau / 20.0)
            .start_condition(StartCondition::Uic)
            .run(&nl)
            .expect("share simulates");
        let v_final = res.final_voltage(a);
        let expect = v0 * c1 / (c1 + c2);
        prop_assert!(
            (v_final - expect).abs() < 0.02 * v0,
            "{v_final} vs {expect}"
        );
    }

    #[test]
    fn waveform_interpolation_within_sample_bounds(
        samples in proptest::collection::vec(-10.0..10.0f64, 2..20),
        frac in 0.0..1.0f64,
    ) {
        let t: Vec<f64> = (0..samples.len()).map(|i| i as f64).collect();
        let w = Waveform::from_samples(t, samples.clone());
        let q = frac * (samples.len() - 1) as f64;
        let v = w.value_at(q);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn pwl_source_stays_within_point_range(
        points in proptest::collection::vec((0.0..1.0f64, -5.0..5.0f64), 2..8),
        t in -0.5..1.5f64,
    ) {
        let mut pts = points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        prop_assume!(pts.len() >= 2);
        let w = SourceWaveform::Pwl(pts.clone());
        let v = w.value_at(t);
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SPICE export/import must preserve DC behaviour for arbitrary
    /// resistor ladder networks with mixed sources.
    #[test]
    fn spice_roundtrip_preserves_dc(
        rs in proptest::collection::vec(10.0..1e6f64, 2..8),
        vs in 0.1..10.0f64,
        i_leak in 0.0..1e-4f64,
    ) {
        use anasim::spice::{from_spice, to_spice};

        let mut nl = Netlist::new();
        let top = nl.node("n0");
        nl.vsource("V1", top, Netlist::GROUND, SourceWaveform::dc(vs));
        let mut prev = top;
        let mut nodes = vec![top];
        for (k, &r) in rs.iter().enumerate() {
            let next = if k == rs.len() - 1 {
                Netlist::GROUND
            } else {
                nl.node(&format!("n{}", k + 1))
            };
            nl.resistor(&format!("R{k}"), prev, next, r);
            if next != Netlist::GROUND {
                nodes.push(next);
            }
            prev = next;
        }
        // A current source injecting into the middle node makes the
        // test sensitive to sign conventions too.
        let mid = nodes[nodes.len() / 2];
        nl.isource("I1", mid, Netlist::GROUND, SourceWaveform::dc(i_leak));

        let deck = to_spice(&nl, "prop roundtrip");
        let nl2 = from_spice(&deck).expect("deck parses");
        let op1 = dc_operating_point(&nl).expect("original solves");
        let op2 = dc_operating_point(&nl2).expect("reimport solves");
        for (k, &node) in nodes.iter().enumerate() {
            let name = nl.node_name(node).to_string();
            let node2 = nl2.find_node(&name).expect("node preserved");
            let (a, b) = (op1.voltage(node), op2.voltage(node2));
            // The deck carries ~7 significant digits.
            prop_assert!(
                (a - b).abs() < 1e-5 * (1.0 + a.abs()),
                "node {k}: {a} vs {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The SPICE parser must never panic, whatever bytes arrive: it
    /// either parses or reports a lined error (non-physical passive
    /// values and duplicate names included).
    #[test]
    fn spice_parser_never_panics(text in "[ RCLVIEGMDSQXx0-9a-z.()=+*\\-\n]{0,200}") {
        let outcome = std::panic::catch_unwind(|| anasim::spice::from_spice(&text));
        prop_assert!(outcome.is_ok(), "parser panicked on {text:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// AC analysis of an RC low-pass reports the analytic corner
    /// frequency and -90° asymptotic phase for any component values.
    #[test]
    fn ac_rc_corner_matches_analytic(
        r in 100.0..1e6f64,
        c in 1e-12..1e-6f64,
    ) {
        use anasim::ac::{ac_analysis, log_sweep};

        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        // Keep the sweep in a sane band around the corner.
        prop_assume!(fc > 1e-2 && fc < 1e12);

        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        let src = nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.resistor("R1", vin, out, r);
        nl.capacitor("C1", out, Netlist::GROUND, c);

        let freqs = log_sweep(fc / 100.0, fc * 100.0, 24);
        let res = ac_analysis(&nl, src, &freqs).expect("ac solves");
        let measured = res.corner_frequency(out).expect("corner in sweep");
        prop_assert!(
            (measured - fc).abs() / fc < 0.03,
            "corner {measured:.3e} vs {fc:.3e}"
        );
        // Far above the corner the phase approaches -90 degrees.
        let phase = res.phase_deg(out);
        let last = *phase.last().expect("non-empty");
        prop_assert!((last + 90.0).abs() < 2.0, "asymptotic phase {last}");
    }
}
