//! Arming the phase profiler must not change a single simulated bit:
//! the profiler reads the clock and bumps atomics, nothing else. These
//! tests run the same nonlinear transient disarmed (the pre-profiler
//! fast path) and armed, and require bit-identical waveforms and
//! byte-identical canonical solver counters.

use std::sync::Arc;

use anasim::metrics::SolverMetrics;
use anasim::netlist::Netlist;
use anasim::robust::SolveSettings;
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use obs::profile::PhaseProfiler;
use obs::AggregatingRecorder;

/// A diode clipper: nonlinear, so the Newton loop (and with it every
/// profiled phase) actually runs.
fn clipper() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.node("in");
    let b = nl.node("out");
    nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::step(2.0, 1e-6));
    nl.resistor("R1", a, b, 1e3);
    nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
    nl.diode("D1", b, Netlist::GROUND, anasim::devices::DiodeParams::default());
    nl
}

/// Runs the transient with the given settings and returns the output
/// waveform bits plus the solver metrics snapshot.
fn run_with(settings: SolveSettings) -> (Vec<u64>, anasim::metrics::SolverSnapshot) {
    let nl = clipper();
    let out = nl.find_node("out").expect("node out");
    let metrics = settings.metrics.clone().expect("metrics attached");
    let result = TransientAnalysis::new(20e-6, 0.5e-6)
        .with_settings(&settings)
        .run(&nl)
        .expect("clipper converges");
    let w = result.voltage(out);
    let bits = (0..40)
        .map(|k| w.value_at(k as f64 * 0.5e-6).to_bits())
        .collect();
    (bits, metrics.snapshot())
}

#[test]
fn armed_profiler_changes_no_simulated_bit() {
    let disarmed_metrics = Arc::new(SolverMetrics::new());
    let disarmed = SolveSettings {
        metrics: Some(Arc::clone(&disarmed_metrics)),
        ..SolveSettings::default()
    };

    let profiler = Arc::new(PhaseProfiler::new());
    let armed_metrics = Arc::new(
        SolverMetrics::new().with_profile(Arc::clone(&profiler)),
    );
    let armed = SolveSettings {
        metrics: Some(Arc::clone(&armed_metrics)),
        profile: Some(Arc::clone(&profiler)),
        ..SolveSettings::default()
    };

    let (bits_disarmed, snap_disarmed) = run_with(disarmed);
    let (bits_armed, snap_armed) = run_with(armed);

    // Bit-identical waveforms: profiling is observation only.
    assert_eq!(bits_disarmed, bits_armed);

    // The armed run actually attributed phase time...
    assert!(snap_armed.phases.total_ns() > 0);
    assert!(snap_disarmed.phases.is_empty());
    // ...but the canonical counters are equal, so any canonical report
    // built from them is byte-identical.
    assert_eq!(snap_disarmed.as_array(), snap_armed.as_array());
    let canonical = |snap: &anasim::metrics::SolverSnapshot| {
        let recorder = AggregatingRecorder::new();
        snap.emit_to(&recorder);
        format!("{:?}", recorder.snapshot().counters)
    };
    assert_eq!(canonical(&snap_disarmed), canonical(&snap_armed));
}

#[test]
fn default_settings_never_touch_the_clock_path() {
    // The pre-profiler entry point — no settings at all — still works
    // and is the same disarmed fast path.
    let nl = clipper();
    let out = nl.find_node("out").expect("node out");
    let plain = TransientAnalysis::new(20e-6, 0.5e-6)
        .run(&nl)
        .expect("clipper converges");

    let metrics = Arc::new(SolverMetrics::new());
    let (bits, snap) = run_with(SolveSettings {
        metrics: Some(Arc::clone(&metrics)),
        ..SolveSettings::default()
    });
    assert!(snap.phases.is_empty());
    assert!(snap.newton_iterations > 0);
    let w = plain.voltage(out);
    let plain_bits: Vec<u64> = (0..40)
        .map(|k| w.value_at(k as f64 * 0.5e-6).to_bits())
        .collect();
    assert_eq!(plain_bits, bits);
}
