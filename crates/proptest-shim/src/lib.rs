//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, dependency-free property-testing harness covering
//! exactly the API surface its test suites use: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), range and tuple strategies,
//! [`collection::vec`], [`strategy::Strategy::prop_map`], `any::<bool>()`,
//! a small character-class string strategy, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is **no shrinking** and no failure
//! persistence: cases are generated from a deterministic per-test seed,
//! so failures reproduce exactly from run to run.

use std::fmt;

/// Deterministic generator driving case generation (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assume!` pre-condition failed; the case is discarded.
    Reject,
    /// A `prop_assert!` failed; the test fails.
    Fail(String),
}

/// Result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirrors
        /// `proptest::strategy::Strategy::prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }

    /// String strategy from a regex subset: one character class with a
    /// bounded repetition, e.g. `"[a-z0-9.()\\-\n ]{0,200}"`.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self);
            let len = rng.usize_in(lo, hi + 1);
            (0..len)
                .map(|_| alphabet[rng.usize_in(0, alphabet.len())])
                .collect()
        }
    }

    /// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}"));
        let close = rest
            .find(']')
            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            let c = class[i];
            if c == '\\' && i + 1 < class.len() {
                alphabet.push(match class[i + 1] {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                i += 2;
            } else if i + 2 < class.len() && class[i + 1] == '-' && class[i + 2] != ']' {
                let (a, b) = (c as u32, class[i + 2] as u32);
                for code in a..=b {
                    alphabet.push(char::from_u32(code).expect("valid range char"));
                }
                i += 3;
            } else {
                alphabet.push(c);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty class in {pattern:?}");
        let reps = &rest[close + 1..];
        let (lo, hi) = if let Some(r) = reps.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
            match r.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("class repetition lower bound"),
                    b.trim().parse().expect("class repetition upper bound"),
                ),
                None => {
                    let n = r.trim().parse().expect("class repetition count");
                    (n, n)
                }
            }
        } else if reps.is_empty() {
            (1, 1)
        } else {
            panic!("unsupported repetition {reps:?} in {pattern:?}");
        };
        (alphabet, lo, hi)
    }

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestCaseResult};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?} ({})",
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?} ({})",
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares a block of property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(200);
            while __accepted < __cfg.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $argpat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: $crate::TestCaseResult = (|| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(__msg)) => panic!(
                        "proptest {} failed after {} cases: {}",
                        stringify!($name),
                        __accepted,
                        __msg
                    ),
                }
            }
            assert!(
                __accepted > 0,
                "proptest {}: every generated case was rejected",
                stringify!($name)
            );
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0..2.0f64, n in 1usize..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0.0..1.0f64, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8, "len {}", v.len());
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(k in 0u64..100) {
            prop_assume!(k % 2 == 0);
            prop_assert!(k % 2 == 0);
        }

        #[test]
        fn map_applies_function(v in (0.0..1.0f64, 1.0..2.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..3.0).contains(&v));
        }

        #[test]
        fn string_class_pattern(s in "[a-c0-1 ]{0,16}") {
            prop_assert!(s.len() <= 16);
            prop_assert!(s.chars().all(|c| "abc01 ".contains(c)), "{s:?}");
        }

        #[test]
        fn mut_bindings_work(mut v in collection::vec(0u16..10, 1..5)) {
            v.push(3);
            prop_assert!(!v.is_empty());
        }
    }
}
