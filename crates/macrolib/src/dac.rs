//! Digital-to-analogue converter macros.
//!
//! The paper's research background treats the converter macros — ADC
//! *and* DAC — as the dominant fault sites of a mixed-signal ASIC and
//! the anchors of its self-test strategy ("detailed fault analysis of
//! the ADC and DAC macros measure their transfer function ... used to
//! self-calibrate"). This module provides both a behavioural
//! binary-weighted DAC with per-bit mismatch and a circuit-level R-2R
//! ladder on `anasim`.

use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;
use rand::Rng;

use crate::process::ProcessParams;

/// A behavioural binary-weighted DAC.
///
/// Each bit contributes `weight[k] · vref / 2^(bits−k)`; with all
/// weights at 1.0 the converter is ideal. Per-bit weight mismatch is the
/// classic source of major-carry DNL errors.
///
/// # Example
///
/// ```
/// use macrolib::dac::BinaryDac;
///
/// let dac = BinaryDac::ideal(8, 2.56);
/// assert!((dac.output(128) - 1.28).abs() < 1e-12);
/// assert!((dac.lsb() - 0.01).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryDac {
    bits: u32,
    vref: f64,
    weights: Vec<f64>,
    offset_v: f64,
}

impl BinaryDac {
    /// An ideal DAC with the given resolution and full-scale reference.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1..=24 or `vref` is not positive.
    pub fn ideal(bits: u32, vref: f64) -> Self {
        assert!((1..=24).contains(&bits), "bits must be 1..=24");
        assert!(vref > 0.0, "vref must be positive");
        BinaryDac {
            bits,
            vref,
            weights: vec![1.0; bits as usize],
            offset_v: 0.0,
        }
    }

    /// A DAC with Gaussian per-bit weight mismatch of relative sigma
    /// `sigma` (e.g. `0.002` for 0.2 % element matching).
    pub fn with_mismatch<R: Rng + ?Sized>(bits: u32, vref: f64, sigma: f64, rng: &mut R) -> Self {
        let mut dac = BinaryDac::ideal(bits, vref);
        for w in &mut dac.weights {
            // Box–Muller.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *w *= 1.0 + sigma * g;
        }
        dac
    }

    /// Overrides one bit's weight (fault injection: an open bit switch
    /// is weight 0, a shorted element roughly doubles it).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= bits`.
    pub fn with_bit_weight(mut self, bit: u32, weight: f64) -> Self {
        assert!(bit < self.bits, "bit out of range");
        self.weights[bit as usize] = weight;
        self
    }

    /// Adds an output offset.
    pub fn with_offset(mut self, offset_v: f64) -> Self {
        self.offset_v = offset_v;
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale reference voltage.
    pub fn vref(&self) -> f64 {
        self.vref
    }

    /// Nominal LSB size in volts.
    pub fn lsb(&self) -> f64 {
        self.vref / (1u64 << self.bits) as f64
    }

    /// Number of codes (`2^bits`).
    pub fn code_count(&self) -> u64 {
        1u64 << self.bits
    }

    /// The analogue output for a code (clamped to the code range).
    pub fn output(&self, code: u64) -> f64 {
        let code = code.min(self.code_count() - 1);
        let mut v = self.offset_v;
        for k in 0..self.bits {
            if code >> k & 1 == 1 {
                // Bit k nominal contribution: vref * 2^k / 2^bits.
                v += self.weights[k as usize] * self.vref * (1u64 << k) as f64
                    / self.code_count() as f64;
            }
        }
        v
    }
}

/// A built circuit-level R-2R ladder DAC.
#[derive(Debug, Clone)]
pub struct R2rLadder {
    /// Per-bit drive nodes (LSB first); drive to 0 V or `vref`.
    pub bit_inputs: Vec<NodeId>,
    /// Analogue output node.
    pub out: NodeId,
    /// Number of bits.
    pub bits: u32,
}

/// Builds an `bits`-bit R-2R ladder into `netlist`.
///
/// Each bit input is created as a voltage source driving 0 V initially;
/// set bit `k` by rewriting source `"{prefix}:B{k}"` to `vref`. The
/// unloaded output equals `code · vref / 2^bits`.
///
/// # Panics
///
/// Panics if `bits` is outside 1..=16.
pub fn r2r_ladder(
    netlist: &mut Netlist,
    prefix: &str,
    process: &ProcessParams,
    bits: u32,
) -> R2rLadder {
    assert!((1..=16).contains(&bits), "bits must be 1..=16");
    let gnd = Netlist::GROUND;
    let r = process.resistor(10e3);
    let r2 = 2.0 * r;

    let mut bit_inputs = Vec::with_capacity(bits as usize);
    // Ladder node for each bit, LSB at the far (terminated) end.
    let mut rail_prev = netlist.node(&format!("{prefix}:n0"));
    // LSB termination: 2R to ground.
    netlist.resistor(&format!("{prefix}:RT"), rail_prev, gnd, r2);

    for k in 0..bits {
        // Bit leg: 2R from the bit drive into the rail node.
        let drive = netlist.node(&format!("{prefix}:b{k}"));
        netlist.vsource(&format!("{prefix}:B{k}"), drive, gnd, SourceWaveform::dc(0.0));
        netlist.resistor(&format!("{prefix}:RB{k}"), drive, rail_prev, r2);
        bit_inputs.push(drive);
        // Series R to the next (more significant) rail node, except after
        // the MSB, whose rail node is the output.
        if k != bits - 1 {
            let rail_next = netlist.node(&format!("{prefix}:n{}", k + 1));
            netlist.resistor(&format!("{prefix}:RS{k}"), rail_prev, rail_next, r);
            rail_prev = rail_next;
        }
    }
    R2rLadder {
        bit_inputs,
        out: rail_prev,
        bits,
    }
}

/// Drives a code onto a built ladder by rewriting its bit sources.
///
/// # Panics
///
/// Panics if a bit source is missing (wrong prefix).
pub fn set_ladder_code(netlist: &mut Netlist, prefix: &str, ladder: &R2rLadder, code: u64, vref: f64) {
    for k in 0..ladder.bits {
        let id = netlist
            .find_device(&format!("{prefix}:B{k}"))
            .expect("ladder bit source exists");
        let level = if code >> k & 1 == 1 { vref } else { 0.0 };
        match netlist.device_mut(id) {
            anasim::devices::Device::Vsource { wave, .. } => {
                *wave = SourceWaveform::dc(level)
            }
            _ => unreachable!("bit drives are voltage sources"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_dac_is_linear() {
        let dac = BinaryDac::ideal(10, 2.5);
        for code in [0u64, 1, 511, 512, 1023] {
            let expect = code as f64 * dac.lsb();
            assert!((dac.output(code) - expect).abs() < 1e-12, "code {code}");
        }
    }

    #[test]
    fn over_range_code_clamps() {
        let dac = BinaryDac::ideal(4, 1.6);
        assert_eq!(dac.output(99), dac.output(15));
    }

    #[test]
    fn msb_weight_error_creates_major_carry_step() {
        // MSB 1 % light: the 011..1 -> 100..0 transition collapses.
        let dac = BinaryDac::ideal(8, 2.56).with_bit_weight(7, 0.99);
        let below = dac.output(127);
        let above = dac.output(128);
        let step = above - below;
        // Ideal step is 1 LSB = 10 mV; the error removes 1 % of half
        // scale = 12.8 mV: the step goes negative (non-monotonic).
        assert!(step < 0.0, "step {step}");
    }

    #[test]
    fn mismatch_is_reproducible() {
        let a = BinaryDac::with_mismatch(8, 2.5, 0.01, &mut StdRng::seed_from_u64(3));
        let b = BinaryDac::with_mismatch(8, 2.5, 0.01, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_ne!(a, BinaryDac::ideal(8, 2.5));
    }

    #[test]
    fn r2r_ladder_matches_binary_weighting() {
        let bits = 6;
        let vref = 2.56;
        for code in [0u64, 1, 21, 32, 63] {
            let mut nl = Netlist::new();
            let ladder = r2r_ladder(&mut nl, "dac", &ProcessParams::nominal(), bits);
            set_ladder_code(&mut nl, "dac", &ladder, code, vref);
            let op = dc_operating_point(&nl).unwrap();
            let v = op.voltage(ladder.out);
            let expect = code as f64 * vref / (1u64 << bits) as f64;
            assert!(
                (v - expect).abs() < 2e-4,
                "code {code}: {v} vs {expect}"
            );
        }
    }

    #[test]
    fn ladder_bit_count_and_elements() {
        let mut nl = Netlist::new();
        let ladder = r2r_ladder(&mut nl, "dac", &ProcessParams::nominal(), 8);
        assert_eq!(ladder.bit_inputs.len(), 8);
        // 8 bit sources + (8 legs + 7 series + 1 termination) resistors.
        assert_eq!(nl.device_count(), 8 + 16);
    }
}
