//! The switched-capacitor integrator macro (the paper's example
//! circuit 3, 15 transistors).
//!
//! An inverting SC integrator around an analogue ground `VAG`:
//!
//! ```text
//!            φ1          φ2
//!  vin ──o  S1  o──┬──o  S2  o──┐            Cf
//!                  │            │     ┌──────┤├──────┐
//!                 ─┴─ Cs        └─────┤− OP1         │
//!                 ─┬─                 │        out ──┴── vout
//!          VAG ────┘        VAG ─────┤+
//! ```
//!
//! Each clock cycle transfers `Cs·(vin − VAG)` into `Cf`, giving the
//! discrete-time response the paper quotes:
//!
//! `Vout(z)/Vin(z) = −(Cs/Cf) · z⁻¹ / (1 − z⁻¹)` with `Cs/Cf = 1/6.8`.
//!
//! The switches are the 2 extra transistors on top of OP1's 13, matching
//! the paper's 15-transistor count; a behavioural op-amp variant exists
//! for faster system-level runs.

use anasim::devices::MosPolarity;
use anasim::netlist::{DeviceId, Netlist, NodeId};
use anasim::source::SourceWaveform;

use crate::op1::Op1;
use crate::opamp::{BehavioralOpamp, OpampParams};
use crate::process::ProcessParams;

/// Which op-amp realisation the integrator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpampKind {
    /// The full 13-transistor OP1 (paper-accurate, 15 transistors total).
    Transistor,
    /// The behavioural macro-model (fast, for system-level runs).
    Behavioral,
}

/// Configuration of the SC integrator macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScIntegratorParams {
    /// Sampling capacitor in farads.
    pub cs: f64,
    /// Integration (feedback) capacitor in farads.
    pub cf: f64,
    /// Two-phase clock period in seconds (the paper uses 5 µs).
    pub clock_period: f64,
    /// Analogue ground voltage.
    pub vag: f64,
    /// Op-amp realisation.
    pub opamp: OpampKind,
}

impl ScIntegratorParams {
    /// The paper's design: `Cs/Cf = 1/6.8`, 5 µs clocks, transistor-level
    /// op-amp.
    pub fn paper_defaults() -> Self {
        ScIntegratorParams {
            cs: 1e-12,
            cf: 6.8e-12,
            clock_period: 5e-6,
            vag: 2.5,
            opamp: OpampKind::Transistor,
        }
    }

    /// Same design with the behavioural op-amp.
    pub fn behavioral() -> Self {
        ScIntegratorParams {
            opamp: OpampKind::Behavioral,
            ..ScIntegratorParams::paper_defaults()
        }
    }

    /// The per-cycle gain magnitude `Cs/Cf` (1/6.8 for the paper design).
    pub fn gain_per_cycle(&self) -> f64 {
        self.cs / self.cf
    }
}

impl Default for ScIntegratorParams {
    fn default() -> Self {
        ScIntegratorParams::paper_defaults()
    }
}

/// A built SC integrator instance.
#[derive(Debug, Clone)]
pub struct ScIntegrator {
    /// Signal input node.
    pub vin: NodeId,
    /// Integrator output node.
    pub out: NodeId,
    /// Summing junction (op-amp inverting input).
    pub summing: NodeId,
    /// Phase-1 clock node.
    pub phi1: NodeId,
    /// Phase-2 clock node.
    pub phi2: NodeId,
    /// The underlying OP1 instance, if the transistor realisation was
    /// chosen (fault-injection targets live here).
    op1: Option<Op1>,
    /// Switch devices (S1 = input sampling, S2 = charge transfer).
    switches: [DeviceId; 2],
    params: ScIntegratorParams,
}

impl ScIntegrator {
    /// Builds the integrator into `netlist`, creating its own clock
    /// generators and analogue-ground reference.
    pub fn build(
        netlist: &mut Netlist,
        prefix: &str,
        process: &ProcessParams,
        params: &ScIntegratorParams,
    ) -> ScIntegrator {
        let gnd = Netlist::GROUND;
        let vin = netlist.node(&format!("{prefix}:vin"));
        let cs_top = netlist.node(&format!("{prefix}:cs_top"));
        let vag = netlist.node(&format!("{prefix}:vag"));
        let phi1 = netlist.node(&format!("{prefix}:phi1"));
        let phi2 = netlist.node(&format!("{prefix}:phi2"));

        // Analogue ground reference.
        netlist.vsource(
            &format!("{prefix}:VAG"),
            vag,
            gnd,
            SourceWaveform::dc(params.vag),
        );

        // Non-overlapping two-phase clocks: each phase is high for 40 %
        // of the period with 10 % guard bands.
        let t = params.clock_period;
        netlist.vsource(
            &format!("{prefix}:PHI1"),
            phi1,
            gnd,
            SourceWaveform::clock(0.0, process.vdd, 0.0, 0.4 * t, t, 0.01 * t),
        );
        netlist.vsource(
            &format!("{prefix}:PHI2"),
            phi2,
            gnd,
            SourceWaveform::clock(0.0, process.vdd, 0.5 * t, 0.4 * t, t, 0.01 * t),
        );

        // Op-amp: inverting input is the summing junction, non-inverting
        // input at analogue ground.
        let (summing, out, op1) = match params.opamp {
            OpampKind::Transistor => {
                let op1 = Op1::build(netlist, &format!("{prefix}:op1"), process);
                // Tie in+ to VAG.
                netlist.resistor(&format!("{prefix}:RVAG"), op1.in_p(), vag, 1.0);
                (op1.in_n(), op1.out(), Some(op1))
            }
            OpampKind::Behavioral => {
                let op = BehavioralOpamp::build(
                    netlist,
                    &format!("{prefix}:op"),
                    &OpampParams::opamp_5um(),
                );
                netlist.resistor(&format!("{prefix}:RVAG"), op.in_p, vag, 1.0);
                (op.in_n, op.out, None)
            }
        };

        // Sampling capacitor and the two MOS switches.
        netlist.capacitor(
            &format!("{prefix}:CS"),
            cs_top,
            vag,
            process.capacitor(params.cs),
        );
        let s1 = netlist.mosfet(
            &format!("{prefix}:MS1"),
            vin,
            phi1,
            cs_top,
            MosPolarity::Nmos,
            process.nmos_sized(4.0),
        );
        let s2 = netlist.mosfet(
            &format!("{prefix}:MS2"),
            cs_top,
            phi2,
            summing,
            MosPolarity::Nmos,
            process.nmos_sized(4.0),
        );

        // Integration capacitor.
        netlist.capacitor(
            &format!("{prefix}:CF"),
            summing,
            out,
            process.capacitor(params.cf),
        );

        // Reset switch across CF: closed during the first φ1 phase so the
        // integrator starts from a defined state (and the DC operating
        // point has feedback). Real SC integrators carry the same switch.
        let rst = netlist.node(&format!("{prefix}:rst"));
        netlist.vsource(
            &format!("{prefix}:RSTP"),
            rst,
            gnd,
            SourceWaveform::Step {
                initial: process.vdd,
                level: 0.0,
                delay: 0.45 * t,
            },
        );
        netlist.switch(
            &format!("{prefix}:SRST"),
            summing,
            out,
            rst,
            gnd,
            anasim::devices::SwitchParams::default(),
        );

        ScIntegrator {
            vin,
            out,
            summing,
            phi1,
            phi2,
            op1,
            switches: [s1, s2],
            params: *params,
        }
    }

    /// The underlying OP1, if the transistor realisation was chosen.
    pub fn op1(&self) -> Option<&Op1> {
        self.op1.as_ref()
    }

    /// The switch device ids `[S1, S2]`.
    pub fn switches(&self) -> [DeviceId; 2] {
        self.switches
    }

    /// Build parameters.
    pub fn params(&self) -> &ScIntegratorParams {
        &self.params
    }

    /// The discrete-time transfer function this integrator realises,
    /// `−(Cs/Cf)·z⁻¹/(1 − z⁻¹)`, as a [`linsys`] object.
    pub fn ideal_transfer_function(&self) -> linsys::transfer::DiscreteTransferFunction {
        linsys::transfer::DiscreteTransferFunction::new(
            vec![0.0, -self.params.gain_per_cycle()],
            vec![1.0, -1.0],
            self.params.clock_period,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::transient::TransientAnalysis;

    /// Runs the behavioural-opamp integrator with a DC input offset from
    /// analogue ground and returns (t, vout) samples at cycle boundaries.
    fn run_behavioral(vin_offset: f64, cycles: usize) -> Vec<f64> {
        let mut nl = Netlist::new();
        let params = ScIntegratorParams::behavioral();
        let sc = ScIntegrator::build(&mut nl, "sc", &ProcessParams::nominal(), &params);
        nl.vsource(
            "VIN",
            sc.vin,
            Netlist::GROUND,
            SourceWaveform::dc(params.vag + vin_offset),
        );
        let t_stop = params.clock_period * cycles as f64;
        let res = TransientAnalysis::new(t_stop, 25e-9).run(&nl).unwrap();
        let w = res.voltage(sc.out);
        (1..=cycles)
            .map(|k| w.value_at(k as f64 * params.clock_period))
            .collect()
    }

    #[test]
    fn integrates_dc_input_as_ramp() {
        // +0.5 V above VAG, inverting integrator: output steps DOWN by
        // (Cs/Cf)*0.5 = 73.5 mV per cycle from 2.5 V.
        let out = run_behavioral(0.5, 8);
        let step = 0.5 / 6.8;
        for (k, v) in out.iter().enumerate() {
            let expect = 2.5 - (k + 1) as f64 * step;
            assert!(
                (v - expect).abs() < 0.02,
                "cycle {}: got {v}, want {expect}",
                k + 1
            );
        }
    }

    #[test]
    fn zero_differential_input_holds() {
        let out = run_behavioral(0.0, 6);
        for v in out {
            assert!((v - 2.5).abs() < 0.02, "drifted to {v}");
        }
    }

    #[test]
    fn negative_input_ramps_up() {
        let out = run_behavioral(-0.5, 6);
        assert!(out[5] > 2.5 + 4.0 * 0.5 / 6.8);
    }

    #[test]
    fn transistor_realisation_has_fifteen_transistors() {
        let mut nl = Netlist::new();
        let _ = ScIntegrator::build(
            &mut nl,
            "sc",
            &ProcessParams::nominal(),
            &ScIntegratorParams::paper_defaults(),
        );
        assert_eq!(nl.transistor_count(), 15);
    }

    #[test]
    fn behavioral_realisation_has_no_transistors_but_two_switches() {
        let mut nl = Netlist::new();
        let sc = ScIntegrator::build(
            &mut nl,
            "sc",
            &ProcessParams::nominal(),
            &ScIntegratorParams::behavioral(),
        );
        assert_eq!(nl.transistor_count(), 2); // just the switches
        assert!(sc.op1().is_none());
    }

    #[test]
    fn ideal_tf_matches_paper_form() {
        let mut nl = Netlist::new();
        let sc = ScIntegrator::build(
            &mut nl,
            "sc",
            &ProcessParams::nominal(),
            &ScIntegratorParams::behavioral(),
        );
        let h = sc.ideal_transfer_function();
        let step = h.step_response(5);
        // Steps by -1/6.8 per sample after the initial delay.
        assert!((step[4] + 4.0 / 6.8).abs() < 1e-12);
    }
}
