//! Current-mirror macros from the analogue library.

use anasim::devices::MosPolarity;
use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;

use crate::process::ProcessParams;

/// A built NMOS current mirror with one reference branch and several
/// output branches.
#[derive(Debug, Clone)]
pub struct CurrentMirror {
    /// Gate rail (diode-connected reference node).
    pub gate: NodeId,
    /// Output drain nodes, one per mirror branch.
    pub outputs: Vec<NodeId>,
    /// Reference current the bias resistor was sized for.
    pub i_ref: f64,
}

/// Builds an NMOS current mirror: a diode-connected reference device
/// biased at roughly `i_ref` through a resistor from `vdd`, plus
/// `branches` output devices with the given aspect-ratio multipliers.
///
/// Each output drain is left floating at `outputs[k]` for the caller to
/// connect a load; the branch sinks `multipliers[k] · i_ref` when its
/// drain is held in saturation.
///
/// # Panics
///
/// Panics if `multipliers` is empty.
pub fn nmos_mirror(
    netlist: &mut Netlist,
    prefix: &str,
    process: &ProcessParams,
    i_ref: f64,
    multipliers: &[f64],
) -> CurrentMirror {
    assert!(!multipliers.is_empty(), "need at least one output branch");
    let gnd = Netlist::GROUND;
    let supply = netlist.node(&format!("{prefix}:vdd"));
    netlist.vsource(
        &format!("{prefix}:VDD"),
        supply,
        gnd,
        SourceWaveform::dc(process.vdd),
    );

    // Reference branch: resistor sized for i_ref given the expected Vgs.
    let gate = netlist.node(&format!("{prefix}:gate"));
    let aspect_ref = 4.0;
    let params_ref = process.nmos_sized(aspect_ref);
    let vgs = params_ref.vt0 + (2.0 * i_ref / params_ref.beta).sqrt();
    let r_bias = (process.vdd - vgs) / i_ref;
    netlist.resistor(&format!("{prefix}:RB"), supply, gate, r_bias);
    netlist.mosfet(
        &format!("{prefix}:MREF"),
        gate,
        gate,
        gnd,
        MosPolarity::Nmos,
        params_ref,
    );

    let outputs = multipliers
        .iter()
        .enumerate()
        .map(|(k, &m)| {
            let out = netlist.node(&format!("{prefix}:out{k}"));
            netlist.mosfet(
                &format!("{prefix}:M{k}"),
                out,
                gate,
                gnd,
                MosPolarity::Nmos,
                process.nmos_sized(aspect_ref * m),
            );
            out
        })
        .collect();

    CurrentMirror {
        gate,
        outputs,
        i_ref,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;

    #[test]
    fn mirror_copies_reference_current() {
        let mut nl = Netlist::new();
        let cm = nmos_mirror(&mut nl, "cm", &ProcessParams::nominal(), 20e-6, &[1.0, 2.0]);
        // Load each output with a resistor to the supply so the branch
        // current is measurable via the drop.
        let vdd = nl.find_node("cm:vdd").unwrap();
        nl.resistor("RL0", vdd, cm.outputs[0], 20e3);
        nl.resistor("RL1", vdd, cm.outputs[1], 20e3);
        let op = dc_operating_point(&nl).unwrap();
        let i0 = (5.0 - op.voltage(cm.outputs[0])) / 20e3;
        let i1 = (5.0 - op.voltage(cm.outputs[1])) / 20e3;
        // 1x branch ~ i_ref (lambda and Vds mismatch allow ~15 %).
        assert!((i0 - 20e-6).abs() / 20e-6 < 0.15, "i0 = {i0:.3e}");
        // 2x branch ~ twice that.
        assert!((i1 / i0 - 2.0).abs() < 0.3, "ratio = {}", i1 / i0);
    }

    #[test]
    fn gate_rail_sits_one_vgs_up() {
        let mut nl = Netlist::new();
        let cm = nmos_mirror(&mut nl, "cm", &ProcessParams::nominal(), 10e-6, &[1.0]);
        let vdd = nl.find_node("cm:vdd").unwrap();
        nl.resistor("RL0", vdd, cm.outputs[0], 10e3);
        let op = dc_operating_point(&nl).unwrap();
        let vg = op.voltage(cm.gate);
        assert!(vg > 1.0 && vg < 2.0, "gate = {vg}");
    }
}
