//! `macrolib` — the 5 µm CMOS analogue macro library.
//!
//! The paper's mixed-signal systems are built from a gate-array macro
//! library: voltage references, current mirrors, operational amplifiers,
//! comparators, oscillators and the switched-capacitor blocks of the
//! dual-slope ADC. This crate reconstructs those macros as `anasim`
//! netlist fragments:
//!
//! * [`process`] — 5 µm process parameters and per-die process-variation
//!   sampling (the stand-in for the paper's batch of ten fabricated
//!   devices),
//! * [`op1`] — the 13-transistor CMOS operational amplifier of the
//!   paper's Figure 3, with the paper's node numbering (1–9),
//! * [`opamp`] — a behavioural op-amp/comparator macro (single pole,
//!   rail clamping) for system-level simulations,
//! * [`sc_integrator`] — the switched-capacitor integrator (example
//!   circuit 3, 15 transistors) with two-phase non-overlapping clocks,
//! * [`circuit2`] — SC integrator followed by a comparator (example
//!   circuit 2, 28 transistors),
//! * [`dac`] — binary-weighted and R-2R DAC macros (the other converter
//!   of the paper's background),
//! * [`vref`], [`current_mirror`], [`oscillator`] — supporting macros
//!   from the library inventory.
//!
//! # Example
//!
//! ```
//! use macrolib::process::ProcessParams;
//! use macrolib::op1::Op1;
//! use anasim::netlist::Netlist;
//!
//! let mut nl = Netlist::new();
//! let op1 = Op1::build(&mut nl, "op1", &ProcessParams::nominal());
//! assert_eq!(nl.transistor_count(), 13);
//! assert!(!op1.node_map().is_empty());
//! ```

pub mod circuit2;
pub mod current_mirror;
pub mod dac;
pub mod op1;
pub mod opamp;
pub mod oscillator;
pub mod process;
pub mod sample_hold;
pub mod sc_integrator;
pub mod vref;
