//! Example circuit 2: switched-capacitor integrator followed by a
//! comparator (28 transistors).
//!
//! The paper's second transient-response test vehicle: the SC integrator
//! of [`crate::sc_integrator`] (15 transistors) feeding a comparator
//! built from another OP1 (13 transistors). The integrator output is
//! compared against a reference 0.64 V above analogue ground, mirroring
//! the paper's 0.64 V comparison level.

use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;

use crate::op1::Op1;
use crate::opamp::{BehavioralOpamp, OpampParams};
use crate::process::ProcessParams;
use crate::sc_integrator::{OpampKind, ScIntegrator, ScIntegratorParams};

/// Configuration of circuit 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circuit2Params {
    /// SC integrator configuration.
    pub integrator: ScIntegratorParams,
    /// Comparator reference, volts above analogue ground (the paper
    /// compares at 0.64 V).
    pub comparator_ref: f64,
}

impl Circuit2Params {
    /// The paper's configuration (transistor-level, 0.64 V reference).
    pub fn paper_defaults() -> Self {
        Circuit2Params {
            integrator: ScIntegratorParams::paper_defaults(),
            comparator_ref: 0.64,
        }
    }

    /// Behavioural-opamp variant for fast runs.
    pub fn behavioral() -> Self {
        Circuit2Params {
            integrator: ScIntegratorParams::behavioral(),
            comparator_ref: 0.64,
        }
    }
}

impl Default for Circuit2Params {
    fn default() -> Self {
        Circuit2Params::paper_defaults()
    }
}

/// A built circuit-2 instance.
#[derive(Debug, Clone)]
pub struct Circuit2 {
    /// Signal input (to the integrator).
    pub vin: NodeId,
    /// Integrator output node (the comparator's observed signal).
    pub integrator_out: NodeId,
    /// Comparator digital-amplitude output.
    pub out: NodeId,
    integrator: ScIntegrator,
    comparator_op1: Option<Op1>,
}

impl Circuit2 {
    /// Builds circuit 2 into `netlist`.
    pub fn build(
        netlist: &mut Netlist,
        prefix: &str,
        process: &ProcessParams,
        params: &Circuit2Params,
    ) -> Circuit2 {
        let gnd = Netlist::GROUND;
        let sc = ScIntegrator::build(
            netlist,
            &format!("{prefix}:int"),
            process,
            &params.integrator,
        );

        // Comparator reference.
        let vref = netlist.node(&format!("{prefix}:vref"));
        netlist.vsource(
            &format!("{prefix}:VREF"),
            vref,
            gnd,
            SourceWaveform::dc(params.integrator.vag + params.comparator_ref),
        );

        let (out, comparator_op1) = match params.integrator.opamp {
            OpampKind::Transistor => {
                let cmp = Op1::build(netlist, &format!("{prefix}:cmp"), process);
                netlist.resistor(&format!("{prefix}:RCP"), cmp.in_p(), sc.out, 1.0);
                netlist.resistor(&format!("{prefix}:RCN"), cmp.in_n(), vref, 1.0);
                (cmp.out(), Some(cmp))
            }
            OpampKind::Behavioral => {
                let cmp = BehavioralOpamp::build(
                    netlist,
                    &format!("{prefix}:cmp"),
                    &OpampParams::comparator_5um(),
                );
                netlist.resistor(&format!("{prefix}:RCP"), cmp.in_p, sc.out, 1.0);
                netlist.resistor(&format!("{prefix}:RCN"), cmp.in_n, vref, 1.0);
                netlist.resistor(&format!("{prefix}:RCL"), cmp.out, gnd, 1e6);
                (cmp.out, None)
            }
        };

        Circuit2 {
            vin: sc.vin,
            integrator_out: sc.out,
            out,
            integrator: sc,
            comparator_op1,
        }
    }

    /// The embedded SC integrator.
    pub fn integrator(&self) -> &ScIntegrator {
        &self.integrator
    }

    /// The comparator's OP1 (transistor realisation only).
    pub fn comparator_op1(&self) -> Option<&Op1> {
        self.comparator_op1.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::transient::TransientAnalysis;

    #[test]
    fn transistor_realisation_has_28_transistors() {
        let mut nl = Netlist::new();
        let _ = Circuit2::build(
            &mut nl,
            "c2",
            &ProcessParams::nominal(),
            &Circuit2Params::paper_defaults(),
        );
        assert_eq!(nl.transistor_count(), 28);
    }

    #[test]
    fn comparator_fires_when_integrator_crosses_reference() {
        // Input 0.7 V below VAG: the inverting integrator ramps UP by
        // ~0.103 V/cycle; it crosses VAG+0.64 after ~7 cycles and the
        // comparator output goes low (integrator_out > vref drives in+
        // ... the comparator output goes HIGH since in+ = integrator).
        let mut nl = Netlist::new();
        let params = Circuit2Params::behavioral();
        let c2 = Circuit2::build(&mut nl, "c2", &ProcessParams::nominal(), &params);
        nl.vsource(
            "VIN",
            c2.vin,
            Netlist::GROUND,
            SourceWaveform::dc(params.integrator.vag - 0.7),
        );
        let t_cycle = params.integrator.clock_period;
        let res = TransientAnalysis::new(14.0 * t_cycle, 25e-9).run(&nl).unwrap();
        let cmp = res.voltage(c2.out);
        // Early: integrator below reference, comparator low.
        assert!(cmp.value_at(2.0 * t_cycle) < 1.0, "early {}", cmp.value_at(2.0 * t_cycle));
        // Late: integrator has crossed, comparator high.
        assert!(cmp.value_at(13.5 * t_cycle) > 4.0, "late {}", cmp.value_at(13.5 * t_cycle));
    }

    #[test]
    fn exposes_subblocks_for_fault_injection() {
        let mut nl = Netlist::new();
        let c2 = Circuit2::build(
            &mut nl,
            "c2",
            &ProcessParams::nominal(),
            &Circuit2Params::paper_defaults(),
        );
        assert!(c2.integrator().op1().is_some());
        assert!(c2.comparator_op1().is_some());
    }
}
