//! Behavioural op-amp and comparator macros.
//!
//! System-level simulations (the full ADC macro, oscillators) do not need
//! all 13 transistors of [`crate::op1`]; these macro-models provide the
//! same terminal behaviour — high gain, one dominant pole, rail-limited
//! output — at a fraction of the solver cost.

use anasim::devices::DiodeParams;
use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;

/// Parameters of the behavioural op-amp macro-model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpampParams {
    /// Open-loop DC gain (V/V).
    pub gain: f64,
    /// Dominant pole frequency in hertz.
    pub pole_hz: f64,
    /// Output resistance in ohms.
    pub rout: f64,
    /// Positive supply (upper clamp) in volts.
    pub vdd: f64,
}

impl OpampParams {
    /// A modest 5 µm-era op-amp: 80 dB gain, 10 kHz dominant pole.
    pub fn opamp_5um() -> Self {
        OpampParams {
            gain: 10e3,
            pole_hz: 10e3,
            rout: 1e3,
            vdd: 5.0,
        }
    }

    /// A fast comparator: lower gain but a much faster pole.
    pub fn comparator_5um() -> Self {
        OpampParams {
            gain: 5e3,
            pole_hz: 500e3,
            rout: 1e3,
            vdd: 5.0,
        }
    }
}

impl Default for OpampParams {
    fn default() -> Self {
        OpampParams::opamp_5um()
    }
}

/// A built behavioural op-amp instance.
#[derive(Debug, Clone, Copy)]
pub struct BehavioralOpamp {
    /// Non-inverting input.
    pub in_p: NodeId,
    /// Inverting input.
    pub in_n: NodeId,
    /// Output.
    pub out: NodeId,
}

impl BehavioralOpamp {
    /// Builds the macro-model into `netlist` with element names prefixed
    /// by `prefix`.
    ///
    /// Topology: a transconductance (`gm = gain / R_pole`) injects into a
    /// resistive node referenced to mid-rail, realising the open-loop
    /// gain; a capacitor on that node makes the dominant pole; diode
    /// clamps to the rails bound the swing (keeping Newton iterations
    /// well-conditioned); the clamped node feeds the output through
    /// `rout`. With zero differential input the output rests at
    /// mid-rail.
    pub fn build(netlist: &mut Netlist, prefix: &str, params: &OpampParams) -> BehavioralOpamp {
        let gnd = Netlist::GROUND;
        let in_p = netlist.node(&format!("{prefix}:inp"));
        let in_n = netlist.node(&format!("{prefix}:inn"));
        let out = netlist.node(&format!("{prefix}:out"));
        let pole = netlist.node(&format!("{prefix}:pole"));
        let mid = netlist.node(&format!("{prefix}:mid"));

        netlist.vsource(
            &format!("{prefix}:VMID"),
            mid,
            gnd,
            SourceWaveform::dc(params.vdd / 2.0),
        );

        // Gain: gm into R_pole, referenced to mid-rail.
        let r_pole = 1e6;
        let gm = params.gain / r_pole;
        netlist.vccs(&format!("{prefix}:G"), mid, pole, in_p, in_n, gm);
        netlist.resistor(&format!("{prefix}:RP"), pole, mid, r_pole);

        // Dominant pole.
        let c_pole = 1.0 / (2.0 * std::f64::consts::PI * params.pole_hz * r_pole);
        netlist.capacitor(&format!("{prefix}:CP"), pole, mid, c_pole);

        // Rail clamps: one diode drop outside each rail reference, so the
        // pole node is held to roughly [0, vdd].
        let hi_ref = netlist.node(&format!("{prefix}:hiref"));
        let lo_ref = netlist.node(&format!("{prefix}:loref"));
        netlist.vsource(
            &format!("{prefix}:VHI"),
            hi_ref,
            gnd,
            SourceWaveform::dc(params.vdd - 0.6),
        );
        netlist.vsource(
            &format!("{prefix}:VLO"),
            lo_ref,
            gnd,
            SourceWaveform::dc(0.6),
        );
        netlist.diode(
            &format!("{prefix}:DHI"),
            pole,
            hi_ref,
            DiodeParams::default(),
        );
        netlist.diode(
            &format!("{prefix}:DLO"),
            lo_ref,
            pole,
            DiodeParams::default(),
        );

        // Output resistance.
        netlist.resistor(&format!("{prefix}:RO"), pole, out, params.rout);

        BehavioralOpamp { in_p, in_n, out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;
    use anasim::transient::TransientAnalysis;

    #[test]
    fn clamps_to_rails_open_loop() {
        let mut nl = Netlist::new();
        let op = BehavioralOpamp::build(&mut nl, "u1", &OpampParams::comparator_5um());
        nl.vsource("VP", op.in_p, Netlist::GROUND, SourceWaveform::dc(3.0));
        nl.vsource("VN", op.in_n, Netlist::GROUND, SourceWaveform::dc(2.0));
        nl.resistor("RL", op.out, Netlist::GROUND, 100e3);
        let sol = dc_operating_point(&nl).unwrap();
        let v = sol.voltage(op.out);
        assert!(v > 4.3 && v < 5.3, "clamped high, got {v}");
    }

    #[test]
    fn unity_buffer_follows_input() {
        let mut nl = Netlist::new();
        let op = BehavioralOpamp::build(&mut nl, "u1", &OpampParams::opamp_5um());
        nl.vsource("VP", op.in_p, Netlist::GROUND, SourceWaveform::dc(2.4));
        // Feedback: out -> in-.
        nl.resistor("RF", op.out, op.in_n, 1.0);
        let sol = dc_operating_point(&nl).unwrap();
        let v = sol.voltage(op.out);
        assert!((v - 2.4).abs() < 2.4 / 1e3, "buffer output {v}");
    }

    #[test]
    fn inverting_amplifier_gain() {
        // Standard inverting amp: gain = -R2/R1 = -4 around a 2.5 V
        // virtual ground.
        let mut nl = Netlist::new();
        let op = BehavioralOpamp::build(&mut nl, "u1", &OpampParams::opamp_5um());
        let vin = nl.node("vin");
        nl.vsource("VIN", vin, Netlist::GROUND, SourceWaveform::dc(2.3));
        nl.vsource("VREF", op.in_p, Netlist::GROUND, SourceWaveform::dc(2.5));
        nl.resistor("R1", vin, op.in_n, 10e3);
        nl.resistor("R2", op.in_n, op.out, 40e3);
        let sol = dc_operating_point(&nl).unwrap();
        // vout = 2.5 - 4*(2.3-2.5) = 3.3
        let v = sol.voltage(op.out);
        assert!((v - 3.3).abs() < 0.02, "inverting amp output {v}");
    }

    #[test]
    fn pole_limits_open_loop_response() {
        // Open loop, a small differential step (staying inside the
        // linear region) rises with the dominant-pole time constant
        // tau = 1/(2*pi*10 kHz) = 15.9 us.
        let mut nl = Netlist::new();
        let op = BehavioralOpamp::build(&mut nl, "u1", &OpampParams::opamp_5um());
        nl.vsource(
            "VP",
            op.in_p,
            Netlist::GROUND,
            SourceWaveform::Step {
                initial: 2.5,
                level: 2.5001,
                delay: 1e-6,
            },
        );
        nl.vsource("VN", op.in_n, Netlist::GROUND, SourceWaveform::dc(2.5));
        // Light load: keep the output divider loss negligible.
        nl.resistor("RL", op.out, Netlist::GROUND, 1e9);
        let res = TransientAnalysis::new(100e-6, 0.2e-6).run(&nl).unwrap();
        let w = res.voltage(op.out);
        let tau = 1.0 / (2.0 * std::f64::consts::PI * 10e3);
        // Final value: 2.5 + gain * 0.1 mV = 3.5 V (approximately; the
        // output divider with RL costs a little).
        let at_tau = w.value_at(1e-6 + tau);
        let expect = 2.5 + 1.0 * (1.0 - (-1.0_f64).exp());
        assert!((at_tau - expect).abs() < 0.05, "at tau: {at_tau} vs {expect}");
        assert!((w.value_at(95e-6) - 3.5).abs() < 0.05);
    }

    #[test]
    fn comparator_swings_between_rails() {
        let mut nl = Netlist::new();
        let op = BehavioralOpamp::build(&mut nl, "u1", &OpampParams::comparator_5um());
        nl.vsource(
            "VP",
            op.in_p,
            Netlist::GROUND,
            SourceWaveform::ramp(0.0, 5.0, 1e-3),
        );
        nl.vsource("VN", op.in_n, Netlist::GROUND, SourceWaveform::dc(2.5));
        nl.resistor("RL", op.out, Netlist::GROUND, 100e3);
        let res = TransientAnalysis::new(1e-3, 1e-6).run(&nl).unwrap();
        let w = res.voltage(op.out);
        assert!(w.value_at(0.1e-3) < 0.7);
        assert!(w.value_at(0.9e-3) > 4.3);
    }
}
