//! Voltage-reference macros from the analogue library.

use anasim::devices::DiodeParams;
use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;

/// A built voltage-reference instance.
#[derive(Debug, Clone, Copy)]
pub struct VoltageReference {
    /// Reference output node.
    pub out: NodeId,
}

/// Builds a resistor-divider reference from a supply.
///
/// Output is `vdd · r_bottom / (r_top + r_bottom)` with output impedance
/// `r_top ∥ r_bottom`; load it lightly or buffer it.
pub fn divider_reference(
    netlist: &mut Netlist,
    prefix: &str,
    vdd: f64,
    r_top: f64,
    r_bottom: f64,
) -> VoltageReference {
    let gnd = Netlist::GROUND;
    let supply = netlist.node(&format!("{prefix}:vdd"));
    let out = netlist.node(&format!("{prefix}:out"));
    netlist.vsource(&format!("{prefix}:VDD"), supply, gnd, SourceWaveform::dc(vdd));
    netlist.resistor(&format!("{prefix}:RT"), supply, out, r_top);
    netlist.resistor(&format!("{prefix}:RB"), out, gnd, r_bottom);
    VoltageReference { out }
}

/// Builds a diode-stack reference: `n_diodes` forward drops (~0.6 V
/// each) biased through `r_bias` from the supply.
///
/// # Panics
///
/// Panics if `n_diodes` is zero.
pub fn diode_reference(
    netlist: &mut Netlist,
    prefix: &str,
    vdd: f64,
    r_bias: f64,
    n_diodes: usize,
) -> VoltageReference {
    assert!(n_diodes >= 1, "need at least one diode");
    let gnd = Netlist::GROUND;
    let supply = netlist.node(&format!("{prefix}:vdd"));
    let out = netlist.node(&format!("{prefix}:out"));
    netlist.vsource(&format!("{prefix}:VDD"), supply, gnd, SourceWaveform::dc(vdd));
    netlist.resistor(&format!("{prefix}:RB"), supply, out, r_bias);
    let mut top = out;
    for k in 0..n_diodes {
        let bottom = if k == n_diodes - 1 {
            gnd
        } else {
            netlist.node(&format!("{prefix}:d{k}"))
        };
        netlist.diode(&format!("{prefix}:D{k}"), top, bottom, DiodeParams::default());
        top = bottom;
    }
    VoltageReference { out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;

    #[test]
    fn divider_sets_expected_voltage() {
        let mut nl = Netlist::new();
        let r = divider_reference(&mut nl, "vr", 5.0, 10e3, 10e3);
        let op = dc_operating_point(&nl).unwrap();
        assert!((op.voltage(r.out) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn diode_stack_is_n_drops() {
        let mut nl = Netlist::new();
        let r = diode_reference(&mut nl, "vr", 5.0, 10e3, 2);
        let op = dc_operating_point(&nl).unwrap();
        let v = op.voltage(r.out);
        assert!(v > 0.9 && v < 1.5, "two diode drops, got {v}");
    }

    #[test]
    fn diode_reference_rejects_supply_changes() {
        // Supply sensitivity of a diode reference is much lower than a
        // divider's.
        let v_at = |vdd: f64| {
            let mut nl = Netlist::new();
            let r = diode_reference(&mut nl, "vr", vdd, 10e3, 2);
            dc_operating_point(&nl).unwrap().voltage(r.out)
        };
        let dv_diode = v_at(5.5) - v_at(4.5);
        assert!(dv_diode < 0.05, "diode ref moved {dv_diode}");
    }
}
