//! Relaxation-oscillator macro from the analogue library.
//!
//! A comparator with hysteresis (positive feedback divider) charging and
//! discharging an RC — the classic astable used as an on-chip clock
//! source for BIST sequencing.

use anasim::netlist::{Netlist, NodeId};

use crate::opamp::{BehavioralOpamp, OpampParams};

/// A built relaxation oscillator.
#[derive(Debug, Clone, Copy)]
pub struct RelaxationOscillator {
    /// Square-wave output node.
    pub out: NodeId,
    /// Timing-capacitor node (triangle-ish waveform).
    pub cap: NodeId,
    /// Designed oscillation period in seconds.
    pub period: f64,
}

/// Builds a relaxation oscillator with roughly the requested period.
///
/// The comparator output charges `C` through `R`; positive feedback taps
/// half the output, so the capacitor swings between 1/4 and 3/4 of the
/// supply and the period is `2·R·C·ln(3) ≈ 2.2·R·C`.
pub fn relaxation_oscillator(
    netlist: &mut Netlist,
    prefix: &str,
    period: f64,
) -> RelaxationOscillator {
    let gnd = Netlist::GROUND;
    let cmp = BehavioralOpamp::build(
        netlist,
        &format!("{prefix}:cmp"),
        &OpampParams::comparator_5um(),
    );

    // R and C from the requested period.
    let c = 1e-9;
    let r = period / (2.0 * c * 3.0_f64.ln());

    // Timing network: out -> R -> cap -> C -> gnd, cap node into in-.
    netlist.resistor(&format!("{prefix}:RT"), cmp.out, cmp.in_n, r);
    netlist.capacitor(&format!("{prefix}:CT"), cmp.in_n, gnd, c);

    // Hysteresis divider: out and a mid-rail reference average into in+.
    // The reference steps up shortly after t = 0: the DC operating point
    // would otherwise sit exactly on the unstable equilibrium and a
    // noiseless simulation would never leave it.
    let mid = netlist.node(&format!("{prefix}:mid"));
    netlist.vsource(
        &format!("{prefix}:VMID"),
        mid,
        gnd,
        anasim::source::SourceWaveform::Step {
            initial: 1.5,
            level: 2.5,
            delay: period / 100.0,
        },
    );
    netlist.resistor(&format!("{prefix}:RH1"), cmp.out, cmp.in_p, 100e3);
    netlist.resistor(&format!("{prefix}:RH2"), cmp.in_p, mid, 100e3);
    // A small capacitor turns the regenerative flip into a (fast)
    // continuous trajectory, which keeps the Newton iteration away from
    // the bistable algebraic solution at the switching instant.
    netlist.capacitor(&format!("{prefix}:CH"), cmp.in_p, gnd, 20e-12);

    RelaxationOscillator {
        out: cmp.out,
        cap: cmp.in_n,
        period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::transient::TransientAnalysis;
    use sigproc_test_shim::count_rising_crossings;

    // Minimal local crossing counter to avoid a circular dev-dependency
    // on sigproc.
    mod sigproc_test_shim {
        use anasim::waveform::Waveform;

        pub fn count_rising_crossings(w: &Waveform, threshold: f64) -> usize {
            let v = w.values();
            (1..v.len())
                .filter(|&i| v[i - 1] < threshold && v[i] >= threshold)
                .count()
        }
    }

    #[test]
    fn oscillates_near_design_period() {
        let mut nl = Netlist::new();
        let osc = relaxation_oscillator(&mut nl, "osc", 100e-6);
        let newton = anasim::mna::NewtonOptions {
            max_iterations: 500,
            ..Default::default()
        };
        let res = TransientAnalysis::new(1.05e-3, 0.2e-6)
            .newton_options(newton)
            .run(&nl)
            .unwrap();
        let w = res.voltage(osc.out);
        // Expect ~10 periods in 1 ms; allow generous tolerance since the
        // comparator pole steals some time each half-cycle.
        let edges = count_rising_crossings(&w, 2.5);
        assert!(
            (6..=14).contains(&edges),
            "expected ~10 rising edges, saw {edges}"
        );
    }

    #[test]
    fn capacitor_waveform_swings_between_thresholds() {
        let mut nl = Netlist::new();
        let osc = relaxation_oscillator(&mut nl, "osc", 50e-6);
        let res = TransientAnalysis::new(500e-6, 0.1e-6).run(&nl).unwrap();
        let cap = res.voltage(osc.cap);
        // After start-up the cap node stays inside the hysteresis band
        // (roughly 1.25 V to 3.75 V, with margin for overshoot).
        let late_min = cap
            .times()
            .iter()
            .zip(cap.values())
            .filter(|(t, _)| **t > 200e-6)
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        let late_max = cap
            .times()
            .iter()
            .zip(cap.values())
            .filter(|(t, _)| **t > 200e-6)
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(late_min > 0.8, "min {late_min}");
        assert!(late_max < 4.2, "max {late_max}");
        assert!(late_max - late_min > 1.0, "swing {}", late_max - late_min);
    }
}
