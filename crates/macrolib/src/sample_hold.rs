//! Sample-and-hold macro.
//!
//! The acquisition front-end of any sampled-data converter: a MOS
//! switch charges a hold capacitor during the track phase; a buffer
//! presents the held value. Part of the analogue macro library the
//! paper surveys ("voltage references, current mirrors, operational
//! amplifiers, ... oscillators, ADCs and DACs").

use anasim::devices::MosPolarity;
use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;

use crate::opamp::{BehavioralOpamp, OpampParams};
use crate::process::ProcessParams;

/// Configuration of the sample-and-hold macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleHoldParams {
    /// Hold capacitor, farads.
    pub c_hold: f64,
    /// Sampling clock period, seconds.
    pub clock_period: f64,
    /// Fraction of the period spent tracking (0–1).
    pub track_fraction: f64,
}

impl SampleHoldParams {
    /// A 5 µm-era design: 10 pF hold capacitor, 10 µs period, 40 % track.
    pub fn default_5um() -> Self {
        SampleHoldParams {
            c_hold: 10e-12,
            clock_period: 10e-6,
            track_fraction: 0.4,
        }
    }
}

impl Default for SampleHoldParams {
    fn default() -> Self {
        SampleHoldParams::default_5um()
    }
}

/// A built sample-and-hold instance.
#[derive(Debug, Clone)]
pub struct SampleHold {
    /// Signal input.
    pub vin: NodeId,
    /// Buffered held output.
    pub out: NodeId,
    /// Hold-capacitor (pre-buffer) node.
    pub hold: NodeId,
    /// Track clock node.
    pub clock: NodeId,
    params: SampleHoldParams,
}

impl SampleHold {
    /// Builds the macro into `netlist` with its own clock source.
    pub fn build(
        netlist: &mut Netlist,
        prefix: &str,
        process: &ProcessParams,
        params: &SampleHoldParams,
    ) -> SampleHold {
        let gnd = Netlist::GROUND;
        let vin = netlist.node(&format!("{prefix}:vin"));
        let hold = netlist.node(&format!("{prefix}:hold"));
        let clock = netlist.node(&format!("{prefix}:clk"));

        netlist.vsource(
            &format!("{prefix}:CLK"),
            clock,
            gnd,
            SourceWaveform::clock(
                0.0,
                process.vdd,
                0.0,
                params.track_fraction * params.clock_period,
                params.clock_period,
                0.01 * params.clock_period,
            ),
        );

        // Track switch: NMOS, gate on the clock.
        netlist.mosfet(
            &format!("{prefix}:MSW"),
            vin,
            clock,
            hold,
            MosPolarity::Nmos,
            process.nmos_sized(6.0),
        );
        netlist.capacitor(&format!("{prefix}:CH"), hold, gnd, params.c_hold);

        // Unity buffer.
        let buf = BehavioralOpamp::build(netlist, &format!("{prefix}:buf"), &OpampParams::opamp_5um());
        netlist.resistor(&format!("{prefix}:RBP"), buf.in_p, hold, 1.0);
        netlist.resistor(&format!("{prefix}:RFB"), buf.out, buf.in_n, 1.0);

        SampleHold {
            vin,
            out: buf.out,
            hold,
            clock,
            params: *params,
        }
    }

    /// Build parameters.
    pub fn params(&self) -> &SampleHoldParams {
        &self.params
    }

    /// Time (within each period) at which the held value is valid: just
    /// after the track phase ends.
    pub fn hold_instant(&self, period_index: usize) -> f64 {
        (period_index as f64 + self.params.track_fraction) * self.params.clock_period
            + 0.05 * self.params.clock_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::transient::TransientAnalysis;

    #[test]
    fn holds_a_ramp_as_a_staircase() {
        let mut nl = Netlist::new();
        let params = SampleHoldParams::default_5um();
        let sh = SampleHold::build(&mut nl, "sh", &ProcessParams::nominal(), &params);
        // Slow ramp 1.0 -> 2.0 V over 100 us (well inside the NMOS
        // switch's passing range).
        nl.vsource(
            "VIN",
            sh.vin,
            Netlist::GROUND,
            SourceWaveform::ramp(1.0, 2.0, 100e-6),
        );
        let res = TransientAnalysis::new(100e-6, 50e-9).run(&nl).unwrap();
        let w = res.voltage(sh.out);
        for k in 1..9 {
            let t_hold = sh.hold_instant(k);
            // Held value ~ the ramp at the end of the track phase.
            let t_acq = (k as f64 + params.track_fraction) * params.clock_period;
            let expect = 1.0 + t_acq / 100e-6;
            let got = w.value_at(t_hold);
            assert!(
                (got - expect).abs() < 0.06,
                "period {k}: held {got:.3}, expected {expect:.3}"
            );
        }
    }

    #[test]
    fn droop_is_small_during_hold() {
        let mut nl = Netlist::new();
        let params = SampleHoldParams::default_5um();
        let sh = SampleHold::build(&mut nl, "sh", &ProcessParams::nominal(), &params);
        nl.vsource("VIN", sh.vin, Netlist::GROUND, SourceWaveform::dc(1.5));
        let res = TransientAnalysis::new(50e-6, 50e-9).run(&nl).unwrap();
        let hold = res.voltage(sh.hold);
        // Compare the start and end of one hold phase (period 2).
        let t0 = sh.hold_instant(2);
        let t1 = (3.0 - 0.02) * params.clock_period;
        let droop = (hold.value_at(t0) - hold.value_at(t1)).abs();
        assert!(droop < 5e-3, "droop {droop}");
    }

    #[test]
    fn tracks_during_track_phase() {
        let mut nl = Netlist::new();
        let params = SampleHoldParams::default_5um();
        let sh = SampleHold::build(&mut nl, "sh", &ProcessParams::nominal(), &params);
        nl.vsource("VIN", sh.vin, Netlist::GROUND, SourceWaveform::dc(2.0));
        let res = TransientAnalysis::new(30e-6, 50e-9).run(&nl).unwrap();
        let hold = res.voltage(sh.hold);
        // Mid-track of period 1: the cap has charged to the input.
        let t = (1.0 + params.track_fraction / 2.0) * params.clock_period;
        assert!((hold.value_at(t) - 2.0).abs() < 0.05, "{}", hold.value_at(t));
    }
}
