//! OP1 — the 13-transistor CMOS operational amplifier of the paper's
//! Figure 3.
//!
//! The figure labels nine externally interesting nodes:
//!
//! | node | role |
//! |---|---|
//! | 1 | In+ |
//! | 2 | In− |
//! | 3 | Out |
//! | 4 | p-type current-source bias (IRef) |
//! | 5 | n-type current-source bias |
//! | 6 | differential-pair mirror node |
//! | 7 | differential-pair output |
//! | 8 | inverter (second-stage) output |
//! | 9 | inverter-buffer output |
//!
//! The realisation here is a classic Miller-compensated CMOS amplifier:
//! a PMOS-tail differential pair with NMOS current-mirror load, an NMOS
//! common-source "inverter" gain stage with a PMOS current-source load
//! (node 8), a level-shifting source-follower "inverter buffer"
//! (node 9) and a push-pull follower output stage — 13 transistors in
//! total, matching the paper. Bias currents derive from two
//! resistor-set diode-connected references (nodes 4 and 5). The output
//! swings roughly 0.1 V to 3.6 V on the 5 V supply (follower output
//! stages cost a Vgs of headroom at the top, as they did in gate-array
//! op-amps of this era).

use anasim::netlist::{Netlist, NodeId};
use anasim::devices::MosPolarity;
use anasim::source::SourceWaveform;

use crate::process::ProcessParams;

/// A built OP1 macro instance: node handles into the host netlist.
#[derive(Debug, Clone)]
pub struct Op1 {
    /// Paper-numbered nodes; index 0 is unused.
    nodes: [NodeId; 10],
    vdd: NodeId,
}

impl Op1 {
    /// Builds an OP1 instance into `netlist` with its own supply.
    ///
    /// All internal elements are prefixed with `prefix` so multiple
    /// instances coexist.
    pub fn build(netlist: &mut Netlist, prefix: &str, process: &ProcessParams) -> Op1 {
        let vdd = netlist.node(&format!("{prefix}:vdd"));
        netlist.vsource(
            &format!("{prefix}:VDD"),
            vdd,
            Netlist::GROUND,
            SourceWaveform::dc(process.vdd),
        );
        Op1::build_with_supply(netlist, prefix, process, vdd)
    }

    /// Builds an OP1 instance sharing an existing supply node.
    pub fn build_with_supply(
        netlist: &mut Netlist,
        prefix: &str,
        process: &ProcessParams,
        vdd: NodeId,
    ) -> Op1 {
        let gnd = Netlist::GROUND;
        let n = |nl: &mut Netlist, k: u32| nl.node(&format!("{prefix}:n{k}"));
        let n1 = n(netlist, 1); // In+
        let n2 = n(netlist, 2); // In-
        let n3 = n(netlist, 3); // Out
        let n4 = n(netlist, 4); // p bias
        let n5 = n(netlist, 5); // n bias
        let n6 = n(netlist, 6); // mirror node
        let n7 = n(netlist, 7); // diff output
        let n8 = n(netlist, 8); // inverter output
        let n9 = n(netlist, 9); // buffer output
        let tail = netlist.node(&format!("{prefix}:tail"));

        let nmos = |p: &ProcessParams, a: f64| p.nmos_sized(a);
        let pmos = |p: &ProcessParams, a: f64| p.pmos_sized(a);

        // --- Bias generators ------------------------------------------
        // p bias: diode-connected PMOS M1 with resistor to ground sets
        // IRef; node 4 is the PMOS mirror gate rail.
        netlist.mosfet(
            &format!("{prefix}:M1"),
            n4,
            n4,
            vdd,
            MosPolarity::Pmos,
            pmos(process, 4.0),
        );
        netlist.resistor(&format!("{prefix}:R1"), n4, gnd, process.resistor(160e3));
        // n bias: diode-connected NMOS M7 with resistor from VDD; node 5
        // is the NMOS mirror gate rail.
        netlist.mosfet(
            &format!("{prefix}:M7"),
            n5,
            n5,
            gnd,
            MosPolarity::Nmos,
            nmos(process, 2.0),
        );
        netlist.resistor(&format!("{prefix}:R2"), vdd, n5, process.resistor(165e3));

        // --- Differential input stage ---------------------------------
        // M2: PMOS tail current source from the p bias.
        netlist.mosfet(
            &format!("{prefix}:M2"),
            tail,
            n4,
            vdd,
            MosPolarity::Pmos,
            pmos(process, 8.0),
        );
        // M3 (In- side, drives the mirror diode node 6),
        // M4 (In+ side, drives the output node 7).
        netlist.mosfet(
            &format!("{prefix}:M3"),
            n6,
            n2,
            tail,
            MosPolarity::Pmos,
            pmos(process, 8.0),
        );
        netlist.mosfet(
            &format!("{prefix}:M4"),
            n7,
            n1,
            tail,
            MosPolarity::Pmos,
            pmos(process, 8.0),
        );
        // NMOS current-mirror load M5 (diode) / M6.
        netlist.mosfet(
            &format!("{prefix}:M5"),
            n6,
            n6,
            gnd,
            MosPolarity::Nmos,
            nmos(process, 2.0),
        );
        netlist.mosfet(
            &format!("{prefix}:M6"),
            n7,
            n6,
            gnd,
            MosPolarity::Nmos,
            nmos(process, 2.0),
        );

        // --- Second stage: "inverter" ---------------------------------
        // NMOS common source from node 7, PMOS current-source load. This
        // is the only gain stage after the differential pair, so simple
        // Miller compensation across it stabilises the amplifier.
        netlist.mosfet(
            &format!("{prefix}:M8"),
            n8,
            n7,
            gnd,
            MosPolarity::Nmos,
            nmos(process, 4.0),
        );
        netlist.mosfet(
            &format!("{prefix}:M9"),
            n8,
            n4,
            vdd,
            MosPolarity::Pmos,
            pmos(process, 8.0),
        );

        // --- "Inverter buffer": level-shift follower -------------------
        // NMOS source follower shifts node 8 down one Vgs to node 9.
        netlist.mosfet(
            &format!("{prefix}:M10"),
            vdd,
            n8,
            n9,
            MosPolarity::Nmos,
            nmos(process, 4.0),
        );
        netlist.mosfet(
            &format!("{prefix}:M11"),
            n9,
            n5,
            gnd,
            MosPolarity::Nmos,
            nmos(process, 4.0),
        );

        // --- Output stage: push-pull followers -------------------------
        // NMOS follower (from node 8) pushes; PMOS follower (from the
        // shifted node 9) pulls. Followers add no inversion and no gain,
        // so they sit harmlessly outside the Miller loop; the level
        // shift narrows the crossover dead zone and extends the negative
        // swing.
        netlist.mosfet(
            &format!("{prefix}:M12"),
            vdd,
            n8,
            n3,
            MosPolarity::Nmos,
            nmos(process, 8.0),
        );
        netlist.mosfet(
            &format!("{prefix}:M13"),
            gnd,
            n9,
            n3,
            MosPolarity::Pmos,
            pmos(process, 16.0),
        );

        // --- Parasitics and compensation --------------------------------
        // Miller compensation across the second stage plus node
        // capacitances that set realistic (5 µm era) internal poles.
        netlist.capacitor(&format!("{prefix}:CC"), n7, n8, process.capacitor(5e-12));
        netlist.capacitor(&format!("{prefix}:C7"), n7, gnd, process.capacitor(1e-12));
        netlist.capacitor(&format!("{prefix}:C8"), n8, gnd, process.capacitor(1e-12));
        netlist.capacitor(&format!("{prefix}:C9"), n9, gnd, process.capacitor(1e-12));
        netlist.capacitor(&format!("{prefix}:CL"), n3, gnd, process.capacitor(10e-12));

        Op1 {
            nodes: [gnd, n1, n2, n3, n4, n5, n6, n7, n8, n9],
            vdd,
        }
    }

    /// Non-inverting input (paper node 1).
    pub fn in_p(&self) -> NodeId {
        self.nodes[1]
    }

    /// Inverting input (paper node 2).
    pub fn in_n(&self) -> NodeId {
        self.nodes[2]
    }

    /// Output (paper node 3).
    pub fn out(&self) -> NodeId {
        self.nodes[3]
    }

    /// Supply node.
    pub fn vdd(&self) -> NodeId {
        self.vdd
    }

    /// Node by the paper's numbering (1–9).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside 1..=9.
    pub fn node(&self, k: u8) -> NodeId {
        assert!((1..=9).contains(&k), "paper node number must be 1..=9");
        self.nodes[k as usize]
    }

    /// All paper-numbered nodes as `(number, node)` pairs.
    pub fn node_map(&self) -> Vec<(u8, NodeId)> {
        (1..=9u8).map(|k| (k, self.nodes[k as usize])).collect()
    }

    /// The major internal nodes the paper injects single stuck-at faults
    /// on for circuit 1: nodes 4, 5, 7, 8 and 3.
    pub fn single_fault_nodes(&self) -> Vec<(u8, NodeId)> {
        [4u8, 5, 7, 8, 3]
            .into_iter()
            .map(|k| (k, self.nodes[k as usize]))
            .collect()
    }

    /// The node pairs the paper bridges for circuit 1: 8–9, 5–8 and 4–6.
    pub fn bridge_fault_pairs(&self) -> Vec<((u8, NodeId), (u8, NodeId))> {
        [(8u8, 9u8), (5, 8), (4, 6)]
            .into_iter()
            .map(|(a, b)| {
                (
                    (a, self.nodes[a as usize]),
                    (b, self.nodes[b as usize]),
                )
            })
            .collect()
    }
}

/// Open-loop frequency-response summary of an OP1 instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op1FrequencyResponse {
    /// DC open-loop gain in dB.
    pub dc_gain_db: f64,
    /// Dominant-pole (−3 dB) frequency in hertz, if inside the sweep.
    pub dominant_pole_hz: Option<f64>,
    /// Unity-gain frequency in hertz, if inside the sweep.
    pub unity_gain_hz: Option<f64>,
}

impl Op1 {
    /// Measures the open-loop frequency response with an AC analysis:
    /// the instance is biased at `bias` volts on both inputs and a unit
    /// AC excitation rides on In+.
    ///
    /// Builds a private copy of the amplifier, so the caller's netlist
    /// is untouched.
    ///
    /// # Errors
    ///
    /// Propagates DC non-convergence from the bias solution.
    pub fn measure_frequency_response(
        process: &ProcessParams,
        bias: f64,
    ) -> Result<Op1FrequencyResponse, anasim::AnalysisError> {
        let mut nl = Netlist::new();
        let op1 = Op1::build(&mut nl, "acprobe", process);
        let src = nl.vsource(
            "acprobe:VINP",
            op1.in_p(),
            Netlist::GROUND,
            SourceWaveform::dc(bias),
        );
        nl.vsource(
            "acprobe:VINN",
            op1.in_n(),
            Netlist::GROUND,
            SourceWaveform::dc(bias),
        );
        let freqs = anasim::ac::log_sweep(1.0, 100e6, 12);
        let res = anasim::ac::ac_analysis(&nl, src, &freqs)?;
        let mags = res.magnitude_db(op1.out());
        Ok(Op1FrequencyResponse {
            dc_gain_db: mags[0],
            dominant_pole_hz: res.corner_frequency(op1.out()),
            unity_gain_hz: res.unity_gain_frequency(op1.out()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;
    use anasim::transient::TransientAnalysis;

    #[test]
    fn open_loop_frequency_response_is_opamp_like() {
        let fr = Op1::measure_frequency_response(&ProcessParams::nominal(), 2.0).unwrap();
        // Two gain stages: comfortably over 40 dB at DC.
        assert!(fr.dc_gain_db > 40.0, "dc gain {:.1} dB", fr.dc_gain_db);
        // Miller-compensated dominant pole well below the unity-gain
        // frequency (single-pole roll-off region).
        let pole = fr.dominant_pole_hz.expect("pole inside sweep");
        let ugf = fr.unity_gain_hz.expect("crossover inside sweep");
        assert!(pole < ugf / 30.0, "pole {pole:.0} Hz vs UGF {ugf:.0} Hz");
    }

    fn build_biased(vin_p: f64, vin_n: f64) -> (Netlist, Op1) {
        let mut nl = Netlist::new();
        let op1 = Op1::build(&mut nl, "a", &ProcessParams::nominal());
        nl.vsource("VP", op1.in_p(), Netlist::GROUND, SourceWaveform::dc(vin_p));
        nl.vsource("VN", op1.in_n(), Netlist::GROUND, SourceWaveform::dc(vin_n));
        (nl, op1)
    }

    #[test]
    fn has_exactly_thirteen_transistors() {
        let mut nl = Netlist::new();
        let _ = Op1::build(&mut nl, "a", &ProcessParams::nominal());
        assert_eq!(nl.transistor_count(), 13);
    }

    #[test]
    fn bias_nodes_sit_at_sane_levels() {
        let (nl, op1) = build_biased(2.0, 2.0);
        let op = dc_operating_point(&nl).unwrap();
        let v4 = op.voltage(op1.node(4));
        let v5 = op.voltage(op1.node(5));
        // p bias a |Vgs| below VDD; n bias a Vgs above ground.
        assert!(v4 > 2.0 && v4 < 4.5, "v4 = {v4}");
        assert!(v5 > 1.0 && v5 < 3.0, "v5 = {v5}");
    }

    #[test]
    fn output_saturates_with_large_differential() {
        let (nl_hi, op_hi) = build_biased(2.5, 1.5);
        let op = dc_operating_point(&nl_hi).unwrap();
        let out_hi = op.voltage(op_hi.out());
        let (nl_lo, op_lo) = build_biased(1.5, 2.5);
        let op2 = dc_operating_point(&nl_lo).unwrap();
        let out_lo = op2.voltage(op_lo.out());
        // Non-inverting: In+ > In- drives the output high (the follower
        // output stage tops out a Vgs below the rail).
        assert!(out_hi > 3.2, "out_hi = {out_hi}");
        assert!(out_lo < 1.0, "out_lo = {out_lo}");
    }

    #[test]
    fn transient_comparator_response_to_step() {
        // Drive In+ with a step through the In- = 2.0 V reference and
        // watch the output swing rail to rail.
        let mut nl = Netlist::new();
        let op1 = Op1::build(&mut nl, "a", &ProcessParams::nominal());
        nl.vsource(
            "VP",
            op1.in_p(),
            Netlist::GROUND,
            SourceWaveform::Pwl(vec![(0.0, 1.0), (40e-6, 1.0), (50e-6, 3.0)]),
        );
        nl.vsource("VN", op1.in_n(), Netlist::GROUND, SourceWaveform::dc(2.0));
        let res = TransientAnalysis::new(200e-6, 0.5e-6).run(&nl).unwrap();
        let w = res.voltage(op1.out());
        assert!(w.value_at(30e-6) < 1.0, "low before step: {}", w.value_at(30e-6));
        assert!(w.value_at(190e-6) > 3.2, "high after step: {}", w.value_at(190e-6));
    }

    #[test]
    fn node_map_covers_paper_numbering() {
        let mut nl = Netlist::new();
        let op1 = Op1::build(&mut nl, "a", &ProcessParams::nominal());
        let map = op1.node_map();
        assert_eq!(map.len(), 9);
        assert_eq!(op1.node(1), op1.in_p());
        assert_eq!(op1.node(3), op1.out());
    }

    #[test]
    fn fault_universe_matches_paper() {
        let mut nl = Netlist::new();
        let op1 = Op1::build(&mut nl, "a", &ProcessParams::nominal());
        assert_eq!(op1.single_fault_nodes().len(), 5);
        assert_eq!(op1.bridge_fault_pairs().len(), 3);
    }

    #[test]
    #[should_panic(expected = "1..=9")]
    fn node_zero_rejected() {
        let mut nl = Netlist::new();
        let op1 = Op1::build(&mut nl, "a", &ProcessParams::nominal());
        let _ = op1.node(0);
    }

    #[test]
    fn two_instances_coexist() {
        let mut nl = Netlist::new();
        let a = Op1::build(&mut nl, "a", &ProcessParams::nominal());
        let b = Op1::build(&mut nl, "b", &ProcessParams::nominal());
        assert_ne!(a.out(), b.out());
        assert_eq!(nl.transistor_count(), 26);
    }
}
