//! 5 µm CMOS process parameters and process-variation sampling.
//!
//! The paper evaluated its BIST macros on a batch of ten fabricated
//! gate-array devices. We stand in for fabrication by sampling per-die
//! parameter sets around the nominal process corner: threshold voltages,
//! transconductance factors and passive values all receive independent
//! Gaussian deviations, which is the mechanism that differentiates real
//! dies.

use anasim::devices::MosParams;
use rand::Rng;

/// Nominal device parameters for the 5 µm CMOS gate-array process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Unit NMOS parameters (W/L = 1).
    pub nmos: MosParams,
    /// Unit PMOS parameters (W/L = 1).
    pub pmos: MosParams,
    /// Multiplier on all resistors (1.0 nominal).
    pub resistor_scale: f64,
    /// Multiplier on all capacitors (1.0 nominal).
    pub capacitor_scale: f64,
}

impl ProcessParams {
    /// The nominal process corner.
    pub fn nominal() -> Self {
        ProcessParams {
            vdd: 5.0,
            nmos: MosParams::nmos_5um(),
            pmos: MosParams::pmos_5um(),
            resistor_scale: 1.0,
            capacitor_scale: 1.0,
        }
    }

    /// NMOS parameters scaled to aspect ratio `w_over_l`.
    pub fn nmos_sized(&self, w_over_l: f64) -> MosParams {
        self.nmos.with_aspect(w_over_l)
    }

    /// PMOS parameters scaled to aspect ratio `w_over_l`.
    pub fn pmos_sized(&self, w_over_l: f64) -> MosParams {
        self.pmos.with_aspect(w_over_l)
    }

    /// Applies a resistor value through the process scale factor.
    pub fn resistor(&self, nominal_ohms: f64) -> f64 {
        nominal_ohms * self.resistor_scale
    }

    /// Applies a capacitor value through the process scale factor.
    pub fn capacitor(&self, nominal_farads: f64) -> f64 {
        nominal_farads * self.capacitor_scale
    }
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams::nominal()
    }
}

/// Relative 1-sigma spreads for process variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Absolute sigma on threshold voltages (volts).
    pub vt_sigma: f64,
    /// Relative sigma on transconductance factors.
    pub beta_sigma: f64,
    /// Relative sigma on resistor values.
    pub resistor_sigma: f64,
    /// Relative sigma on capacitor values.
    pub capacitor_sigma: f64,
}

impl VariationModel {
    /// A realistic die-to-die spread for a mature 5 µm process.
    pub fn typical() -> Self {
        VariationModel {
            vt_sigma: 0.05,
            beta_sigma: 0.05,
            resistor_sigma: 0.10,
            capacitor_sigma: 0.05,
        }
    }

    /// A loose spread producing occasional marginal devices, for
    /// stress-testing the BIST pass/fail thresholds.
    pub fn loose() -> Self {
        VariationModel {
            vt_sigma: 0.15,
            beta_sigma: 0.15,
            resistor_sigma: 0.25,
            capacitor_sigma: 0.12,
        }
    }

    /// Samples a die's process parameters around the nominal corner.
    pub fn sample_die<R: Rng + ?Sized>(&self, rng: &mut R) -> ProcessParams {
        let nominal = ProcessParams::nominal();
        let gauss = |rng: &mut R, sigma: f64| -> f64 {
            // Box–Muller from two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        ProcessParams {
            vdd: nominal.vdd,
            nmos: MosParams {
                vt0: nominal.nmos.vt0 + gauss(rng, self.vt_sigma),
                beta: nominal.nmos.beta * (1.0 + gauss(rng, self.beta_sigma)),
                lambda: nominal.nmos.lambda,
            },
            pmos: MosParams {
                vt0: nominal.pmos.vt0 + gauss(rng, self.vt_sigma),
                beta: nominal.pmos.beta * (1.0 + gauss(rng, self.beta_sigma)),
                lambda: nominal.pmos.lambda,
            },
            resistor_scale: 1.0 + gauss(rng, self.resistor_sigma),
            capacitor_scale: 1.0 + gauss(rng, self.capacitor_sigma),
        }
    }

    /// Samples a batch of dies (the paper fabricated ten).
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<ProcessParams> {
        (0..count).map(|_| self.sample_die(rng)).collect()
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_process_is_5v() {
        let p = ProcessParams::nominal();
        assert_eq!(p.vdd, 5.0);
        assert_eq!(p.resistor(1e3), 1e3);
        assert_eq!(p.capacitor(1e-12), 1e-12);
    }

    #[test]
    fn sizing_scales_beta_only() {
        let p = ProcessParams::nominal();
        let sized = p.nmos_sized(3.0);
        assert!((sized.beta - 3.0 * p.nmos.beta).abs() < 1e-18);
        assert_eq!(sized.vt0, p.nmos.vt0);
    }

    #[test]
    fn sampled_dies_differ() {
        let mut rng = StdRng::seed_from_u64(42);
        let batch = VariationModel::typical().sample_batch(&mut rng, 10);
        assert_eq!(batch.len(), 10);
        let vts: Vec<f64> = batch.iter().map(|d| d.nmos.vt0).collect();
        let first = vts[0];
        assert!(vts.iter().any(|&v| (v - first).abs() > 1e-6));
    }

    #[test]
    fn variation_is_centred_on_nominal() {
        let mut rng = StdRng::seed_from_u64(7);
        let batch = VariationModel::typical().sample_batch(&mut rng, 400);
        let mean_vt: f64 = batch.iter().map(|d| d.nmos.vt0).sum::<f64>() / 400.0;
        assert!((mean_vt - 1.0).abs() < 0.02, "mean vt = {mean_vt}");
        let mean_r: f64 = batch.iter().map(|d| d.resistor_scale).sum::<f64>() / 400.0;
        assert!((mean_r - 1.0).abs() < 0.03, "mean r = {mean_r}");
    }

    #[test]
    fn sampling_is_reproducible_with_seed() {
        let a = VariationModel::typical().sample_die(&mut StdRng::seed_from_u64(5));
        let b = VariationModel::typical().sample_die(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn loose_model_spreads_wider() {
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let typ = VariationModel::typical().sample_batch(&mut rng_a, 200);
        let loose = VariationModel::loose().sample_batch(&mut rng_b, 200);
        let spread = |b: &[ProcessParams]| {
            let m = b.iter().map(|d| d.resistor_scale).sum::<f64>() / b.len() as f64;
            b.iter()
                .map(|d| (d.resistor_scale - m).powi(2))
                .sum::<f64>()
                / b.len() as f64
        };
        assert!(spread(&loose) > spread(&typ));
    }
}
