//! Live campaign telemetry: per-worker heartbeats, periodic
//! `mixsig.campaign-status/1` snapshots, and stall detection.
//!
//! Everything in this module is *advisory*: it exists so a human (or
//! the `experiments watch` console, or a future HTTP service) can see
//! what a running campaign is doing, and it is guaranteed never to
//! change what the campaign produces. Three rules enforce that:
//!
//! * **Sidecar files only.** Heartbeats append to
//!   `<dir>/heartbeats.jsonl` and snapshots replace `<dir>/status.json`
//!   — never the checkpoint journal, whose replay semantics and byte
//!   layout are part of the crash-safety contract. (Defensively, the
//!   journal replayer also skips any `heartbeat` record it encounters,
//!   so even a misconfigured path cannot poison a resume.)
//! * **Best-effort writes.** A telemetry write failure is counted
//!   (`heartbeat_drops` / `status_drops` in the next snapshot that does
//!   land) and otherwise ignored; after the heartbeat writer fails
//!   persistently it is disabled rather than retried forever. A
//!   campaign can finish with its telemetry directory on a dead disk.
//! * **Wall-clock quarantine.** Rates, ETAs and heartbeat ages are
//!   wall-clock derived and flow only into the status snapshot, never
//!   into [`CampaignReport`](crate::campaign::CampaignReport) canonical
//!   output — reports stay byte-identical with telemetry armed or
//!   disarmed.
//!
//! Stall detection: a lane with a fault in flight whose heartbeat age
//! exceeds [`TelemetryConfig::stall_factor`] × the per-fault wall
//! budget is flagged `stalled` in the snapshot. Campaigns without a
//! wall budget fall back to the same multiple of the average observed
//! fault duration (floored at one second), so a hung worker is still
//! distinguishable from a merely slow fault once enough faults have
//! completed to establish "slow".

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use anasim::metrics::SolverSnapshot;
use anasim::robust::SolveBudget;
use obs::chaos::FaultPlan;
use obs::journal::{JournalOptions, JournalWriter, RetryPolicy};
use obs::json::JsonValue;
use obs::profile::{Phase, PhaseSnapshot};
use obs::status::{self, CampaignStatus, WorkerLane};
use obs::timeseries::WindowedCounter;

/// Live-telemetry configuration for a campaign
/// ([`CampaignConfig::telemetry`](crate::campaign::CampaignConfig)).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Directory receiving `status.json` and `heartbeats.jsonl`
    /// (created if missing).
    pub dir: PathBuf,
    /// How often the status snapshot is rewritten (default 250 ms).
    pub interval: Duration,
    /// A lane whose heartbeat age exceeds this multiple of the
    /// per-fault wall budget (or, without one, of the average observed
    /// fault duration) while a fault is in flight is flagged stalled
    /// (default 4.0).
    pub stall_factor: f64,
    /// Retry policy for heartbeat appends (default: the journal
    /// default). Exhausted retries disable the heartbeat writer rather
    /// than failing the campaign.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection plan wrapped around the heartbeat
    /// file (chaos testing). Strictly opt-in, like
    /// [`JournalConfig::chaos`](crate::campaign::JournalConfig).
    pub chaos: Option<FaultPlan>,
}

impl TelemetryConfig {
    /// Default snapshot interval.
    pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(250);

    /// Default stall multiple.
    pub const DEFAULT_STALL_FACTOR: f64 = 4.0;

    /// Telemetry into `dir` with default interval and stall policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TelemetryConfig {
            dir: dir.into(),
            interval: Self::DEFAULT_INTERVAL,
            stall_factor: Self::DEFAULT_STALL_FACTOR,
            retry: RetryPolicy::default(),
            chaos: None,
        }
    }

    /// Replaces the snapshot interval.
    #[must_use]
    pub fn interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Replaces the stall multiple.
    #[must_use]
    pub fn stall_factor(mut self, factor: f64) -> Self {
        self.stall_factor = factor.max(1.0);
        self
    }

    /// Replaces the heartbeat-append retry policy.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a deterministic fault-injection plan on the heartbeat
    /// file (chaos testing).
    #[must_use]
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Path of the status snapshot inside the telemetry directory.
    pub fn status_path(&self) -> PathBuf {
        self.dir.join(status::STATUS_FILE)
    }

    /// Path of the heartbeat sidecar inside the telemetry directory.
    pub fn heartbeat_path(&self) -> PathBuf {
        self.dir.join(status::HEARTBEAT_FILE)
    }
}

/// Builds one heartbeat record. The shape mirrors campaign-journal
/// records (a `record` discriminator plus a label) so journal tooling
/// that stumbles on a heartbeat file fails soft, but heartbeats live in
/// their own sidecar and never enter the canonical journal.
///
/// `completed` is the campaign-global done count at the time of the
/// beat (a progress stamp), *not* the emitting lane's own tally —
/// per-lane completion is recovered by counting `done` events per lane
/// (see `bench`'s heartbeat overlay).
pub fn heartbeat_record(
    label: &str,
    lane: usize,
    event: &str,
    fault: Option<(usize, &str)>,
    completed: usize,
    t_ms: f64,
) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("record", JsonValue::Str("heartbeat".into()));
    obj.push("label", JsonValue::Str(label.into()));
    obj.push("lane", JsonValue::Num(lane as f64));
    obj.push("event", JsonValue::Str(event.into()));
    obj.push(
        "fault",
        fault.map_or(JsonValue::Null, |(i, _)| JsonValue::Num(i as f64)),
    );
    obj.push(
        "name",
        fault.map_or(JsonValue::Null, |(_, n)| JsonValue::Str(n.into())),
    );
    obj.push("completed", JsonValue::Num(completed as f64));
    obj.push("t_ms", JsonValue::Num(t_ms));
    obj
}

/// One worker lane's live state.
#[derive(Debug)]
struct LaneState {
    /// The fault in flight: universe index, name, claim instant.
    current: Option<(usize, String, Instant)>,
    /// Last heartbeat-worthy event on this lane.
    last_beat: Instant,
    /// Faults completed by this lane.
    completed: usize,
    /// Phase rollup of this lane's completed faults (profiling armed
    /// only).
    phases: PhaseSnapshot,
}

/// Rate/emission state mutated only under one lock.
struct EmitState {
    throughput: WindowedCounter,
    last_emit: Instant,
}

/// Folds live campaign state into the status snapshot and heartbeat
/// sidecar. Shared by reference between worker threads (claim/done
/// events) and the monitor thread (periodic emission); every method is
/// `&self`.
///
/// Lock order: `emit` strictly before any lane lock (`snapshot_locked`
/// holds `emit` while visiting every lane). Nothing may acquire `emit`
/// while holding a lane lock — that inversion deadlocks the monitor
/// thread against a finishing worker. Cross-lock counters that worker
/// events update under a lane lock ([`StatusEmitter::fault_wall_ns`])
/// are atomics for exactly that reason.
pub struct StatusEmitter {
    config: TelemetryConfig,
    label: String,
    journal: Option<String>,
    total: usize,
    replayed: usize,
    epoch: Instant,
    budget_wall: Option<Duration>,
    lanes: Vec<Mutex<LaneState>>,
    done: AtomicUsize,
    detected: AtomicUsize,
    undetected: AtomicUsize,
    failed: AtomicUsize,
    /// Sum of completed-fault wall time in nanoseconds, for the
    /// budget-less stall fallback. Atomic (not part of [`EmitState`])
    /// because workers add to it while holding their lane lock.
    fault_wall_ns: AtomicU64,
    solver: Mutex<SolverSnapshot>,
    heartbeats: Mutex<Option<JournalWriter>>,
    heartbeat_drops: AtomicU64,
    status_drops: AtomicU64,
    emit: Mutex<EmitState>,
    finished: AtomicBool,
}

impl StatusEmitter {
    /// Arms telemetry: creates the directory, truncates the heartbeat
    /// sidecar, seeds counters with the replayed rollup and writes the
    /// first snapshot. Failures are absorbed (a dead telemetry
    /// directory must not kill the campaign): a failed heartbeat open
    /// leaves heartbeats disabled, a failed snapshot is counted.
    #[allow(clippy::too_many_arguments)]
    pub fn arm(
        config: TelemetryConfig,
        label: &str,
        journal: Option<&Path>,
        total: usize,
        workers: usize,
        replayed: (usize, usize, usize),
        budget: SolveBudget,
    ) -> Self {
        let _ = std::fs::create_dir_all(&config.dir);
        let now = Instant::now();
        let heartbeats = JournalWriter::create_with(
            &config.heartbeat_path(),
            JournalOptions {
                retry: config.retry.clone(),
                chaos: config.chaos.clone(),
            },
        )
        .ok();
        let (detected, undetected, failed) = replayed;
        let replayed_total = detected + undetected + failed;
        let emitter = StatusEmitter {
            label: label.to_owned(),
            journal: journal.map(|p| p.to_string_lossy().into_owned()),
            total,
            replayed: replayed_total,
            epoch: now,
            budget_wall: budget.max_wall,
            lanes: (0..workers.max(1))
                .map(|_| {
                    Mutex::new(LaneState {
                        current: None,
                        last_beat: now,
                        completed: 0,
                        phases: PhaseSnapshot::default(),
                    })
                })
                .collect(),
            done: AtomicUsize::new(replayed_total),
            detected: AtomicUsize::new(detected),
            undetected: AtomicUsize::new(undetected),
            failed: AtomicUsize::new(failed),
            fault_wall_ns: AtomicU64::new(0),
            solver: Mutex::new(SolverSnapshot::default()),
            heartbeats: Mutex::new(heartbeats),
            heartbeat_drops: AtomicU64::new(0),
            status_drops: AtomicU64::new(0),
            emit: Mutex::new(EmitState {
                throughput: WindowedCounter::new(),
                last_emit: now,
            }),
            finished: AtomicBool::new(false),
            config,
        };
        emitter.beat(0, "armed", None);
        emitter.emit_now("running");
        emitter
    }

    /// Elapsed milliseconds since the campaign epoch.
    fn elapsed_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }

    /// Appends one heartbeat record, best-effort. A persistent append
    /// failure disables the writer: telemetry must never become the
    /// slowest (or loudest) part of a campaign.
    fn beat(&self, lane: usize, event: &str, fault: Option<(usize, &str)>) {
        let completed = self.done.load(Ordering::Acquire);
        let record =
            heartbeat_record(&self.label, lane, event, fault, completed, self.elapsed_ms());
        let mut guard = self.heartbeats.lock().expect("heartbeat lock");
        if let Some(writer) = guard.as_mut() {
            if writer.append(&record).is_err() {
                self.heartbeat_drops.fetch_add(1, Ordering::AcqRel);
                *guard = None;
            }
        } else {
            self.heartbeat_drops.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// A worker claimed fault `index`.
    pub fn fault_claimed(&self, lane: usize, index: usize, name: &str) {
        let now = Instant::now();
        {
            let mut state = self.lanes[lane].lock().expect("lane lock");
            state.current = Some((index, name.to_owned(), now));
            state.last_beat = now;
        }
        self.beat(lane, "claim", Some((index, name)));
    }

    /// A worker abandoned its in-flight fault (cancellation): the lane
    /// is released without counting an outcome, so terminal snapshots
    /// show it idle rather than eternally mid-fault.
    pub fn fault_abandoned(&self, lane: usize) {
        {
            let mut state = self.lanes[lane].lock().expect("lane lock");
            state.current = None;
            state.last_beat = Instant::now();
        }
        self.beat(lane, "abandon", None);
    }

    /// A worker finished fault `index` with the given status tag
    /// (`FaultStatus::tag`) and solver counters.
    pub fn fault_done(
        &self,
        lane: usize,
        index: usize,
        name: &str,
        status_tag: &str,
        solver: &SolverSnapshot,
    ) {
        let now = Instant::now();
        {
            let mut state = self.lanes[lane].lock().expect("lane lock");
            if let Some((_, _, claimed)) = state.current.take() {
                // Atomic, not the emit lock: taking emit here while
                // holding the lane lock would invert the emit→lane
                // order snapshot_locked relies on and deadlock against
                // the monitor thread.
                let wall = now.saturating_duration_since(claimed);
                self.fault_wall_ns
                    .fetch_add(wall.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::AcqRel);
            }
            state.last_beat = now;
            state.completed += 1;
            state.phases += solver.phases;
        }
        self.done.fetch_add(1, Ordering::AcqRel);
        match status_tag {
            "detected" => self.detected.fetch_add(1, Ordering::AcqRel),
            "undetected" => self.undetected.fetch_add(1, Ordering::AcqRel),
            _ => self.failed.fetch_add(1, Ordering::AcqRel),
        };
        *self.solver.lock().expect("solver lock") += *solver;
        self.beat(lane, "done", Some((index, name)));
    }

    /// The stall threshold in milliseconds: `stall_factor` × the wall
    /// budget when one is configured, else `stall_factor` × the average
    /// observed fault duration (floored at 1 s), else `None` before any
    /// fault completed.
    fn stall_after_ms(&self) -> Option<f64> {
        if let Some(wall) = self.budget_wall {
            return Some(self.config.stall_factor * wall.as_secs_f64() * 1e3);
        }
        let fresh = self.done.load(Ordering::Acquire).saturating_sub(self.replayed);
        if fresh == 0 {
            return None;
        }
        let avg_ms = self.fault_wall_ns.load(Ordering::Acquire) as f64 / 1e6 / fresh as f64;
        Some(self.config.stall_factor * avg_ms.max(1e3))
    }

    /// Builds the current snapshot without writing it.
    pub fn snapshot(&self, state: &str) -> CampaignStatus {
        let mut emit = self.emit.lock().expect("emit lock");
        self.snapshot_locked(state, &mut emit)
    }

    fn snapshot_locked(&self, state: &str, emit: &mut EmitState) -> CampaignStatus {
        let elapsed_ms = self.elapsed_ms();
        let done = self.done.load(Ordering::Acquire);
        emit.throughput.observe(elapsed_ms, done as f64);
        // The windowed rate counts replayed faults as instantaneous
        // progress at arm time; past the first interval the window
        // reflects only real simulation throughput.
        let rate = emit.throughput.rate_per_sec().unwrap_or(0.0).max(0.0);
        let ewma = emit.throughput.ewma_per_sec().unwrap_or(rate).max(0.0);
        let remaining = self.total.saturating_sub(done);
        let eta_ms = if remaining == 0 {
            Some(0.0)
        } else {
            let best = ewma.max(rate);
            (best > 0.0).then(|| remaining as f64 / best * 1e3)
        };
        let stall_after_ms = self.stall_after_ms();
        let workers = self
            .lanes
            .iter()
            .enumerate()
            .map(|(lane, state)| {
                let state = state.lock().expect("lane lock");
                let busy_ms = state
                    .current
                    .as_ref()
                    .map_or(0.0, |(_, _, claimed)| claimed.elapsed().as_secs_f64() * 1e3);
                let age_ms = state.last_beat.elapsed().as_secs_f64() * 1e3;
                let stalled = state.current.is_some()
                    && stall_after_ms.is_some_and(|limit| age_ms > limit);
                let hot_phase = Phase::ALL
                    .iter()
                    .copied()
                    .max_by_key(|&p| state.phases.ns(p))
                    .filter(|&p| state.phases.ns(p) > 0)
                    .map(|p| p.label().to_owned());
                WorkerLane {
                    lane: lane as u64,
                    fault: state.current.as_ref().map(|(i, _, _)| *i as u64),
                    fault_name: state.current.as_ref().map(|(_, n, _)| n.clone()),
                    busy_ms,
                    heartbeat_age_ms: age_ms,
                    completed: state.completed as u64,
                    stalled,
                    hot_phase,
                }
            })
            .collect();
        let solver = *self.solver.lock().expect("solver lock");
        let mut counters: Vec<(String, u64)> = SolverSnapshot::FIELDS
            .iter()
            .zip(solver.as_array())
            .map(|(name, value)| ((*name).to_owned(), value))
            .collect();
        counters.push((
            "heartbeat_drops".into(),
            self.heartbeat_drops.load(Ordering::Acquire),
        ));
        counters.push((
            "status_drops".into(),
            self.status_drops.load(Ordering::Acquire),
        ));
        let phases = Phase::ALL
            .iter()
            .filter(|&&p| solver.phases.calls(p) > 0 || solver.phases.ns(p) > 0)
            .map(|&p| (p.label().to_owned(), solver.phases.ns(p), solver.phases.calls(p)))
            .collect();
        CampaignStatus {
            label: self.label.clone(),
            state: state.to_owned(),
            total: self.total as u64,
            done: done as u64,
            replayed: self.replayed as u64,
            detected: self.detected.load(Ordering::Acquire) as u64,
            undetected: self.undetected.load(Ordering::Acquire) as u64,
            failed: self.failed.load(Ordering::Acquire) as u64,
            elapsed_ms,
            faults_per_sec: rate,
            ewma_faults_per_sec: ewma,
            eta_ms,
            counters,
            phases,
            workers,
            journal: self.journal.clone(),
            stall_after_ms,
            updated_at_ms: unix_ms(),
        }
    }

    /// Folds and writes one snapshot now, best-effort.
    fn emit_now(&self, state: &str) {
        let status = {
            let mut emit = self.emit.lock().expect("emit lock");
            let status = self.snapshot_locked(state, &mut emit);
            emit.last_emit = Instant::now();
            status
        };
        if status::write_atomic(&self.config.status_path(), &status).is_err() {
            self.status_drops.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The monitor loop: rewrites the snapshot every
    /// [`TelemetryConfig::interval`] until [`StatusEmitter::finish`].
    /// Runs on its own (scoped) thread; sleeps in short increments so
    /// shutdown latency stays bounded regardless of the interval.
    pub fn monitor(&self) {
        const TICK: Duration = Duration::from_millis(10);
        while !self.finished.load(Ordering::Acquire) {
            std::thread::sleep(TICK.min(self.config.interval));
            let due = {
                let emit = self.emit.lock().expect("emit lock");
                emit.last_emit.elapsed() >= self.config.interval
            };
            if due && !self.finished.load(Ordering::Acquire) {
                self.emit_now("running");
            }
        }
    }

    /// Stops the monitor loop (the terminal snapshot is written
    /// separately via [`StatusEmitter::emit_terminal`], after the
    /// campaign's outcome is known).
    pub fn finish(&self) {
        self.finished.store(true, Ordering::Release);
    }

    /// Writes the terminal snapshot (`complete`, `cancelled` or
    /// `aborted`) and the closing heartbeat.
    pub fn emit_terminal(&self, state: &str) {
        self.finish();
        self.beat(0, state, None);
        self.emit_now(state);
    }

    /// Heartbeat records dropped (write failures after the writer was
    /// disabled included).
    pub fn heartbeat_drops(&self) -> u64 {
        self.heartbeat_drops.load(Ordering::Acquire)
    }

    /// Status snapshots that failed to write.
    pub fn status_drops(&self) -> u64 {
        self.status_drops.load(Ordering::Acquire)
    }
}

/// Unix time in milliseconds (telemetry freshness only — never
/// canonical).
fn unix_ms() -> f64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("faultsim-telemetry-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn armed(dir: &Path, budget: SolveBudget) -> StatusEmitter {
        StatusEmitter::arm(
            TelemetryConfig::new(dir),
            "unit.test",
            Some(Path::new("unit.jsonl")),
            4,
            2,
            (1, 0, 0),
            budget,
        )
    }

    #[test]
    fn arm_writes_an_initial_snapshot_and_heartbeat() {
        let dir = temp_dir("arm");
        let emitter = armed(&dir, SolveBudget::unlimited());
        let status = status::read_status(&emitter.config.status_path())
            .unwrap()
            .expect("initial snapshot");
        assert_eq!(status.label, "unit.test");
        assert_eq!(status.state, "running");
        assert_eq!(status.total, 4);
        assert_eq!(status.done, 1, "replayed faults count as done");
        assert_eq!(status.replayed, 1);
        assert_eq!(status.workers.len(), 2);
        assert_eq!(status.journal.as_deref(), Some("unit.jsonl"));
        let beats = obs::journal::read_journal(&emitter.config.heartbeat_path()).unwrap();
        assert_eq!(beats.records.len(), 1);
        assert_eq!(
            beats.records[0].get("event").and_then(JsonValue::as_str),
            Some("armed")
        );
    }

    #[test]
    fn claim_and_done_update_lanes_and_rollup() {
        let dir = temp_dir("claims");
        let emitter = armed(&dir, SolveBudget::unlimited());
        emitter.fault_claimed(1, 2, "b-sa0");
        let status = emitter.snapshot("running");
        assert_eq!(status.workers[1].fault, Some(2));
        assert_eq!(status.workers[1].fault_name.as_deref(), Some("b-sa0"));
        let solver = SolverSnapshot {
            newton_iterations: 7,
            ..SolverSnapshot::default()
        };
        emitter.fault_done(1, 2, "b-sa0", "detected", &solver);
        emitter.fault_claimed(0, 3, "b-sa1");
        emitter.fault_done(0, 3, "b-sa1", "sim-failed", &solver);
        let status = emitter.snapshot("running");
        assert_eq!(status.done, 3);
        assert_eq!(status.detected, 2);
        assert_eq!(status.failed, 1);
        assert_eq!(status.workers[1].completed, 1);
        assert_eq!(status.workers[1].fault, None, "done clears the lane");
        let newton = status
            .counters
            .iter()
            .find(|(n, _)| n == "newton_iterations")
            .unwrap()
            .1;
        assert_eq!(newton, 14);
        // Five heartbeats: armed + claim + done + claim + done.
        let beats = obs::journal::read_journal(&emitter.config.heartbeat_path()).unwrap();
        assert_eq!(beats.records.len(), 5);
    }

    #[test]
    fn stall_flag_uses_the_wall_budget_multiple() {
        let dir = temp_dir("stall");
        let budget = SolveBudget::unlimited().wall(Duration::from_millis(5));
        let emitter = armed(&dir, budget);
        emitter.fault_claimed(0, 1, "c-sa0");
        // stall_after = 4 × 5 ms; an in-flight fault older than that is
        // stalled, while the idle lane never is.
        std::thread::sleep(Duration::from_millis(40));
        let status = emitter.snapshot("running");
        assert_eq!(status.stall_after_ms, Some(20.0));
        assert!(status.workers[0].stalled, "{status:?}");
        assert!(!status.workers[1].stalled, "idle lane cannot stall");
    }

    #[test]
    fn without_a_budget_stall_needs_observed_faults() {
        let dir = temp_dir("stall-adaptive");
        let emitter = armed(&dir, SolveBudget::unlimited());
        emitter.fault_claimed(0, 1, "c-sa0");
        let status = emitter.snapshot("running");
        assert_eq!(status.stall_after_ms, None, "no budget, nothing observed");
        assert!(!status.workers[0].stalled);
        emitter.fault_done(0, 1, "c-sa0", "detected", &SolverSnapshot::default());
        let status = emitter.snapshot("running");
        // One observed fault establishes the adaptive threshold, with
        // the 1 s floor dominating this fast unit test.
        assert_eq!(status.stall_after_ms, Some(4000.0));
    }

    #[test]
    fn heartbeat_write_failures_disable_the_writer_and_count_drops() {
        let dir = temp_dir("hb-chaos");
        let plan = FaultPlan::parse("write@0..").unwrap();
        let config = TelemetryConfig::new(&dir)
            .retry(RetryPolicy::none())
            .chaos(plan);
        let emitter = StatusEmitter::arm(
            config,
            "unit.test",
            None,
            2,
            1,
            (0, 0, 0),
            SolveBudget::unlimited(),
        );
        // The armed beat hit the injected fault and disabled the
        // writer; subsequent beats are counted as drops without
        // touching it again.
        emitter.fault_claimed(0, 0, "b-sa0");
        emitter.fault_done(0, 0, "b-sa0", "detected", &SolverSnapshot::default());
        assert_eq!(emitter.heartbeat_drops(), 3);
        // The campaign-facing API never surfaced an error, and the
        // status snapshot still works and reports the drops (terminal
        // beat included).
        emitter.emit_terminal("complete");
        let status = status::read_status(&emitter.config.status_path())
            .unwrap()
            .unwrap();
        let drops = status
            .counters
            .iter()
            .find(|(n, _)| n == "heartbeat_drops")
            .unwrap()
            .1;
        assert_eq!(drops, 4);
    }

    #[test]
    fn status_write_failures_are_counted_not_fatal() {
        let dir = temp_dir("status-chaos");
        let emitter = armed(&dir, SolveBudget::unlimited());
        // Make the status path unwritable by replacing it with a
        // directory: the rename target stays invalid from here on.
        let path = emitter.config.status_path();
        let _ = std::fs::remove_file(&path);
        std::fs::create_dir_all(&path).unwrap();
        emitter.emit_terminal("complete");
        assert_eq!(emitter.status_drops(), 1);
    }

    #[test]
    fn terminal_snapshot_carries_the_final_state() {
        let dir = temp_dir("terminal");
        let emitter = armed(&dir, SolveBudget::unlimited());
        emitter.emit_terminal("cancelled");
        let status = status::read_status(&emitter.config.status_path())
            .unwrap()
            .unwrap();
        assert_eq!(status.state, "cancelled");
        assert!(status.is_terminal());
        let beats = obs::journal::read_journal(&emitter.config.heartbeat_path()).unwrap();
        let last = beats.records.last().unwrap();
        assert_eq!(last.get("event").and_then(JsonValue::as_str), Some("cancelled"));
    }
}
