//! Fault dictionaries: signature-based fault diagnosis.
//!
//! A campaign's golden and per-fault signatures form a dictionary; an
//! unknown device's observed signature is classified by nearest
//! neighbour. This closes the loop the paper opens with "providing
//! faulty chip diagnosis at a functional macro level": the transient
//! signature does not only *detect* a fault, it points at *which* one.

use crate::campaign::CampaignReport;

/// A signature dictionary built from a fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDictionary {
    golden: Vec<f64>,
    entries: Vec<(String, Vec<f64>)>,
}

/// Outcome of classifying an observed signature.
#[derive(Debug, Clone, PartialEq)]
pub enum Classification {
    /// The observation is closest to the fault-free signature.
    FaultFree {
        /// RMS distance to the golden signature.
        distance: f64,
    },
    /// The observation is closest to a dictionary fault.
    Fault {
        /// Name of the matched fault.
        name: String,
        /// RMS distance to that fault's signature.
        distance: f64,
        /// RMS distance to the golden signature, for confidence
        /// assessment.
        golden_distance: f64,
    },
}

impl Classification {
    /// The matched fault name, if any.
    pub fn fault_name(&self) -> Option<&str> {
        match self {
            Classification::Fault { name, .. } => Some(name),
            Classification::FaultFree { .. } => None,
        }
    }
}

fn rms_distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return f64::INFINITY;
    }
    (a[..n]
        .iter()
        .zip(&b[..n])
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        / n as f64)
        .sqrt()
}

impl FaultDictionary {
    /// Builds a dictionary from a campaign report, keeping only faults
    /// whose simulation succeeded.
    pub fn from_campaign(report: &CampaignReport) -> Self {
        let entries = report
            .outcomes
            .iter()
            .filter_map(|o| {
                o.signature
                    .as_ref()
                    .map(|sig| (o.fault.name().to_string(), sig.clone()))
            })
            .collect();
        FaultDictionary {
            golden: report.golden.clone(),
            entries,
        }
    }

    /// Number of fault entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the dictionary holds no fault entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fault names in dictionary order.
    pub fn fault_names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Classifies an observed signature by nearest RMS distance among
    /// the golden signature and every dictionary entry.
    pub fn classify(&self, observed: &[f64]) -> Classification {
        let golden_distance = rms_distance(observed, &self.golden);
        let mut best: Option<(&str, f64)> = None;
        for (name, sig) in &self.entries {
            let d = rms_distance(observed, sig);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((name, d));
            }
        }
        match best {
            Some((name, distance)) if distance < golden_distance => Classification::Fault {
                name: name.to_string(),
                distance,
                golden_distance,
            },
            _ => Classification::FaultFree {
                distance: golden_distance,
            },
        }
    }

    /// Self-consistency check: classifies each dictionary entry against
    /// the dictionary and returns the fraction that map back to
    /// themselves (ambiguous faults with identical signatures reduce
    /// this).
    pub fn self_consistency(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        let hits = self
            .entries
            .iter()
            .filter(|(name, sig)| self.classify(sig).fault_name() == Some(name))
            .count();
        hits as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::model::Fault;
    use anasim::dc::dc_operating_point;
    use anasim::netlist::Netlist;
    use anasim::source::SourceWaveform;

    /// A 3-node divider whose signature is the two interior node
    /// voltages.
    fn fixture() -> (Netlist, Vec<Fault>) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(6.0));
        nl.resistor("R1", a, b, 10e3);
        nl.resistor("R2", b, c, 10e3);
        nl.resistor("R3", c, Netlist::GROUND, 10e3);
        let faults = vec![
            Fault::stuck_at_0("b-sa0", b),
            Fault::stuck_at_1("b-sa1", b),
            Fault::stuck_at_0("c-sa0", c),
            Fault::stuck_at_1("c-sa1", c),
        ];
        (nl, faults)
    }

    fn extract(nl: &Netlist) -> Result<Vec<f64>, anasim::AnalysisError> {
        let b = nl.find_node("b").expect("node b");
        let c = nl.find_node("c").expect("node c");
        let op = dc_operating_point(nl)?;
        Ok(vec![op.voltage(b), op.voltage(c)])
    }

    #[test]
    fn dictionary_classifies_its_own_faults() {
        let (nl, faults) = fixture();
        let report = run_campaign(&nl, &faults, 0.1, extract).unwrap();
        let dict = FaultDictionary::from_campaign(&report);
        assert_eq!(dict.len(), 4);
        assert_eq!(dict.self_consistency(), 1.0);
    }

    #[test]
    fn golden_observation_classifies_fault_free() {
        let (nl, faults) = fixture();
        let report = run_campaign(&nl, &faults, 0.1, extract).unwrap();
        let dict = FaultDictionary::from_campaign(&report);
        let obs = extract(&nl).unwrap();
        assert!(matches!(
            dict.classify(&obs),
            Classification::FaultFree { .. }
        ));
    }

    #[test]
    fn perturbed_fault_still_classifies_correctly() {
        let (nl, faults) = fixture();
        let report = run_campaign(&nl, &faults, 0.1, extract).unwrap();
        let dict = FaultDictionary::from_campaign(&report);
        // Observe b-sa1 with a little measurement noise.
        let faulty = crate::inject::inject(&nl, &faults[1]);
        let mut obs = extract(&faulty).unwrap();
        obs[0] += 0.05;
        obs[1] -= 0.03;
        let c = dict.classify(&obs);
        assert_eq!(c.fault_name(), Some("b-sa1"), "{c:?}");
    }

    #[test]
    fn empty_dictionary_reports_fault_free() {
        let (nl, _) = fixture();
        let report = run_campaign(&nl, &[], 0.1, extract).unwrap();
        let dict = FaultDictionary::from_campaign(&report);
        assert!(dict.is_empty());
        let obs = extract(&nl).unwrap();
        assert!(matches!(
            dict.classify(&obs),
            Classification::FaultFree { .. }
        ));
    }
}
