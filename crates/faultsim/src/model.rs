//! Fault taxonomy.

use anasim::netlist::{DeviceId, NodeId};

/// The kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Node clamped to 0 V through a low impedance (the paper's
    /// "stuck-at-0 fault signal" voltage generator).
    StuckAt0 {
        /// Affected node.
        node: NodeId,
    },
    /// Node clamped to the fault rail voltage (5 V in the paper) through
    /// a low impedance.
    StuckAt1 {
        /// Affected node.
        node: NodeId,
    },
    /// Resistive bridge between two nodes (the paper's double faults
    /// "approximated to bridging faults across the MOS transistors").
    Bridge {
        /// First bridged node.
        a: NodeId,
        /// Second bridged node.
        b: NodeId,
    },
    /// Two simultaneous stuck-at faults of the same polarity — the
    /// paper's "double faults", injected as two voltage generators, that
    /// approximate a bridge through a common rail.
    DoubleStuck {
        /// First affected node.
        a: NodeId,
        /// Second affected node.
        b: NodeId,
        /// Polarity: `true` = both stuck at the rail, `false` = both
        /// stuck at 0 V.
        high: bool,
    },
    /// A parametric (soft) fault: one device's parameter drifts instead
    /// of a node being clamped. These model the degradation mechanisms
    /// — element mismatch, threshold shift — behind out-of-spec parts
    /// that still function.
    Parametric {
        /// The drifted device.
        device: DeviceId,
        /// What changed and by how much.
        change: ParamChange,
    },
}

/// A device-parameter drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamChange {
    /// Multiply a resistor's value.
    ScaleResistor(f64),
    /// Multiply a capacitor's value.
    ScaleCapacitor(f64),
    /// Multiply a MOSFET's transconductance factor.
    ScaleBeta(f64),
    /// Shift a MOSFET's threshold voltage (volts).
    ShiftVt(f64),
}

/// A named fault instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    name: String,
    kind: FaultKind,
    /// Clamp/bridge impedance in ohms.
    impedance: f64,
    /// Rail voltage for stuck-at-1.
    rail: f64,
}

impl Fault {
    /// Default clamp/bridge impedance: strong enough to dominate the
    /// node, weak enough to avoid numerically degenerate loops.
    pub const DEFAULT_IMPEDANCE: f64 = 100.0;

    /// Default stuck-at-1 rail (the paper's 5 V supply).
    pub const DEFAULT_RAIL: f64 = 5.0;

    /// Creates a stuck-at-0 fault on `node`.
    pub fn stuck_at_0(name: &str, node: NodeId) -> Self {
        Fault {
            name: name.to_string(),
            kind: FaultKind::StuckAt0 { node },
            impedance: Self::DEFAULT_IMPEDANCE,
            rail: Self::DEFAULT_RAIL,
        }
    }

    /// Creates a stuck-at-1 fault on `node`.
    pub fn stuck_at_1(name: &str, node: NodeId) -> Self {
        Fault {
            name: name.to_string(),
            kind: FaultKind::StuckAt1 { node },
            impedance: Self::DEFAULT_IMPEDANCE,
            rail: Self::DEFAULT_RAIL,
        }
    }

    /// Creates a bridging fault between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn bridge(name: &str, a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "bridge endpoints must differ");
        Fault {
            name: name.to_string(),
            kind: FaultKind::Bridge { a, b },
            impedance: Self::DEFAULT_IMPEDANCE,
            rail: Self::DEFAULT_RAIL,
        }
    }

    /// Creates a parametric fault drifting one device's parameter.
    pub fn parametric(name: &str, device: DeviceId, change: ParamChange) -> Self {
        Fault {
            name: name.to_string(),
            kind: FaultKind::Parametric { device, change },
            impedance: Self::DEFAULT_IMPEDANCE,
            rail: Self::DEFAULT_RAIL,
        }
    }

    /// Creates a same-polarity double stuck-at fault on `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn double_stuck(name: &str, a: NodeId, b: NodeId, high: bool) -> Self {
        assert_ne!(a, b, "double-stuck endpoints must differ");
        Fault {
            name: name.to_string(),
            kind: FaultKind::DoubleStuck { a, b, high },
            impedance: Self::DEFAULT_IMPEDANCE,
            rail: Self::DEFAULT_RAIL,
        }
    }

    /// Overrides the clamp/bridge impedance.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not finite and positive.
    pub fn with_impedance(mut self, ohms: f64) -> Self {
        assert!(ohms.is_finite() && ohms > 0.0, "impedance must be positive");
        self.impedance = ohms;
        self
    }

    /// Overrides the stuck-at-1 rail voltage.
    pub fn with_rail(mut self, volts: f64) -> Self {
        self.rail = volts;
        self
    }

    /// Fault name (used in reports and injected element names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fault kind.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Clamp/bridge impedance in ohms.
    pub fn impedance(&self) -> f64 {
        self.impedance
    }

    /// Stuck-at-1 rail voltage.
    pub fn rail(&self) -> f64 {
        self.rail
    }

    /// True for single-node (stuck-at) faults.
    pub fn is_single(&self) -> bool {
        !matches!(
            self.kind,
            FaultKind::Bridge { .. }
                | FaultKind::DoubleStuck { .. }
                | FaultKind::Parametric { .. }
        )
    }

    /// True for parametric (soft) faults.
    pub fn is_parametric(&self) -> bool {
        matches!(self.kind, FaultKind::Parametric { .. })
    }
}

/// A paper-numbered node pair, as used by the bridge and double-fault
/// universes.
pub type LabelledPair = ((u8, NodeId), (u8, NodeId));

/// Builds the paper's double-fault set for node pairs: both-stuck-at-0
/// and both-stuck-at-1 per pair (2 faults per pair; circuit 1's three
/// pairs give the 6 double faults that complete its 16 faulty circuits).
pub fn double_stuck_universe(pairs: &[LabelledPair]) -> Vec<Fault> {
    let mut out = Vec::with_capacity(pairs.len() * 2);
    for &((la, a), (lb, b)) in pairs {
        out.push(Fault::double_stuck(
            &format!("n{la}-n{lb}-dsa0"),
            a,
            b,
            false,
        ));
        out.push(Fault::double_stuck(&format!("n{la}-n{lb}-dsa1"), a, b, true));
    }
    out
}

/// Builds the paper's standard single-fault set for a node list: a
/// stuck-at-0 and a stuck-at-1 on each `(label, node)` pair.
pub fn stuck_at_universe(nodes: &[(u8, NodeId)]) -> Vec<Fault> {
    let mut out = Vec::with_capacity(nodes.len() * 2);
    for &(label, node) in nodes {
        out.push(Fault::stuck_at_0(&format!("n{label}-sa0"), node));
        out.push(Fault::stuck_at_1(&format!("n{label}-sa1"), node));
    }
    out
}

/// Builds bridge faults for `(a, b)` node pairs labelled with paper node
/// numbers.
pub fn bridge_universe(pairs: &[LabelledPair]) -> Vec<Fault> {
    pairs
        .iter()
        .map(|&((la, a), (lb, b))| Fault::bridge(&format!("n{la}-n{lb}-bridge"), a, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::netlist::Netlist;

    fn two_nodes() -> (NodeId, NodeId) {
        let mut nl = Netlist::new();
        (nl.node("a"), nl.node("b"))
    }

    #[test]
    fn constructors_set_kind() {
        let (a, b) = two_nodes();
        assert!(matches!(
            Fault::stuck_at_0("f", a).kind(),
            FaultKind::StuckAt0 { .. }
        ));
        assert!(matches!(
            Fault::stuck_at_1("f", a).kind(),
            FaultKind::StuckAt1 { .. }
        ));
        assert!(matches!(
            Fault::bridge("f", a, b).kind(),
            FaultKind::Bridge { .. }
        ));
    }

    #[test]
    fn builders_override_parameters() {
        let (a, _) = two_nodes();
        let f = Fault::stuck_at_1("f", a).with_impedance(10.0).with_rail(3.3);
        assert_eq!(f.impedance(), 10.0);
        assert_eq!(f.rail(), 3.3);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn self_bridge_rejected() {
        let (a, _) = two_nodes();
        let _ = Fault::bridge("f", a, a);
    }

    #[test]
    fn stuck_at_universe_has_two_faults_per_node() {
        let (a, b) = two_nodes();
        let u = stuck_at_universe(&[(4, a), (7, b)]);
        assert_eq!(u.len(), 4);
        assert_eq!(u[0].name(), "n4-sa0");
        assert_eq!(u[3].name(), "n7-sa1");
    }

    #[test]
    fn double_stuck_universe_two_polarities_per_pair() {
        let (a, b) = two_nodes();
        let u = double_stuck_universe(&[((8, a), (9, b))]);
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].name(), "n8-n9-dsa0");
        assert_eq!(u[1].name(), "n8-n9-dsa1");
        assert!(!u[0].is_single());
    }

    #[test]
    fn bridge_universe_names_pairs() {
        let (a, b) = two_nodes();
        let u = bridge_universe(&[((5, a), (8, b))]);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].name(), "n5-n8-bridge");
        assert!(!u[0].is_single());
    }
}
