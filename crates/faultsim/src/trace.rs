//! Campaign timeline assembly: converts completed [`CampaignReport`]s
//! into Chrome Trace Event timelines ([`obs::trace`]).
//!
//! Each campaign becomes one process lane (`pid`), holding a `golden`
//! thread lane plus one thread lane per worker. Every fault renders as
//! a complete span on the lane of the worker that simulated it, placed
//! at its recorded offset from the campaign epoch
//! ([`FaultTelemetry::start`] / [`FaultTelemetry::wall`]). When the
//! campaign ran with [`CampaignConfig::profile`] armed, each fault span
//! carries synthetic sub-spans for its solver phases: phase self-times
//! are laid end-to-end from the span's start, which preserves the cost
//! *proportions* (the profiler guarantees their sum never exceeds the
//! span) without pretending to know when each phase actually ran.
//!
//! Successive campaigns are laid out sequentially along the timeline —
//! the trace of a whole experiment reads left to right in execution
//! order. Faults replayed from a checkpoint journal carry no live
//! timing (lane 0, zero offset), so a resumed campaign's replayed spans
//! pile up at its epoch; the trace is a wall-clock visualisation, not a
//! canonical artifact.
//!
//! [`CampaignConfig::profile`]: crate::campaign::CampaignConfig::profile

use obs::json::JsonValue;
use obs::profile::{Phase, PhaseSnapshot};
use obs::trace::{render_trace, TraceEvent};

use crate::campaign::CampaignReport;

#[cfg(doc)]
use crate::campaign::FaultTelemetry;

/// Thread lane reserved for the golden extraction within each
/// campaign's process; worker `w` renders on lane `w + 1`.
const GOLDEN_TID: u64 = 0;

/// Gap inserted between consecutive campaigns on the shared timeline
/// (microseconds), so adjacent campaigns stay visually distinct.
const CAMPAIGN_GAP_US: f64 = 1_000.0;

/// Accumulates campaign timelines into one Chrome-trace event list.
#[derive(Debug, Clone, Default)]
pub struct CampaignTrace {
    events: Vec<TraceEvent>,
    cursor_us: f64,
    next_pid: u64,
}

impl CampaignTrace {
    /// An empty trace.
    pub fn new() -> Self {
        CampaignTrace::default()
    }

    /// Appends one completed campaign as a new process lane, placed
    /// after every campaign already added.
    pub fn add_campaign(&mut self, name: &str, report: &CampaignReport) {
        let pid = self.next_pid;
        self.next_pid += 1;
        let base = self.cursor_us;

        self.events.push(TraceEvent::process_name(pid, name));
        self.events
            .push(TraceEvent::thread_name(GOLDEN_TID, "golden").pid(pid));

        let golden_dur = report.stats.golden_wall.as_secs_f64() * 1e6;
        self.events.push(
            TraceEvent::complete("golden", base, golden_dur, GOLDEN_TID)
                .pid(pid)
                .cat("campaign")
                .arg(
                    "newton_iterations",
                    JsonValue::Num(report.stats.golden_solver.newton_iterations as f64),
                ),
        );
        self.push_phases(pid, GOLDEN_TID, base, &report.stats.golden_solver.phases);

        let mut max_tid = GOLDEN_TID;
        for (outcome, t) in report.outcomes.iter().zip(&report.stats.per_fault) {
            let tid = t.lane as u64 + 1;
            max_tid = max_tid.max(tid);
            let ts = base + t.start.as_secs_f64() * 1e6;
            let dur = t.wall.as_secs_f64() * 1e6;
            let mut event = TraceEvent::complete(outcome.fault.name(), ts, dur, tid)
                .pid(pid)
                .cat("fault")
                .arg("status", JsonValue::Str(outcome.status.tag().into()))
                .arg("rungs_tried", JsonValue::Num(t.rungs_tried as f64))
                .arg(
                    "newton_iterations",
                    JsonValue::Num(t.solver.newton_iterations as f64),
                );
            if let Some(rung) = t.rung {
                event = event.arg("rung", JsonValue::Num(rung as f64));
            }
            self.events.push(event);
            self.push_phases(pid, tid, ts, &t.solver.phases);
        }
        for tid in (GOLDEN_TID + 1)..=max_tid {
            self.events
                .push(TraceEvent::thread_name(tid, format!("worker {}", tid - 1)).pid(pid));
        }

        let campaign_dur = report.stats.campaign_wall.as_secs_f64() * 1e6;
        self.cursor_us = base + campaign_dur.max(golden_dur) + CAMPAIGN_GAP_US;
    }

    /// Synthetic phase sub-spans: self-times laid end-to-end from the
    /// parent span's start. Their sum never exceeds the parent span
    /// (the profiler attributes self-time only), so nesting holds.
    fn push_phases(&mut self, pid: u64, tid: u64, ts: f64, phases: &PhaseSnapshot) {
        let mut cursor = ts;
        for &phase in Phase::ALL.iter() {
            let ns = phases.ns(phase);
            if ns == 0 {
                continue;
            }
            let dur = ns as f64 / 1e3;
            self.events.push(
                TraceEvent::complete(phase.label(), cursor, dur, tid)
                    .pid(pid)
                    .cat("phase")
                    .arg("calls", JsonValue::Num(phases.calls(phase) as f64)),
            );
            cursor += dur;
        }
    }

    /// The accumulated events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True when no campaign has been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of campaigns added so far.
    pub fn campaigns(&self) -> usize {
        self.next_pid as usize
    }

    /// Renders the timeline to the Trace Event Format's JSON object
    /// form (loadable by `chrome://tracing` and Perfetto).
    pub fn render(&self) -> String {
        render_trace(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign_with, CampaignConfig};
    use crate::model::Fault;
    use anasim::netlist::Netlist;
    use anasim::source::SourceWaveform;
    use anasim::transient::TransientAnalysis;

    fn rc_netlist() -> (Netlist, anasim::netlist::NodeId) {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", inp, Netlist::GROUND, SourceWaveform::step(5.0, 1e-6));
        nl.resistor("R1", inp, out, 1e3);
        nl.capacitor("C1", out, Netlist::GROUND, 1e-9);
        (nl, out)
    }

    fn extract(
        nl: &Netlist,
        settings: &anasim::robust::SolveSettings,
    ) -> Result<Vec<f64>, anasim::AnalysisError> {
        let out = nl.find_node("out").expect("node out");
        let result = TransientAnalysis::new(20e-6, 0.5e-6)
            .with_settings(settings)
            .run(nl)?;
        let w = result.voltage(out);
        Ok((0..20).map(|k| w.value_at(k as f64 * 1e-6)).collect())
    }

    fn run_profiled(workers: usize) -> CampaignReport {
        let (nl, out) = rc_netlist();
        let faults = vec![
            Fault::stuck_at_0("out-sa0", out),
            Fault::stuck_at_1("out-sa1", out),
        ];
        let config = CampaignConfig::new(0.5).workers(workers).profile(true);
        run_campaign_with(&nl, &faults, &config, extract).unwrap()
    }

    #[test]
    fn profiled_campaign_renders_a_valid_trace() {
        let report = run_profiled(1);
        // Profiling armed: the rollup reaches the telemetry.
        assert!(report.stats.golden_solver.phases.total_ns() > 0);
        for t in &report.stats.per_fault {
            assert!(
                t.solver.phases.total_ns() > 0,
                "armed fault telemetry should carry phase costs"
            );
            assert!(t.solver.phases.total_ns() <= t.wall.as_nanos() as u64);
        }

        let mut trace = CampaignTrace::new();
        trace.add_campaign("rc-demo", &report);
        assert_eq!(trace.campaigns(), 1);
        let text = trace.render();
        let n = obs::trace::validate_trace(&text).unwrap();
        assert!(n > 4, "expected golden + fault + phase spans, got {n}");
        // Fault spans and phase sub-spans are both present.
        assert!(text.contains("\"out-sa0\""));
        assert!(text.contains("\"lu_factor\""));
        assert!(text.contains("\"process_name\""));
    }

    #[test]
    fn sequential_campaigns_do_not_overlap() {
        let report = run_profiled(1);
        let mut trace = CampaignTrace::new();
        trace.add_campaign("first", &report);
        let first_end = trace.cursor_us;
        trace.add_campaign("second", &report);
        assert_eq!(trace.campaigns(), 2);
        for event in trace.events() {
            if event.pid == 1 && event.ph == 'X' {
                assert!(
                    event.ts_us >= first_end,
                    "second campaign span at {} starts before {}",
                    event.ts_us,
                    first_end
                );
            }
        }
        obs::trace::validate_trace(&trace.render()).unwrap();
    }

    #[test]
    fn disarmed_campaign_still_renders_worker_lanes() {
        let (nl, out) = rc_netlist();
        let faults = vec![Fault::stuck_at_0("out-sa0", out)];
        let config = CampaignConfig::new(0.5);
        let report = run_campaign_with(&nl, &faults, &config, extract).unwrap();
        assert!(report.stats.golden_solver.phases.is_empty());
        let mut trace = CampaignTrace::new();
        trace.add_campaign("disarmed", &report);
        let text = trace.render();
        obs::trace::validate_trace(&text).unwrap();
        assert!(text.contains("\"golden\""));
        assert!(!text.contains("\"lu_factor\""));
    }

    #[test]
    fn armed_and_disarmed_reports_share_canonical_text() {
        let (nl, out) = rc_netlist();
        let faults = vec![
            Fault::stuck_at_0("out-sa0", out),
            Fault::stuck_at_1("out-sa1", out),
        ];
        let disarmed =
            run_campaign_with(&nl, &faults, &CampaignConfig::new(0.5), extract).unwrap();
        let armed =
            run_campaign_with(&nl, &faults, &CampaignConfig::new(0.5).profile(true), extract)
                .unwrap();
        assert_eq!(disarmed.canonical_text(), armed.canonical_text());
        // Deterministic counters agree exactly; only phase wall-times
        // (non-canonical) differ.
        let d = disarmed.stats.total_solver();
        let a = armed.stats.total_solver();
        assert_eq!(d.as_array(), a.as_array());
        assert!(d.phases.is_empty() && !a.phases.is_empty());
    }
}
