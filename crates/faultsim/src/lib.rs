//! `faultsim` — analogue fault models, injection and campaigns.
//!
//! The paper introduces faults "at the transistor level using voltage
//! generators, which could produce a stuck-at-0 or stuck-at-1 fault
//! signal" on circuit nodes, plus double faults "which approximated to
//! bridging faults across the MOS transistors". This crate reproduces
//! exactly that mechanism on `anasim` netlists:
//!
//! * [`model`] — the fault taxonomy: node stuck-at-0 / stuck-at-1 clamps
//!   and two-node resistive bridges,
//! * [`inject`] — netlist transformation adding the fault hardware,
//! * [`campaign`] — golden-vs-faulty response collection and the
//!   detection-instance statistics of the paper's Figure 4,
//! * [`dictionary`] — signature-based fault classification for the
//!   paper's "faulty chip diagnosis at a functional macro level",
//! * [`journal`] — the `mixsig.campaign-journal/1` checkpoint format:
//!   campaigns journal every completed fault to an append-only JSONL
//!   file and [`campaign::run_campaign_resumed`] replays it, so a
//!   killed or cancelled campaign resumes instead of restarting,
//! * [`trace`] — Chrome Trace Event timelines of completed campaigns:
//!   worker lanes, per-fault spans and (with
//!   [`campaign::CampaignConfig::profile`] armed) solver phase
//!   sub-spans, loadable by `chrome://tracing` / Perfetto,
//! * [`telemetry`] — live campaign telemetry: per-worker heartbeat
//!   records, periodically rewritten `mixsig.campaign-status/1`
//!   snapshots (`experiments watch` tails them) and stall detection,
//!   all advisory and fully outside the canonical byte-stable path.
//!
//! # Example
//!
//! ```
//! use anasim::netlist::Netlist;
//! use anasim::source::SourceWaveform;
//! use faultsim::model::Fault;
//! use faultsim::inject::inject;
//!
//! # fn main() -> Result<(), anasim::AnalysisError> {
//! let mut nl = Netlist::new();
//! let a = nl.node("a");
//! nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
//! let b = nl.node("b");
//! nl.resistor("R1", a, b, 1e3);
//! nl.resistor("R2", b, Netlist::GROUND, 1e3);
//!
//! let faulty = inject(&nl, &Fault::stuck_at_0("b-sa0", b));
//! let op = anasim::dc::dc_operating_point(&faulty)?;
//! assert!(op.voltage(b) < 0.5); // clamped low by the 100 ohm generator
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod dictionary;
pub mod inject;
pub mod journal;
pub mod model;
pub mod telemetry;
pub mod trace;
