//! Fault campaigns: golden-vs-faulty response collection and detection
//! statistics.
//!
//! A campaign simulates the fault-free circuit once, then re-simulates
//! with each fault of the universe injected, extracts a response
//! signature from each run, and scores every fault with the paper's
//! detection-instance metric (the percentage of signature samples at
//! which the faulty response deviates detectably from golden — Figure 4
//! of the paper plots exactly this per faulty circuit).

use anasim::netlist::Netlist;
use anasim::AnalysisError;
use sigproc::correlation::detection_instances;

use crate::inject::inject;
use crate::model::Fault;

/// Outcome of one fault's simulation.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// The fault that was injected.
    pub fault: Fault,
    /// The extracted signature, or the analysis error that prevented it.
    pub signature: Result<Vec<f64>, AnalysisError>,
    /// Percentage (0–100) of signature instances deviating beyond the
    /// threshold. `None` if the simulation failed (counted as detected —
    /// a chip whose faulty circuit cannot reach a stable state fails
    /// test trivially).
    pub detection_pct: Option<f64>,
}

impl FaultOutcome {
    /// True if the fault is detected: either at least `min_pct` of
    /// instances deviate, or the faulty circuit failed to simulate.
    pub fn is_detected(&self, min_pct: f64) -> bool {
        match self.detection_pct {
            Some(pct) => pct >= min_pct,
            None => true,
        }
    }
}

/// Full report of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The golden (fault-free) signature.
    pub golden: Vec<f64>,
    /// One outcome per fault, in universe order.
    pub outcomes: Vec<FaultOutcome>,
    /// The deviation threshold used.
    pub threshold: f64,
}

impl CampaignReport {
    /// Fault coverage: fraction (0–1) of faults detected at the given
    /// minimum detection percentage.
    pub fn coverage(&self, min_pct: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        let detected = self
            .outcomes
            .iter()
            .filter(|o| o.is_detected(min_pct))
            .count();
        detected as f64 / self.outcomes.len() as f64
    }

    /// Detection percentages in universe order (failed simulations show
    /// as 100 %), the series plotted in the paper's Figure 4.
    pub fn detection_series(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.detection_pct.unwrap_or(100.0))
            .collect()
    }
}

/// Runs a fault campaign.
///
/// `extract` simulates a netlist and produces its response signature
/// (e.g. sampled output waveform or correlation function). The golden
/// netlist is extracted first; each fault is then injected and extracted,
/// and deviations beyond `threshold` are counted per instance.
///
/// # Errors
///
/// Returns the golden circuit's analysis error if the fault-free
/// extraction fails (per-fault failures are recorded in the report, not
/// propagated).
pub fn run_campaign<F>(
    golden: &Netlist,
    faults: &[Fault],
    threshold: f64,
    extract: F,
) -> Result<CampaignReport, AnalysisError>
where
    F: Fn(&Netlist) -> Result<Vec<f64>, AnalysisError>,
{
    let golden_sig = extract(golden)?;
    let outcomes = faults
        .iter()
        .map(|fault| {
            let faulty = inject(golden, fault);
            let signature = extract(&faulty);
            let detection_pct = match &signature {
                Ok(sig) if sig.len() == golden_sig.len() => {
                    Some(detection_instances(&golden_sig, sig, threshold))
                }
                _ => None,
            };
            FaultOutcome {
                fault: fault.clone(),
                signature,
                detection_pct,
            }
        })
        .collect();
    Ok(CampaignReport {
        golden: golden_sig,
        outcomes,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Fault;
    use anasim::dc::dc_operating_point;
    use anasim::source::SourceWaveform;

    /// A divider whose mid-node voltage is the (1-sample) signature.
    fn divider_fixture() -> (Netlist, anasim::netlist::NodeId) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", a, b, 10e3);
        nl.resistor("R2", b, Netlist::GROUND, 10e3);
        (nl, b)
    }

    #[test]
    fn campaign_detects_hard_faults() {
        let (nl, b) = divider_fixture();
        let faults = vec![Fault::stuck_at_0("sa0", b), Fault::stuck_at_1("sa1", b)];
        let report = run_campaign(&nl, &faults, 0.5, |n| {
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        })
        .unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.coverage(50.0), 1.0);
        assert_eq!(report.detection_series(), vec![100.0, 100.0]);
    }

    #[test]
    fn undetectable_fault_scores_zero() {
        let (nl, b) = divider_fixture();
        // A bridge across R2 with huge impedance barely moves the node.
        let a = nl.find_node("a").unwrap();
        let faults = vec![Fault::bridge("weak", a, b).with_impedance(1e9)];
        let report = run_campaign(&nl, &faults, 0.5, |n| {
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        })
        .unwrap();
        assert_eq!(report.coverage(50.0), 0.0);
        assert_eq!(report.detection_series(), vec![0.0]);
    }

    #[test]
    fn failed_fault_simulation_counts_as_detected() {
        let (nl, b) = divider_fixture();
        let faults = vec![Fault::stuck_at_0("sa0", b)];
        // Extractor that fails for any netlist containing a fault device.
        let report = run_campaign(&nl, &faults, 0.5, |n| {
            if n.find_device("fault:sa0:V").is_some() {
                Err(AnalysisError::NoConvergence {
                    time: 0.0,
                    residual: 1.0,
                })
            } else {
                Ok(vec![dc_operating_point(n)?.voltage(b)])
            }
        })
        .unwrap();
        assert!(report.outcomes[0].detection_pct.is_none());
        assert!(report.outcomes[0].is_detected(50.0));
        assert_eq!(report.coverage(50.0), 1.0);
    }

    #[test]
    fn golden_failure_propagates() {
        let (nl, _) = divider_fixture();
        let err = run_campaign(&nl, &[], 0.5, |_| {
            Err(AnalysisError::InvalidParameter("boom".into()))
        });
        assert!(err.is_err());
    }

    #[test]
    fn empty_universe_has_full_coverage() {
        let (nl, b) = divider_fixture();
        let report = run_campaign(&nl, &[], 0.5, |n| {
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        })
        .unwrap();
        assert_eq!(report.coverage(50.0), 1.0);
        assert!(report.detection_series().is_empty());
    }
}
