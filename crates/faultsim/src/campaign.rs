//! Fault campaigns: golden-vs-faulty response collection and detection
//! statistics.
//!
//! A campaign simulates the fault-free circuit once, then re-simulates
//! with each fault of the universe injected, extracts a response
//! signature from each run, and scores every fault with the paper's
//! detection-instance metric (the percentage of signature samples at
//! which the faulty response deviates detectably from golden — Figure 4
//! of the paper plots exactly this per faulty circuit).
//!
//! # Resilience
//!
//! Injected faults regularly produce circuits the solver finds much
//! harder than the design it was tuned on, so the engine is built to
//! survive an entire universe without hanging or aborting:
//!
//! * every extraction runs under a [`SolveBudget`] (step and wall-clock
//!   ceiling);
//! * a failed extraction is retried down a [`SolverRung`] escalation
//!   ladder of progressively more conservative solver settings;
//! * each fault ends in a typed [`FaultStatus`] — there is no way for a
//!   fault to leave the campaign without an outcome;
//! * faults can be simulated on a configurable number of worker
//!   threads, with results collected in universe order so reports are
//!   identical regardless of thread count.
//!
//! A fault whose circuit cannot be simulated at all still counts as
//! *detected* (the paper's hard-fault convention: a chip whose faulty
//! circuit cannot reach a stable state fails test trivially).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use anasim::flight::FlightRecorder;
use anasim::metrics::{SolverMetrics, SolverSnapshot};
use anasim::mna::MnaLayout;
use anasim::netlist::Netlist;
use anasim::robust::{escalation_ladder, CancelToken, SolveBudget, SolveSettings, SolverRung};
use anasim::solver::{Backend, Rank1Cache, Rank1Delta, Rank1Setup, WarmStart};
use anasim::AnalysisError;
use obs::chaos::FaultPlan;
use obs::journal::{JournalOptions, JournalWriter, RetryPolicy};
use obs::profile::PhaseProfiler;
use obs::{Postmortem, Recorder, Section};
use sigproc::correlation::detection_instances;

use crate::inject::inject;
use crate::journal;
use crate::model::Fault;
use crate::telemetry::{StatusEmitter, TelemetryConfig};

/// How one fault's simulation ended.
///
/// Every fault in a campaign gets exactly one of these; simulation
/// failure is an outcome, not an abort.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultStatus {
    /// The signature deviated on at least the configured fraction of
    /// instances.
    Detected {
        /// Percentage (0–100) of deviating signature instances.
        pct: f64,
    },
    /// The signature stayed within threshold on too many instances.
    Undetected {
        /// Percentage (0–100) of deviating signature instances.
        pct: f64,
    },
    /// Every rung of the escalation ladder failed to converge.
    /// Counts as detected (the hard-fault convention).
    SimFailed {
        /// The error from the last rung attempted.
        error: AnalysisError,
        /// How many ladder rungs were tried.
        rungs_tried: usize,
    },
    /// The per-fault resource budget ran out. Counts as detected.
    BudgetExceeded {
        /// How many ladder rungs were tried before the budget expired.
        rungs_tried: usize,
    },
    /// The extraction produced a signature of the wrong length; the
    /// detection metric is undefined. Counts as detected.
    SignatureMismatch {
        /// Faulty-signature length.
        got: usize,
        /// Golden-signature length.
        want: usize,
    },
    /// The extraction panicked. The panic was caught at the fault
    /// boundary ([`std::panic::catch_unwind`]), so it poisons neither
    /// the campaign nor its worker thread — it is terminal for this
    /// fault only. Counts as detected (the hard-fault convention: the
    /// faulty circuit drove the solver somewhere undefined).
    Panicked {
        /// The panic payload, when it was a string (the overwhelmingly
        /// common case); a placeholder otherwise.
        payload: String,
    },
}

impl FaultStatus {
    /// Short stable tag for reports (`"detected"`, `"sim-failed"`, ...).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultStatus::Detected { .. } => "detected",
            FaultStatus::Undetected { .. } => "undetected",
            FaultStatus::SimFailed { .. } => "sim-failed",
            FaultStatus::BudgetExceeded { .. } => "budget-exceeded",
            FaultStatus::SignatureMismatch { .. } => "signature-mismatch",
            FaultStatus::Panicked { .. } => "panicked",
        }
    }
}

/// Outcome of one fault's simulation.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// The fault that was injected.
    pub fault: Fault,
    /// The extracted signature, when any ladder rung produced one.
    pub signature: Option<Vec<f64>>,
    /// How the simulation ended.
    pub status: FaultStatus,
}

impl FaultOutcome {
    /// The measured deviation percentage, if the simulation produced a
    /// comparable signature.
    pub fn detection_pct(&self) -> Option<f64> {
        match self.status {
            FaultStatus::Detected { pct } | FaultStatus::Undetected { pct } => Some(pct),
            _ => None,
        }
    }

    /// Deviation percentage for the paper's Figure-4 series: failed
    /// simulations plot as 100 % (the hard-fault convention).
    pub fn figure_pct(&self) -> f64 {
        self.detection_pct().unwrap_or(100.0)
    }

    /// True if the fault is detected: either at least `min_pct` of
    /// instances deviate, or the faulty circuit failed to simulate.
    pub fn is_detected(&self, min_pct: f64) -> bool {
        match self.detection_pct() {
            Some(pct) => pct >= min_pct,
            None => true,
        }
    }
}

/// Per-fault solver telemetry.
#[derive(Debug, Clone, Default)]
pub struct FaultTelemetry {
    /// Solver counters accumulated across every ladder rung for this
    /// fault (each fault gets a fresh [`SolverMetrics`] handle, so
    /// counts cannot bleed between faults or threads).
    pub solver: SolverSnapshot,
    /// Index of the ladder rung that produced the signature, if any
    /// (0 = nominal settings).
    pub rung: Option<usize>,
    /// Number of ladder rungs attempted.
    pub rungs_tried: usize,
    /// Wall-clock time spent on this fault.
    pub wall: Duration,
    /// Worker lane (0-based thread index) that simulated this fault.
    /// Scheduling-dependent wall-clock metadata for timeline rendering
    /// ([`crate::trace`]): never part of canonical output, and not
    /// journaled — replayed faults report lane 0.
    pub lane: usize,
    /// Offset of this fault's simulation start from the campaign epoch
    /// (the instant [`run_campaign_with`] began). Same caveats as
    /// [`FaultTelemetry::lane`].
    pub start: Duration,
    /// Frozen flight-recorder trace, present only when the campaign's
    /// flight recorder was armed ([`CampaignConfig::flight`]) *and* the
    /// fault exhausted every ladder rung without producing a signature.
    pub postmortem: Option<Postmortem>,
}

impl FaultTelemetry {
    /// Newton iterations spent across every ladder rung for this fault.
    pub fn newton_iterations(&self) -> u64 {
        self.solver.newton_iterations
    }
}

/// Aggregate campaign telemetry, surfaced through
/// [`CampaignReport::stats`].
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Solver counters of the golden extraction.
    pub golden_solver: SolverSnapshot,
    /// Wall-clock time of the golden extraction.
    pub golden_wall: Duration,
    /// One telemetry record per fault, in universe order.
    pub per_fault: Vec<FaultTelemetry>,
    /// Campaign-level elapsed wall time: golden extraction through
    /// result collection, measured once on the coordinating thread. On
    /// a resumed campaign this covers only the resumed portion.
    pub campaign_wall: Duration,
    /// Number of faults whose extraction panicked
    /// ([`FaultStatus::Panicked`]).
    pub panicked: usize,
    /// Journal append attempts absorbed by the writer's
    /// [`RetryPolicy`] (0 when no journal is configured or nothing
    /// failed transiently). Reported as the `journal.retries` section
    /// counter; excluded from canonical *text*, which describes
    /// campaign semantics rather than storage weather.
    pub journal_retries: u64,
}

impl CampaignStats {
    /// Newton iterations spent on the golden extraction.
    pub fn golden_newton_iterations(&self) -> u64 {
        self.golden_solver.newton_iterations
    }

    /// Newton iterations summed over every fault (excluding golden).
    pub fn total_newton_iterations(&self) -> u64 {
        self.per_fault.iter().map(|t| t.solver.newton_iterations).sum()
    }

    /// Solver counters summed over golden and every fault.
    pub fn total_solver(&self) -> SolverSnapshot {
        self.per_fault
            .iter()
            .fold(self.golden_solver, |acc, t| acc + t.solver)
    }

    /// Per-fault wall-clock times as a millisecond histogram (e.g. for
    /// percentiles in run reports).
    pub fn fault_wall_ms(&self) -> obs::Histogram {
        let mut hist = obs::Histogram::new();
        for t in &self.per_fault {
            hist.record(t.wall.as_secs_f64() * 1e3);
        }
        hist
    }

    /// Histogram of successful escalation rungs: `histogram[i]` is the
    /// number of faults whose signature came from ladder rung `i`.
    /// Faults that produced no signature are not counted.
    pub fn rung_histogram(&self) -> Vec<usize> {
        let max_rung = self.per_fault.iter().filter_map(|t| t.rung).max();
        let mut hist = vec![0usize; max_rung.map_or(0, |m| m + 1)];
        for t in &self.per_fault {
            if let Some(r) = t.rung {
                hist[r] += 1;
            }
        }
        hist
    }

    /// Total *CPU-ish* wall-clock time: golden plus the sum of every
    /// per-fault time. Under parallel workers the per-fault times
    /// overlap, so this deliberately exceeds elapsed time — it measures
    /// aggregate solver effort. For the elapsed (human-experienced)
    /// duration of the campaign use
    /// [`CampaignStats::campaign_wall`], which is measured once on the
    /// coordinating thread and never double-counts.
    pub fn total_wall(&self) -> Duration {
        self.golden_wall + self.per_fault.iter().map(|t| t.wall).sum::<Duration>()
    }
}

/// Checkpoint-journal configuration for a campaign
/// ([`CampaignConfig::journal`]).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// JSONL journal file. Always opened in append mode — several
    /// campaigns (distinguished by label) may share one file, and a
    /// resumed campaign appends to what survived. Truncation policy
    /// belongs to the caller.
    pub path: PathBuf,
    /// Label distinguishing this campaign's records within the file.
    pub label: String,
    /// When true, the journal is read before simulating and faults with
    /// journaled outcomes are replayed instead of re-simulated. A
    /// missing journal file is not an error — the campaign simply runs
    /// fresh.
    pub resume: bool,
    /// Retry policy for journal appends. The default absorbs a few
    /// transient I/O faults with millisecond backoff before the
    /// campaign's [`DegradePolicy`] takes over; [`RetryPolicy::none`]
    /// restores fail-fast appends.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection plan wrapped around the journal
    /// file ([`obs::chaos`]). `None` (the default) journals against the
    /// real filesystem only — chaos is strictly opt-in.
    pub chaos: Option<FaultPlan>,
}

impl JournalConfig {
    /// Journal a fresh campaign run to `path` under `label`.
    pub fn fresh(path: impl Into<PathBuf>, label: impl Into<String>) -> Self {
        JournalConfig {
            path: path.into(),
            label: label.into(),
            resume: false,
            retry: RetryPolicy::default(),
            chaos: None,
        }
    }

    /// Resume from (and keep journaling to) `path` under `label`.
    pub fn resume(path: impl Into<PathBuf>, label: impl Into<String>) -> Self {
        JournalConfig {
            resume: true,
            ..JournalConfig::fresh(path, label)
        }
    }

    /// Replaces the append retry policy.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a deterministic fault-injection plan on the journal's
    /// storage path (chaos testing).
    #[must_use]
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }
}

/// What a campaign does when its checkpoint journal fails persistently
/// (every retry of an append exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Stop claiming new faults at the next fault boundary, append a
    /// best-effort `cancelled` terminal record so the journal replays,
    /// and fail the campaign with the journal error. Completed faults
    /// stay journaled; a resume picks up from them. This is the
    /// default: silently dropping checkpoints would break the resume
    /// guarantee.
    #[default]
    Abort,
    /// Keep simulating without checkpoints: the campaign completes and
    /// its report is fully populated, but outcomes after the failure
    /// exist only in memory. The report carries a
    /// [`JournalDegradation`] (surfaced as a canonical
    /// `[journal degraded …]` marker, a `journal_degraded.faults`
    /// counter and a recorder event), and a best-effort `degraded`
    /// terminal record marks the journal itself as incomplete.
    Continue,
}

/// How a completed campaign's journal degraded
/// ([`CampaignReport::degradation`], policy
/// [`DegradePolicy::Continue`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDegradation {
    /// Fault outcomes that made it into the journal (including
    /// replayed ones).
    pub journaled: usize,
    /// Fault outcomes completed after journaling stopped — present in
    /// the report, absent from the journal.
    pub unjournaled: usize,
    /// The terminal journal error that triggered degradation.
    pub reason: String,
}

/// Configuration for [`run_campaign_with`].
#[derive(Clone)]
pub struct CampaignConfig {
    /// Per-instance deviation threshold for the detection metric.
    pub threshold: f64,
    /// Minimum deviation percentage for [`FaultStatus::Detected`]
    /// (the paper's detection criterion; default 50 %).
    pub min_detect_pct: f64,
    /// Worker threads simulating faults (default 1 = serial). Reports
    /// are identical for any worker count.
    pub workers: usize,
    /// Escalation ladder tried in order for each fault. Must not be
    /// empty.
    pub ladder: Vec<SolverRung>,
    /// Resource budget applied to each extraction attempt.
    pub budget: SolveBudget,
    /// Ring capacity of the per-fault convergence flight recorder, or
    /// `None` (the default) to leave it disarmed. Armed, each fault gets
    /// its own [`FlightRecorder`] shared across every ladder rung; a
    /// fault that fails terminally freezes it into
    /// [`FaultTelemetry::postmortem`].
    pub flight: Option<usize>,
    /// Observability sink. Telemetry is accumulated per fault on worker
    /// threads and emitted here in universe order after collection, so
    /// what the recorder sees is deterministic for any worker count
    /// (aside from the wall-clock span durations themselves).
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Checkpoint journal: every completed fault is appended (fsync'd)
    /// to this JSONL file, and with [`JournalConfig::resume`] set,
    /// previously journaled faults are replayed instead of
    /// re-simulated. `None` (the default) disables checkpointing.
    pub journal: Option<JournalConfig>,
    /// Cooperative-cancellation token. Raised (from Ctrl-C, another
    /// thread, anywhere), it stops the campaign: in-flight extractions
    /// abort within one Newton iteration, workers stop claiming faults,
    /// and [`run_campaign_with`] returns [`AnalysisError::Cancelled`]
    /// after journaling a clean `cancelled` terminal record. Completed
    /// faults stay journaled, so the campaign resumes where it stopped.
    pub cancel: Option<CancelToken>,
    /// What to do when the journal fails persistently (all append
    /// retries exhausted): abort cleanly at the next fault boundary
    /// (the default) or continue journal-less with the degradation
    /// accounted for in the report.
    pub degrade: DegradePolicy,
    /// Arms phase-level cost attribution: the golden extraction and
    /// every fault get a fresh [`PhaseProfiler`] shared across ladder
    /// rungs, and the per-phase nanosecond rollup lands in
    /// [`FaultTelemetry::solver`] (the
    /// [`SolverSnapshot::phases`](anasim::metrics::SolverSnapshot)
    /// field). Phase times are wall-clock measurements and never reach
    /// canonical report output, so arming this cannot perturb
    /// byte-stability; the cost is a few monotonic-clock reads per
    /// Newton iteration. Disarmed (the default), no clocks are read.
    pub profile: bool,
    /// Linear-solver backend used for the golden extraction and every
    /// fault (default: sparse). Dense and sparse runs produce
    /// bit-identical solutions, so this only changes speed, never
    /// canonical report bytes.
    pub backend: Backend,
    /// Live telemetry: per-worker heartbeat records and periodically
    /// rewritten `mixsig.campaign-status/1` snapshots in the configured
    /// directory ([`TelemetryConfig`]), tailed by `experiments watch`.
    /// Purely advisory — telemetry writes are best-effort (failures are
    /// counted in the next snapshot, never surfaced as campaign
    /// errors), and nothing here reaches canonical report output, so
    /// arming it cannot perturb byte-stability. `None` (the default)
    /// runs without live telemetry and spawns no monitor thread.
    pub telemetry: Option<TelemetryConfig>,
    /// Numeric-chaos plan: deterministic arithmetic fault injection
    /// into each *fault* extraction's solver (pivot breakdowns, factor
    /// perturbations, NaN solutions, rank-1 denominator poisoning).
    /// Each fault arms a fresh firing state shared across its ladder
    /// rungs, so injection is a pure function of the fault's solve
    /// sequence and reports stay byte-identical at any worker count.
    /// The golden extraction always runs clean — chaos probes the
    /// recovery ladder, not the reference signature. `None` (the
    /// default) keeps every site inert.
    pub numeric_chaos: Option<obs::NumericChaosPlan>,
}

impl fmt::Debug for CampaignConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignConfig")
            .field("threshold", &self.threshold)
            .field("min_detect_pct", &self.min_detect_pct)
            .field("workers", &self.workers)
            .field("ladder", &self.ladder)
            .field("budget", &self.budget)
            .field("flight", &self.flight)
            .field("has_recorder", &self.recorder.is_some())
            .field("journal", &self.journal)
            .field("has_cancel", &self.cancel.is_some())
            .field("degrade", &self.degrade)
            .field("profile", &self.profile)
            .field("backend", &self.backend)
            .field("telemetry", &self.telemetry)
            .field("numeric_chaos", &self.numeric_chaos)
            .finish()
    }
}

impl CampaignConfig {
    /// A configuration with the given detection threshold, the default
    /// escalation ladder, a generous step budget, one worker and the
    /// 50 % detection criterion.
    pub fn new(threshold: f64) -> Self {
        CampaignConfig {
            threshold,
            min_detect_pct: 50.0,
            workers: 1,
            ladder: escalation_ladder(),
            budget: SolveBudget::unlimited().steps(5_000_000),
            flight: None,
            recorder: None,
            journal: None,
            cancel: None,
            degrade: DegradePolicy::default(),
            profile: false,
            backend: Backend::default(),
            telemetry: None,
            numeric_chaos: None,
        }
    }

    /// Replaces the detection threshold (used when the threshold is
    /// derived from the golden signature after construction).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the minimum deviation percentage for `Detected`.
    pub fn min_detect_pct(mut self, pct: f64) -> Self {
        self.min_detect_pct = pct;
        self
    }

    /// Sets the number of worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the escalation ladder.
    pub fn ladder(mut self, ladder: Vec<SolverRung>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Replaces the per-extraction budget. A wall-clock ceiling makes
    /// outcomes timing-dependent, which sacrifices report determinism —
    /// prefer step budgets when byte-stable reports matter.
    pub fn budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms the convergence flight recorder with the given ring
    /// capacity ([`FlightRecorder::DEFAULT_CAPACITY`] is a sensible
    /// choice): faults that fail every ladder rung carry a frozen
    /// [`Postmortem`] in their telemetry.
    pub fn flight(mut self, capacity: usize) -> Self {
        self.flight = Some(capacity);
        self
    }

    /// Installs an observability sink receiving `campaign.golden` /
    /// `campaign.fault` spans and solver counters after the campaign
    /// completes.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Installs a checkpoint journal ([`JournalConfig::fresh`] /
    /// [`JournalConfig::resume`]).
    pub fn journal(mut self, journal: JournalConfig) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Installs a cooperative-cancellation token; see
    /// [`CampaignConfig::cancel`].
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Sets the persistent-journal-failure policy; see
    /// [`DegradePolicy`].
    pub fn degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Arms (or disarms) phase-level cost attribution; see
    /// [`CampaignConfig::profile`].
    pub fn profile(mut self, armed: bool) -> Self {
        self.profile = armed;
        self
    }

    /// Selects the linear-solver backend; see
    /// [`CampaignConfig::backend`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms live telemetry; see [`CampaignConfig::telemetry`].
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Arms deterministic numeric-chaos injection for every fault
    /// extraction (the golden extraction always runs clean); see
    /// [`CampaignConfig::numeric_chaos`].
    pub fn numeric_chaos(mut self, plan: obs::NumericChaosPlan) -> Self {
        self.numeric_chaos = Some(plan);
        self
    }
}

/// Full report of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The golden (fault-free) signature.
    pub golden: Vec<f64>,
    /// One outcome per fault, in universe order.
    pub outcomes: Vec<FaultOutcome>,
    /// The deviation threshold used.
    pub threshold: f64,
    /// Solver telemetry for the run.
    pub stats: CampaignStats,
    /// Set when the journal failed persistently under
    /// [`DegradePolicy::Continue`]: the report is complete, the journal
    /// is not. `None` for unjournaled campaigns and for journals that
    /// stayed healthy (possibly via retries).
    pub degradation: Option<JournalDegradation>,
}

impl CampaignReport {
    /// Fault coverage: fraction (0–1) of faults detected at the given
    /// minimum detection percentage.
    pub fn coverage(&self, min_pct: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        let detected = self
            .outcomes
            .iter()
            .filter(|o| o.is_detected(min_pct))
            .count();
        detected as f64 / self.outcomes.len() as f64
    }

    /// Detection percentages in universe order (failed simulations show
    /// as 100 %), the series plotted in the paper's Figure 4.
    pub fn detection_series(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.figure_pct()).collect()
    }

    /// Number of faults whose status is anything but `Undetected` (the
    /// criterion already applied when statuses were assigned).
    pub fn detected_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !matches!(o.status, FaultStatus::Undetected { .. }))
            .count()
    }

    /// Postmortems frozen during the campaign, paired with the name of
    /// the fault they belong to, in universe order.
    pub fn postmortems(&self) -> impl Iterator<Item = (&str, &Postmortem)> {
        self.outcomes
            .iter()
            .zip(&self.stats.per_fault)
            .filter_map(|(o, t)| t.postmortem.as_ref().map(|pm| (o.fault.name(), pm)))
    }

    /// Campaign-level rollup of the flight recorder's worst-offender
    /// histograms: which circuit nodes most often dominated the Newton
    /// update across *all* failed faults, descending by count then name.
    /// Empty when the flight recorder was disarmed or nothing failed.
    pub fn top_offending_nodes(&self) -> Vec<(String, u64)> {
        let mut counts: std::collections::BTreeMap<&str, u64> =
            std::collections::BTreeMap::new();
        for t in &self.stats.per_fault {
            if let Some(pm) = &t.postmortem {
                for (node, count) in &pm.worst_nodes {
                    *counts.entry(node.as_str()).or_default() += count;
                }
            }
        }
        let mut out: Vec<(String, u64)> = counts
            .into_iter()
            .map(|(node, count)| (node.to_owned(), count))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Renders the campaign as a named [`Section`] for a
    /// [`obs::RunReport`]: fault/detection counters, coverage, the
    /// combined solver counters, the escalation-rung histogram, the
    /// golden/per-fault wall-clock histograms, and — when the flight
    /// recorder was armed — every frozen postmortem plus `worst_node.*`
    /// counters for the top offending nodes.
    pub fn to_section(&self, name: &str) -> Section {
        let mut section = Section::new(name);
        section
            .counter("faults", self.outcomes.len() as u64)
            .counter("detected", self.detected_count() as u64)
            // Emitted even at zero so the counter key set is stable
            // across runs (canonical diffs stay structural).
            .counter("panicked.faults", self.stats.panicked as u64)
            .counter(
                "journal_degraded.faults",
                self.degradation.as_ref().map_or(0, |d| d.unjournaled as u64),
            )
            .counter("journal.retries", self.stats.journal_retries)
            .value("threshold", self.threshold)
            .value(
                "coverage",
                if self.outcomes.is_empty() {
                    100.0
                } else {
                    100.0 * self.detected_count() as f64 / self.outcomes.len() as f64
                },
            );
        let total = self.stats.total_solver();
        for (counter, value) in anasim::metrics::COUNTER_NAMES.iter().zip(total.as_array()) {
            section.counter(counter, value);
        }
        section.histogram(
            "escalation_rungs",
            self.stats.rung_histogram().iter().map(|&n| n as u64).collect(),
        );
        section.timing_ms(
            "campaign.golden",
            self.stats.golden_wall.as_secs_f64() * 1e3,
        );
        section.timing_ms(
            "campaign.wall",
            self.stats.campaign_wall.as_secs_f64() * 1e3,
        );
        for t in &self.stats.per_fault {
            section.timing_ms("campaign.fault", t.wall.as_secs_f64() * 1e3);
        }
        for (node, count) in self.top_offending_nodes().into_iter().take(5) {
            section.counter(&format!("worst_node.{node}"), count);
        }
        for t in &self.stats.per_fault {
            if let Some(pm) = &t.postmortem {
                section.postmortem(pm.clone());
            }
        }
        section
    }

    /// Canonical plain-text rendering of the report.
    ///
    /// Contains only deterministic quantities (statuses, percentages,
    /// rung indices, Newton iteration counts) — never wall-clock times —
    /// so the text is byte-identical across runs and worker counts as
    /// long as no wall-clock budget is configured.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: {} faults, threshold {:.6}, {} golden samples",
            self.outcomes.len(),
            self.threshold,
            self.golden.len()
        );
        for (o, t) in self.outcomes.iter().zip(&self.stats.per_fault) {
            let _ = write!(out, "{}: {}", o.fault.name(), o.status.tag());
            match &o.status {
                FaultStatus::Detected { pct } | FaultStatus::Undetected { pct } => {
                    let _ = write!(out, " {pct:.4}%");
                }
                FaultStatus::SimFailed { error, rungs_tried } => {
                    let _ = write!(out, " after {rungs_tried} rungs: {error}");
                }
                FaultStatus::BudgetExceeded { rungs_tried } => {
                    let _ = write!(out, " after {rungs_tried} rungs");
                }
                FaultStatus::SignatureMismatch { got, want } => {
                    let _ = write!(out, " got {got} want {want}");
                }
                FaultStatus::Panicked { .. } => {}
            }
            if let Some(r) = t.rung {
                let _ = write!(out, " [rung {r}]");
            }
            if let Some((node, _)) = t.postmortem.as_ref().and_then(|pm| pm.worst_nodes.first())
            {
                let _ = write!(out, " [worst {node}]");
            }
            if let FaultStatus::Panicked { payload } = &o.status {
                let _ = write!(out, " [panic {}]", payload.lines().next().unwrap_or(""));
            }
            // Counter-derived numerical-resilience marker, in the same
            // family as [rung]/[worst]/[panic]: hazards the solver
            // observed for this fault and the recovery tiers it demoted
            // to. Healthy faults carry no marker, so canonical bytes
            // are untouched unless something actually went wrong.
            let join = |pairs: &[(&'static str, u64)]| -> String {
                pairs
                    .iter()
                    .filter(|(_, count)| *count > 0)
                    .map(|(label, count)| {
                        if *count == 1 {
                            (*label).to_owned()
                        } else {
                            format!("{label} x {count}")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let hazards = join(&t.solver.hazards());
            let demotes = join(&t.solver.demotions());
            match (hazards.is_empty(), demotes.is_empty()) {
                (false, false) => {
                    let _ = write!(out, " [hazard {hazards} → demote {demotes}]");
                }
                (false, true) => {
                    let _ = write!(out, " [hazard {hazards}]");
                }
                (true, false) => {
                    let _ = write!(out, " [demote {demotes}]");
                }
                (true, true) => {}
            }
            let _ = writeln!(out, " [newton {}]", t.solver.newton_iterations);
        }
        let _ = writeln!(out, "coverage@50%: {:.4}", self.coverage(50.0));
        if let Some(d) = &self.degradation {
            let _ = writeln!(
                out,
                "[journal degraded: {} unjournaled of {} faults ({})]",
                d.unjournaled,
                self.outcomes.len(),
                d.reason
            );
        }
        out
    }
}

/// Shared journal bookkeeping for one campaign run: the writer plus the
/// failure/degradation state workers consult at every fault boundary.
struct JournalState {
    writer: Mutex<JournalWriter>,
    label: String,
    /// Outcomes replayed from the journal before simulation started.
    replayed: usize,
    /// Latched on the first persistent (retries-exhausted) append
    /// failure; `reason` holds the error (first one wins).
    failed: AtomicBool,
    /// Under [`DegradePolicy::Abort`]: tells workers to stop claiming
    /// faults, exactly like a raised cancel token.
    abort: AtomicBool,
    /// Fault outcomes appended to the journal by this run.
    journaled: AtomicUsize,
    /// Fault outcomes completed after journaling stopped
    /// ([`DegradePolicy::Continue`] only).
    unjournaled: AtomicUsize,
    reason: Mutex<Option<String>>,
}

impl JournalState {
    fn new(writer: JournalWriter, label: String, replayed: usize) -> Self {
        JournalState {
            writer: Mutex::new(writer),
            label,
            replayed,
            failed: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            journaled: AtomicUsize::new(0),
            unjournaled: AtomicUsize::new(0),
            reason: Mutex::new(None),
        }
    }

    /// Records a persistent append failure and applies the policy.
    fn degrade(&self, err: &std::io::Error, policy: DegradePolicy) {
        let mut reason = self.reason.lock().expect("journal reason lock");
        if reason.is_none() {
            *reason = Some(err.to_string());
        }
        drop(reason);
        self.failed.store(true, Ordering::Release);
        if policy == DegradePolicy::Abort {
            self.abort.store(true, Ordering::Release);
        }
    }

    /// Total fault outcomes the journal holds: replayed plus appended.
    fn journaled_total(&self) -> usize {
        self.replayed + self.journaled.load(Ordering::Acquire)
    }

    fn reason(&self) -> String {
        self.reason
            .lock()
            .expect("journal reason lock")
            .clone()
            .unwrap_or_else(|| "unknown journal failure".into())
    }
}

/// The rank-1 reuse setup for one fault, if its faulty system is a
/// rank-1 perturbation of the golden one: a [`FaultKind::Bridge`] on a
/// circuit with no nonlinear devices adds exactly `g·w·wᵀ` (one
/// resistor between the bridged nodes, no new unknowns), so faulty
/// solves can reuse the golden factorisations via Sherman–Morrison.
/// Everything else factorises normally.
fn rank1_for(faulty: &Netlist, fault: &Fault, cache: &Arc<Rank1Cache>) -> Option<Rank1Setup> {
    use crate::model::FaultKind;
    if faulty.has_nonlinear_devices() || cache.is_empty() {
        return None;
    }
    match fault.kind() {
        FaultKind::Bridge { a, b } => {
            let layout = MnaLayout::new(faulty);
            Some(Rank1Setup::apply(
                Arc::clone(cache),
                Rank1Delta {
                    pos: layout.node_index(a),
                    neg: layout.node_index(b),
                    conductance: 1.0 / fault.impedance(),
                },
            ))
        }
        _ => None,
    }
}

/// Runs a fault campaign with the resilient engine.
///
/// `extract` simulates a netlist under the given [`SolveSettings`] and
/// produces its response signature (e.g. sampled output waveform or
/// correlation function). The golden netlist is extracted first at
/// nominal settings; each fault is then injected and extracted, walking
/// the configured escalation ladder until a rung converges, the budget
/// expires, or the ladder is exhausted. Every fault yields a typed
/// [`FaultStatus`] — per-fault failures never abort the campaign.
///
/// With `config.workers > 1`, faults are distributed over that many
/// threads; outcomes are collected in universe order, so the report is
/// independent of the worker count.
///
/// Three more failure modes stay contained at the fault boundary:
///
/// * a **panicking** extraction is caught ([`std::panic::catch_unwind`])
///   and becomes that fault's terminal [`FaultStatus::Panicked`];
/// * a raised [`CampaignConfig::cancel`] token stops the campaign at
///   the next fault boundary (in-flight extractions abort within one
///   Newton iteration) and returns [`AnalysisError::Cancelled`];
/// * with [`CampaignConfig::journal`] configured, every completed fault
///   is checkpointed to an fsync'd JSONL journal, so a crash, kill or
///   cancellation can be resumed ([`run_campaign_resumed`]) without
///   redoing completed work.
///
/// # Errors
///
/// Returns the golden circuit's analysis error if the fault-free
/// extraction fails, [`AnalysisError::InvalidParameter`] if the ladder
/// is empty or the journal is unusable (foreign campaign, write
/// failure), or [`AnalysisError::Cancelled`] when the campaign was
/// cancelled before every fault completed.
pub fn run_campaign_with<F>(
    golden: &Netlist,
    faults: &[Fault],
    config: &CampaignConfig,
    extract: F,
) -> Result<CampaignReport, AnalysisError>
where
    F: Fn(&Netlist, &SolveSettings) -> Result<Vec<f64>, AnalysisError> + Sync,
{
    if config.ladder.is_empty() {
        return Err(AnalysisError::InvalidParameter(
            "campaign escalation ladder is empty".into(),
        ));
    }

    let campaign_start = Instant::now();

    // Golden extraction at nominal settings, same budget as faults.
    // Each extraction gets its own SolverMetrics handle: counts are
    // exact per extraction and nothing is shared between threads.
    // A resumed campaign re-runs this too: the solver is deterministic,
    // so re-deriving the golden signature is both cheap (one fault's
    // worth of work) and exactly reproducible, which keeps the journal
    // free of bulk golden data.
    let golden_profile = config.profile.then(|| Arc::new(PhaseProfiler::new()));
    let golden_metrics = {
        let mut metrics = SolverMetrics::new();
        if let Some(p) = &golden_profile {
            metrics = metrics.with_profile(Arc::clone(p));
        }
        Arc::new(metrics)
    };
    // The golden extraction *captures* every linear factorisation it
    // computes into a shared cache, keyed by stamp parameters. The
    // cache is frozen before any fault simulates, so lookups are
    // deterministic regardless of worker scheduling — a prerequisite
    // for byte-identical reports at any worker count.
    let rank1_cache = Arc::new(Rank1Cache::new());
    let golden_settings = SolveSettings {
        rung: SolverRung::nominal(),
        budget: config.budget,
        metrics: Some(Arc::clone(&golden_metrics)),
        flight: None,
        cancel: config.cancel.clone(),
        profile: golden_profile.clone(),
        backend: config.backend,
        warm_start: None,
        rank1: Some(Rank1Setup::capture(Arc::clone(&rank1_cache))),
        // The golden run always solves clean: chaos tests the recovery
        // ladder against faults, never the reference signature.
        numeric_chaos: None,
    };
    let golden_start = Instant::now();
    let golden_sig = extract(golden, &golden_settings)?;
    let golden_wall = golden_start.elapsed();
    let golden_solver = golden_metrics.snapshot();
    rank1_cache.freeze();

    // Golden DC operating point, reused as the Newton seed for every
    // fault: injection appends hardware at the end of the netlist, so
    // golden unknowns map directly onto the faulty layout and only the
    // fault's own unknowns start cold. Best-effort — a circuit whose
    // golden DC point does not converge simply skips warm-starting.
    let warm_start: Option<Arc<WarmStart>> = anasim::dc::dc_operating_point(golden)
        .ok()
        .map(|op| {
            let node_count = MnaLayout::new(golden).node_count();
            Arc::new(WarmStart::new(op.into_solution(), node_count))
        });

    // Replay the checkpoint journal (resume) and open it for appending.
    // `results[i]` starts as the replayed outcome for fault `i`, or
    // `None` for faults still to simulate.
    let is_cancelled = || config.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
    let mut results: Vec<Option<(FaultOutcome, FaultTelemetry)>> =
        faults.iter().map(|_| None).collect();
    let journal_state: Option<JournalState> = match &config.journal {
        Some(jc) => {
            let journal_err =
                |e: String| AnalysisError::InvalidParameter(format!("campaign journal: {e}"));
            let mut replayed_campaign = None;
            if jc.resume && jc.path.exists() {
                let replay = journal::load(&jc.path).map_err(journal_err)?;
                if let Some(campaign) = replay.campaign(&jc.label) {
                    // Refuse a journal that belongs to a different
                    // campaign: replaying foreign outcomes would be
                    // silent corruption, not resilience.
                    if campaign.names.iter().map(String::as_str).ne(faults.iter().map(Fault::name))
                    {
                        return Err(journal_err(format!(
                            "label {:?} was journaled with a different fault universe",
                            jc.label
                        )));
                    }
                    if campaign.threshold.to_bits() != config.threshold.to_bits() {
                        return Err(journal_err(format!(
                            "label {:?} was journaled with threshold {}, campaign has {}",
                            jc.label, campaign.threshold, config.threshold
                        )));
                    }
                    if campaign.golden_len != golden_sig.len() {
                        return Err(journal_err(format!(
                            "label {:?} was journaled with {} golden samples, campaign has {}",
                            jc.label,
                            campaign.golden_len,
                            golden_sig.len()
                        )));
                    }
                    replayed_campaign = Some(campaign.clone());
                }
            }
            // Opening and the `start` record go through the configured
            // retry/chaos options too; errors here carry the path and
            // operation from `obs::journal::JournalError`.
            let mut writer = JournalWriter::append_to_with(
                &jc.path,
                JournalOptions {
                    retry: jc.retry.clone(),
                    chaos: jc.chaos.clone(),
                },
            )
            .map_err(|e| journal_err(e.to_string()))?;
            writer
                .append(&journal::start_record(
                    &jc.label,
                    faults,
                    config.threshold,
                    golden_sig.len(),
                ))
                .map_err(|e| journal_err(e.to_string()))?;
            let mut replayed = 0usize;
            if let Some(campaign) = replayed_campaign {
                for fault in campaign.faults.values() {
                    // Replaying a big journal decodes thousands of
                    // records; honour cancellation at record
                    // granularity, terminating the fresh segment
                    // cleanly so the journal still replays.
                    if is_cancelled() {
                        writer
                            .append(&journal::cancelled_record(&jc.label, replayed))
                            .map_err(|e| journal_err(e.to_string()))?;
                        return Err(AnalysisError::Cancelled);
                    }
                    if fault.index >= faults.len() || fault.name != faults[fault.index].name()
                    {
                        return Err(journal_err(format!(
                            "fault record {:?} (index {}) does not match the universe",
                            fault.name, fault.index
                        )));
                    }
                    results[fault.index] = Some((
                        FaultOutcome {
                            fault: faults[fault.index].clone(),
                            signature: fault.signature.clone(),
                            status: fault.status.clone(),
                        },
                        fault.telemetry.clone(),
                    ));
                    replayed += 1;
                }
            }
            Some(JournalState::new(writer, jc.label.clone(), replayed))
        }
        None => None,
    };

    // Live telemetry arms after replay so replayed outcomes seed the
    // progress rollup, and before any fault simulates so the first
    // snapshot is on disk the moment workers start. Everything the
    // emitter does is advisory and best-effort: a dead telemetry
    // directory costs dropped snapshots, never the campaign.
    let emitter: Option<StatusEmitter> = config.telemetry.as_ref().map(|tc| {
        let mut rollup = (0usize, 0usize, 0usize);
        for (outcome, _) in results.iter().flatten() {
            match outcome.status.tag() {
                "detected" => rollup.0 += 1,
                "undetected" => rollup.1 += 1,
                _ => rollup.2 += 1,
            }
        }
        StatusEmitter::arm(
            tc.clone(),
            config
                .journal
                .as_ref()
                .map_or("campaign", |jc| jc.label.as_str()),
            config.journal.as_ref().map(|jc| jc.path.as_path()),
            faults.len(),
            config.workers.max(1),
            rollup,
            config.budget,
        )
    });

    let simulate_fault = |fault: &Fault, lane: usize| -> Option<(FaultOutcome, FaultTelemetry)> {
        let faulty = inject(golden, fault);
        // A bridge across a *linear* circuit perturbs the golden matrix
        // by exactly `g·w·wᵀ` (one resistor, no new unknowns), so its
        // solves can go through the golden factorisations via
        // Sherman–Morrison instead of factorising the faulty matrix.
        let rank1 = rank1_for(&faulty, fault, &rank1_cache);
        // One handle per fault, accumulated across ladder rungs. When
        // profiling is armed the profiler is fresh per fault too, so the
        // phase rollup in the telemetry is exact for this fault alone.
        let profile = config.profile.then(|| Arc::new(PhaseProfiler::new()));
        let metrics = {
            let mut metrics = SolverMetrics::new();
            if let Some(p) = &profile {
                metrics = metrics.with_profile(Arc::clone(p));
            }
            Arc::new(metrics)
        };
        // One flight recorder per fault too, shared across every rung so
        // a frozen postmortem shows the whole escalation path.
        let flight = config.flight.map(|cap| Arc::new(FlightRecorder::new(cap)));
        // Fresh numeric-chaos firing state per fault, shared across
        // rungs: attempt indices depend only on this fault's own solve
        // sequence, so the injection schedule — and with it the typed
        // outcome — replays bit-for-bit at any worker count.
        let numeric_chaos = config
            .numeric_chaos
            .as_ref()
            .filter(|plan| !plan.is_empty())
            .map(|plan| Arc::new(plan.arm()));
        let start_offset = campaign_start.elapsed();
        let start = Instant::now();

        let mut rungs_tried = 0usize;
        let mut last_err: Option<AnalysisError> = None;
        let mut produced: Option<(usize, Vec<f64>)> = None;
        let mut out_of_budget = false;
        let mut panicked: Option<String> = None;
        for (i, rung) in config.ladder.iter().enumerate() {
            rungs_tried += 1;
            if let Some(flight) = &flight {
                flight.begin_rung(i, &rung.label());
            }
            let settings = SolveSettings {
                rung: *rung,
                budget: config.budget,
                metrics: Some(Arc::clone(&metrics)),
                flight: flight.clone(),
                cancel: config.cancel.clone(),
                profile: profile.clone(),
                backend: config.backend,
                warm_start: warm_start.clone(),
                rank1: rank1.clone(),
                numeric_chaos: numeric_chaos.clone(),
            };
            // The extraction is the untrusted part of the engine: a
            // panicking solver must become this fault's outcome, not
            // take down the worker (which would poison the thread-pool
            // scope and abort the whole campaign).
            match catch_unwind(AssertUnwindSafe(|| extract(&faulty, &settings))) {
                Err(panic) => {
                    if let Some(flight) = &flight {
                        flight.end_rung("panic");
                    }
                    // Terminal for this fault: a panic means solver
                    // state is suspect, so walking further down the
                    // ladder would prove nothing.
                    panicked = Some(panic_payload(panic.as_ref()));
                    break;
                }
                Ok(Ok(sig)) => {
                    if let Some(flight) = &flight {
                        flight.end_rung("ok");
                    }
                    produced = Some((i, sig));
                    break;
                }
                Ok(Err(AnalysisError::Cancelled)) => {
                    if let Some(flight) = &flight {
                        flight.end_rung("cancelled");
                    }
                    // Cancellation abandons the in-flight fault: it is
                    // not journaled and carries no outcome — a resume
                    // will simulate it from scratch.
                    return None;
                }
                Ok(Err(err @ AnalysisError::BudgetExceeded { .. })) => {
                    // The budget bounds total effort per fault: do not
                    // walk further down the ladder.
                    if let Some(flight) = &flight {
                        flight.end_rung("budget");
                    }
                    last_err = Some(err);
                    out_of_budget = true;
                    break;
                }
                Ok(Err(err)) => {
                    if let Some(flight) = &flight {
                        flight.end_rung(match &err {
                            AnalysisError::NoConvergence { .. } => "no-convergence",
                            AnalysisError::SingularMatrix { .. } => "singular",
                            AnalysisError::Numerical { .. } => "numerical",
                            _ => "error",
                        });
                    }
                    last_err = Some(err);
                }
            }
        }

        let wall = start.elapsed();
        let solver = metrics.snapshot();

        // A fault that exhausted the ladder (or its budget), or died in
        // a panic, freezes its flight recorder into a postmortem before
        // the failure is moved into the status.
        let postmortem = if let Some(payload) = &panicked {
            flight.as_ref().map(|f| f.freeze_panic(fault.name(), payload))
        } else {
            match (&flight, &last_err, &produced) {
                (Some(flight), Some(err), None) => {
                    let budget_steps = match err {
                        AnalysisError::BudgetExceeded { steps, .. } => Some(*steps as u64),
                        _ => None,
                    };
                    Some(flight.freeze(fault.name(), err, budget_steps))
                }
                _ => None,
            }
        };

        let (signature, rung, status) = if let Some(payload) = panicked {
            (None, None, FaultStatus::Panicked { payload })
        } else {
            match produced {
                Some((i, sig)) => {
                    if sig.len() != golden_sig.len() {
                        let status = FaultStatus::SignatureMismatch {
                            got: sig.len(),
                            want: golden_sig.len(),
                        };
                        (Some(sig), Some(i), status)
                    } else {
                        let pct = detection_instances(&golden_sig, &sig, config.threshold);
                        let status = if pct >= config.min_detect_pct {
                            FaultStatus::Detected { pct }
                        } else {
                            FaultStatus::Undetected { pct }
                        };
                        (Some(sig), Some(i), status)
                    }
                }
                None if out_of_budget => {
                    (None, None, FaultStatus::BudgetExceeded { rungs_tried })
                }
                None => (
                    None,
                    None,
                    FaultStatus::SimFailed {
                        error: last_err.expect("non-empty ladder records an error"),
                        rungs_tried,
                    },
                ),
            }
        };

        Some((
            FaultOutcome {
                fault: fault.clone(),
                signature,
                status,
            },
            FaultTelemetry {
                solver,
                rung,
                rungs_tried,
                wall,
                lane,
                start: start_offset,
                postmortem,
            },
        ))
    };

    // One completed fault = one fsync'd journal line, appended from
    // whichever worker finished it. Journal order is completion order;
    // the record's index restores universe order on replay. Transient
    // write failures are absorbed by the writer's retry policy; a
    // persistent one latches the degradation state, and the configured
    // `DegradePolicy` decides whether workers stop claiming (Abort) or
    // keep simulating with the gap accounted (Continue) — dropping
    // checkpoints *silently* would break the resume guarantee.
    let run_one = |i: usize, lane: usize| -> Option<(FaultOutcome, FaultTelemetry)> {
        if let Some(em) = &emitter {
            em.fault_claimed(lane, i, faults[i].name());
        }
        let Some(result) = simulate_fault(&faults[i], lane) else {
            // Cancellation abandoned the in-flight fault: release the
            // lane so the terminal snapshot shows it idle, not hung.
            if let Some(em) = &emitter {
                em.fault_abandoned(lane);
            }
            return None;
        };
        if let Some(em) = &emitter {
            em.fault_done(lane, i, faults[i].name(), result.0.status.tag(), &result.1.solver);
        }
        if let Some(js) = &journal_state {
            if js.failed.load(Ordering::Acquire) {
                js.unjournaled.fetch_add(1, Ordering::AcqRel);
            } else {
                let record = journal::fault_record(
                    &js.label,
                    i,
                    faults[i].name(),
                    result.0.signature.as_deref(),
                    &result.0.status,
                    &result.1,
                );
                match js.writer.lock().expect("journal lock").append(&record) {
                    Ok(()) => {
                        js.journaled.fetch_add(1, Ordering::AcqRel);
                    }
                    Err(err) => {
                        js.degrade(&err, config.degrade);
                        js.unjournaled.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
        }
        Some(result)
    };
    // Workers stop claiming for either reason — user cancellation or a
    // journal abort — through the same fault-boundary check.
    let should_stop = || {
        is_cancelled()
            || journal_state
                .as_ref()
                .is_some_and(|js| js.abort.load(Ordering::Acquire))
    };

    // Only faults without a replayed outcome are simulated. The whole
    // execution block runs inside one scope so the telemetry monitor
    // (when armed) can tick on its own scoped thread beside either the
    // serial loop or the worker pool; it is told to stop (and joins at
    // scope exit) before results are inspected.
    let pending: Vec<usize> = (0..faults.len()).filter(|&i| results[i].is_none()).collect();
    let workers = config.workers.max(1).min(pending.len().max(1));
    std::thread::scope(|scope| {
        if let Some(em) = &emitter {
            scope.spawn(move || em.monitor());
        }
        if workers <= 1 {
            for &i in &pending {
                if should_stop() {
                    break;
                }
                let Some(result) = run_one(i, 0) else { break };
                results[i] = Some(result);
            }
        } else {
            // Deterministic parallel execution: an atomic cursor hands
            // out pending fault indices, each fault runs entirely on
            // one thread, and results land in per-index slots so
            // universe order is restored exactly regardless of
            // scheduling. Workers check the cancellation token (and the
            // journal-abort latch) at every fault boundary and stop
            // claiming once either trips.
            let slots: Vec<Mutex<Option<(FaultOutcome, FaultTelemetry)>>> =
                pending.iter().map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for lane in 0..workers {
                    let (cursor, slots, pending) = (&cursor, &slots, &pending);
                    let (run_one, should_stop) = (&run_one, &should_stop);
                    scope.spawn(move || loop {
                        if should_stop() {
                            break;
                        }
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = pending.get(k) else { break };
                        let Some(result) = run_one(i, lane) else { break };
                        *slots[k].lock().expect("slot lock") = Some(result);
                    });
                }
            });
            for (k, slot) in slots.into_iter().enumerate() {
                if let Some(result) = slot.into_inner().expect("slot lock") {
                    results[pending[k]] = Some(result);
                }
            }
        }
        if let Some(em) = &emitter {
            em.finish();
        }
    });

    // A persistent journal failure under Abort fails the campaign at
    // the fault boundary it stopped at, exactly like a cancellation: a
    // best-effort `cancelled` terminal record keeps the journal
    // replayable when the underlying fault was bounded (an ENOSPC that
    // cleared), and its own failure is ignored — the journal is already
    // known-broken, and the error the caller needs is the original one.
    if let Some(js) = &journal_state {
        if js.failed.load(Ordering::Acquire) && config.degrade == DegradePolicy::Abort {
            let _ = js
                .writer
                .lock()
                .expect("journal lock")
                .append(&journal::cancelled_record(&js.label, js.journaled_total()));
            if let Some(em) = &emitter {
                em.emit_terminal("aborted");
            }
            return Err(AnalysisError::InvalidParameter(format!(
                "campaign journal: write failed ({} of {} fault outcomes journaled, \
                 aborted at the next fault boundary): {}",
                js.journaled_total(),
                faults.len(),
                js.reason()
            )));
        }
    }

    // A missing outcome past this point can only mean cancellation
    // (every other path produces a typed status). Journal a clean
    // terminal record so the file replays, then report cancellation to
    // the caller.
    let completed = results.iter().filter(|r| r.is_some()).count();
    if completed < faults.len() {
        if let Some(js) = &journal_state {
            let append = js
                .writer
                .lock()
                .expect("journal lock")
                .append(&journal::cancelled_record(&js.label, js.journaled_total()));
            match append {
                Ok(()) => {}
                // A journal that already degraded (Continue policy)
                // gets best-effort terminal records only.
                Err(_) if js.failed.load(Ordering::Acquire) => {}
                Err(err) => {
                    if let Some(em) = &emitter {
                        em.emit_terminal("cancelled");
                    }
                    return Err(AnalysisError::InvalidParameter(format!(
                        "campaign journal: write failed: {err}"
                    )));
                }
            }
        }
        // After the journal's terminal record, like the complete path:
        // a watcher seeing a terminal snapshot can rely on the journal
        // being finished too.
        if let Some(em) = &emitter {
            em.emit_terminal("cancelled");
        }
        return Err(AnalysisError::Cancelled);
    }

    let mut outcomes = Vec::with_capacity(results.len());
    let mut per_fault = Vec::with_capacity(results.len());
    for result in results {
        let (outcome, telemetry) = result.expect("complete campaign has every outcome");
        outcomes.push(outcome);
        per_fault.push(telemetry);
    }
    let panicked = outcomes
        .iter()
        .filter(|o| matches!(o.status, FaultStatus::Panicked { .. }))
        .count();

    let mut report = CampaignReport {
        golden: golden_sig,
        outcomes,
        threshold: config.threshold,
        stats: CampaignStats {
            golden_solver,
            golden_wall,
            per_fault,
            campaign_wall: campaign_start.elapsed(),
            panicked,
            journal_retries: 0,
        },
        degradation: None,
    };

    // Terminal record: `complete` for a healthy journal, `degraded`
    // (best-effort) for one that failed under Continue — a bounded
    // outage lets the degraded record land, making the journal
    // self-describing about its own gap.
    if let Some(js) = &journal_state {
        let mut writer = js.writer.lock().expect("journal lock");
        if !js.failed.load(Ordering::Acquire) {
            if let Err(err) = writer.append(&journal::complete_record(&js.label)) {
                if config.degrade == DegradePolicy::Abort {
                    return Err(AnalysisError::InvalidParameter(format!(
                        "campaign journal: write failed: {err}"
                    )));
                }
                // Continue: every fault outcome is journaled and the
                // campaign is complete — only the terminal record is
                // missing, so degrade with zero unjournaled faults.
                js.degrade(&err, config.degrade);
            }
        }
        if js.failed.load(Ordering::Acquire) {
            let degradation = JournalDegradation {
                journaled: js.journaled_total(),
                unjournaled: js.unjournaled.load(Ordering::Acquire),
                reason: js.reason(),
            };
            let _ = writer.append(&journal::degraded_record(
                &js.label,
                degradation.journaled,
                degradation.unjournaled,
                &degradation.reason,
            ));
            report.degradation = Some(degradation);
        }
        report.stats.journal_retries = writer.retries();
    }

    // Telemetry reaches the recorder only here, after collection, in
    // universe order — emission order is deterministic no matter how
    // the workers interleaved.
    if let Some(recorder) = &config.recorder {
        emit_campaign(recorder.as_ref(), &report);
    }

    // The terminal snapshot lands after the journal's own terminal
    // records, so a watcher seeing `state: "complete"` can rely on the
    // journal being finished too.
    if let Some(em) = &emitter {
        em.emit_terminal("complete");
    }

    Ok(report)
}

/// [`run_campaign_with`], forced to resume from the configured
/// checkpoint journal: faults already journaled under
/// [`JournalConfig::label`] are replayed (skipping their simulation)
/// and only the remainder is simulated, after which the report is
/// byte-identical — canonical text and canonical JSON — to the same
/// campaign run uninterrupted with any worker count.
///
/// A journal file that does not exist yet simply means nothing is
/// replayed; a journal whose metadata (fault universe, threshold,
/// golden-signature length) disagrees with this campaign is rejected.
///
/// # Errors
///
/// [`AnalysisError::InvalidParameter`] when `config` has no
/// [`CampaignConfig::journal`] or the journal belongs to a different
/// campaign, plus everything [`run_campaign_with`] returns.
pub fn run_campaign_resumed<F>(
    golden: &Netlist,
    faults: &[Fault],
    config: &CampaignConfig,
    extract: F,
) -> Result<CampaignReport, AnalysisError>
where
    F: Fn(&Netlist, &SolveSettings) -> Result<Vec<f64>, AnalysisError> + Sync,
{
    let Some(journal) = &config.journal else {
        return Err(AnalysisError::InvalidParameter(
            "run_campaign_resumed requires CampaignConfig::journal".into(),
        ));
    };
    let mut config = config.clone();
    config.journal = Some(JournalConfig {
        resume: true,
        ..journal.clone()
    });
    run_campaign_with(golden, faults, &config, extract)
}

/// Best-effort string form of a caught panic payload (`&str` and
/// `String` payloads cover `panic!` in practice).
fn panic_payload(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Publishes a completed campaign to a recorder: golden and per-fault
/// spans, summed solver counters, and one `campaign.rung.<i>` counter
/// per escalation-ladder rung that produced a signature.
fn emit_campaign(recorder: &dyn Recorder, report: &CampaignReport) {
    recorder.span("campaign.golden", report.stats.golden_wall);
    report.stats.golden_solver.emit_to(recorder);
    for t in &report.stats.per_fault {
        recorder.span("campaign.fault", t.wall);
        t.solver.emit_to(recorder);
    }
    recorder.add("campaign.faults", report.outcomes.len() as u64);
    recorder.add("campaign.detected", report.detected_count() as u64);
    recorder.add("campaign.panicked", report.stats.panicked as u64);
    recorder.add("campaign.journal.retries", report.stats.journal_retries);
    if let Some(d) = &report.degradation {
        recorder.add("campaign.journal.degraded", d.unjournaled as u64);
    }
    for (i, count) in report.stats.rung_histogram().iter().enumerate() {
        recorder.add(&format!("campaign.rung.{i}"), *count as u64);
    }
}

/// Runs a fault campaign with a settings-unaware extractor: one nominal
/// attempt per fault, serial execution.
///
/// This is the simple entry point for extractors that build their own
/// analysis configuration; [`run_campaign_with`] adds the escalation
/// ladder, budgets and parallelism.
///
/// # Errors
///
/// Returns the golden circuit's analysis error if the fault-free
/// extraction fails (per-fault failures are recorded in the report, not
/// propagated).
pub fn run_campaign<F>(
    golden: &Netlist,
    faults: &[Fault],
    threshold: f64,
    extract: F,
) -> Result<CampaignReport, AnalysisError>
where
    F: Fn(&Netlist) -> Result<Vec<f64>, AnalysisError> + Sync,
{
    let config = CampaignConfig::new(threshold)
        .ladder(vec![SolverRung::nominal()])
        .budget(SolveBudget::unlimited());
    run_campaign_with(golden, faults, &config, |nl, _settings| extract(nl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Fault;
    use anasim::dc::dc_operating_point;
    use anasim::source::SourceWaveform;
    use anasim::transient::TransientAnalysis;

    /// A divider whose mid-node voltage is the (1-sample) signature.
    fn divider_fixture() -> (Netlist, anasim::netlist::NodeId) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", a, b, 10e3);
        nl.resistor("R2", b, Netlist::GROUND, 10e3);
        (nl, b)
    }

    #[test]
    fn campaign_detects_hard_faults() {
        let (nl, b) = divider_fixture();
        let faults = vec![Fault::stuck_at_0("sa0", b), Fault::stuck_at_1("sa1", b)];
        let report = run_campaign(&nl, &faults, 0.5, |n| {
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        })
        .unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.coverage(50.0), 1.0);
        assert_eq!(report.detection_series(), vec![100.0, 100.0]);
        for o in &report.outcomes {
            assert!(matches!(o.status, FaultStatus::Detected { .. }));
        }
    }

    #[test]
    fn undetectable_fault_scores_zero() {
        let (nl, b) = divider_fixture();
        // A bridge across R2 with huge impedance barely moves the node.
        let a = nl.find_node("a").unwrap();
        let faults = vec![Fault::bridge("weak", a, b).with_impedance(1e9)];
        let report = run_campaign(&nl, &faults, 0.5, |n| {
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        })
        .unwrap();
        assert_eq!(report.coverage(50.0), 0.0);
        assert_eq!(report.detection_series(), vec![0.0]);
        assert!(matches!(
            report.outcomes[0].status,
            FaultStatus::Undetected { .. }
        ));
    }

    #[test]
    fn failed_fault_simulation_counts_as_detected() {
        let (nl, b) = divider_fixture();
        let faults = vec![Fault::stuck_at_0("sa0", b)];
        // Extractor that fails for any netlist containing a fault device.
        let report = run_campaign(&nl, &faults, 0.5, |n| {
            if n.find_device("fault:sa0:V").is_some() {
                Err(AnalysisError::NoConvergence {
                    time: 0.0,
                    residual: 1.0,
                    iterations: 1,
                })
            } else {
                Ok(vec![dc_operating_point(n)?.voltage(b)])
            }
        })
        .unwrap();
        assert!(report.outcomes[0].detection_pct().is_none());
        // Flight recorder disarmed: no postmortem rides the telemetry.
        assert!(report.stats.per_fault[0].postmortem.is_none());
        assert!(report.outcomes[0].is_detected(50.0));
        assert_eq!(report.coverage(50.0), 1.0);
        assert!(matches!(
            report.outcomes[0].status,
            FaultStatus::SimFailed { rungs_tried: 1, .. }
        ));
    }

    #[test]
    fn golden_failure_propagates() {
        let (nl, _) = divider_fixture();
        let err = run_campaign(&nl, &[], 0.5, |_| {
            Err(AnalysisError::InvalidParameter("boom".into()))
        });
        assert!(err.is_err());
    }

    #[test]
    fn empty_universe_has_full_coverage() {
        let (nl, b) = divider_fixture();
        let report = run_campaign(&nl, &[], 0.5, |n| {
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        })
        .unwrap();
        assert_eq!(report.coverage(50.0), 1.0);
        assert!(report.detection_series().is_empty());
    }

    #[test]
    fn empty_ladder_is_rejected() {
        let (nl, b) = divider_fixture();
        let config = CampaignConfig::new(0.5).ladder(Vec::new());
        let err = run_campaign_with(&nl, &[], &config, |n, _| {
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        });
        assert!(matches!(err, Err(AnalysisError::InvalidParameter(_))));
    }

    #[test]
    fn escalation_ladder_rescues_flaky_extraction() {
        use std::sync::atomic::AtomicUsize;
        let (nl, b) = divider_fixture();
        let faults = vec![Fault::stuck_at_0("sa0", b)];
        // Fail at nominal settings; succeed on any damped rung. This is
        // the shape of a fault circuit that only converges under
        // backward Euler.
        let calls = AtomicUsize::new(0);
        let config = CampaignConfig::new(0.5);
        let report = run_campaign_with(&nl, &faults, &config, |n, settings| {
            if n.find_device("fault:sa0:V").is_some() {
                calls.fetch_add(1, Ordering::Relaxed);
                if settings.rung.is_nominal() {
                    return Err(AnalysisError::NoConvergence {
                        time: 0.0,
                        residual: 1.0,
                        iterations: 1,
                    });
                }
            }
            Ok(vec![dc_operating_point(n)?.voltage(b)])
        })
        .unwrap();
        // Nominal failed, rung 1 succeeded.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert!(matches!(
            report.outcomes[0].status,
            FaultStatus::Detected { .. }
        ));
        assert_eq!(report.stats.per_fault[0].rung, Some(1));
        assert_eq!(report.stats.per_fault[0].rungs_tried, 2);
        assert_eq!(report.stats.rung_histogram(), vec![0, 1]);
    }

    #[test]
    fn budget_exhaustion_stops_the_ladder() {
        let (nl, b) = divider_fixture();
        let faults = vec![Fault::stuck_at_0("sa0", b)];
        let config = CampaignConfig::new(0.5);
        let report = run_campaign_with(&nl, &faults, &config, |n, _| {
            if n.find_device("fault:sa0:V").is_some() {
                Err(AnalysisError::BudgetExceeded {
                    time: 1e-6,
                    steps: 100,
                    kind: anasim::BudgetKind::Steps,
                })
            } else {
                Ok(vec![dc_operating_point(n)?.voltage(b)])
            }
        })
        .unwrap();
        // The ladder stops at the first BudgetExceeded: one rung tried.
        assert!(matches!(
            report.outcomes[0].status,
            FaultStatus::BudgetExceeded { rungs_tried: 1 }
        ));
        assert!(report.outcomes[0].is_detected(50.0));
    }

    #[test]
    fn signature_length_mismatch_is_typed() {
        let (nl, b) = divider_fixture();
        let faults = vec![Fault::stuck_at_0("sa0", b)];
        let report = run_campaign(&nl, &faults, 0.5, |n| {
            if n.find_device("fault:sa0:V").is_some() {
                Ok(vec![0.0, 1.0, 2.0])
            } else {
                Ok(vec![dc_operating_point(n)?.voltage(b)])
            }
        })
        .unwrap();
        assert!(matches!(
            report.outcomes[0].status,
            FaultStatus::SignatureMismatch { got: 3, want: 1 }
        ));
        assert!(report.outcomes[0].is_detected(50.0));
        assert_eq!(report.detection_series(), vec![100.0]);
    }

    /// A transient extraction over an RC circuit: the realistic path the
    /// campaign engine takes in the experiments.
    fn rc_fixture() -> (Netlist, Vec<Fault>) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::step(5.0, 1e-5));
        nl.resistor("R1", a, b, 10e3);
        nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
        nl.resistor("R2", b, c, 10e3);
        nl.capacitor("C2", c, Netlist::GROUND, 1e-9);
        let faults = vec![
            Fault::stuck_at_0("b-sa0", b),
            Fault::stuck_at_1("b-sa1", b),
            Fault::stuck_at_0("c-sa0", c),
            Fault::stuck_at_1("c-sa1", c),
            Fault::bridge("b-c-br", b, c),
            Fault::bridge("a-c-br", a, c).with_impedance(1e9),
        ];
        (nl, faults)
    }

    fn transient_extract(
        nl: &Netlist,
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        let c = nl.find_node("c").expect("node c");
        let result = TransientAnalysis::new(2e-4, 2e-6)
            .with_settings(settings)
            .run(nl)?;
        let w = result.voltage(c);
        Ok((0..20).map(|k| w.value_at(k as f64 * 1e-5)).collect())
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let (nl, faults) = rc_fixture();
        let serial = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05).workers(1),
            transient_extract,
        )
        .unwrap();
        let parallel = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05).workers(4),
            transient_extract,
        )
        .unwrap();
        assert_eq!(serial.canonical_text(), parallel.canonical_text());
        // And with more workers than faults.
        let oversubscribed = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05).workers(32),
            transient_extract,
        )
        .unwrap();
        assert_eq!(serial.canonical_text(), oversubscribed.canonical_text());
    }

    #[test]
    fn telemetry_counts_newton_iterations_per_fault() {
        let (nl, faults) = rc_fixture();
        let report = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05),
            transient_extract,
        )
        .unwrap();
        assert_eq!(report.stats.per_fault.len(), faults.len());
        assert!(report.stats.golden_newton_iterations() > 0);
        for t in &report.stats.per_fault {
            assert!(t.newton_iterations() > 0, "telemetry missing iterations");
            assert!(t.solver.steps_accepted > 0, "telemetry missing steps");
            assert!(t.rungs_tried >= 1);
        }
        assert!(report.stats.total_newton_iterations() > 0);
        assert!(report.stats.total_solver().newton_iterations > 0);
        assert!(report.stats.total_wall() > Duration::ZERO);
    }

    #[test]
    fn canonical_text_lists_every_fault() {
        let (nl, faults) = rc_fixture();
        let report = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05),
            transient_extract,
        )
        .unwrap();
        let text = report.canonical_text();
        for fault in &faults {
            assert!(text.contains(fault.name()), "missing {}", fault.name());
        }
        assert!(text.starts_with("campaign: 6 faults"));
        assert!(text.contains("coverage@50%"));
    }

    #[test]
    fn per_fault_telemetry_stays_in_universe_order_across_worker_counts() {
        let (nl, faults) = rc_fixture();
        let reference = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05).workers(1),
            transient_extract,
        )
        .unwrap();
        for workers in [2, 3, 8] {
            let report = run_campaign_with(
                &nl,
                &faults,
                &CampaignConfig::new(0.05).workers(workers),
                transient_extract,
            )
            .unwrap();
            // Outcomes align with the fault universe positionally...
            for (i, fault) in faults.iter().enumerate() {
                assert_eq!(
                    report.outcomes[i].fault.name(),
                    fault.name(),
                    "outcome {i} out of order at {workers} workers"
                );
            }
            // ...and the telemetry rows carry the same per-index solver
            // counts as the serial run (solver work is deterministic, so
            // a shuffled row would show a different count).
            assert_eq!(report.stats.per_fault.len(), faults.len());
            for (i, (t, t_ref)) in report
                .stats
                .per_fault
                .iter()
                .zip(&reference.stats.per_fault)
                .enumerate()
            {
                assert_eq!(
                    t.solver, t_ref.solver,
                    "telemetry row {i} differs at {workers} workers"
                );
                assert_eq!(t.rung, t_ref.rung);
                assert_eq!(t.rungs_tried, t_ref.rungs_tried);
            }
        }
    }

    #[test]
    fn run_report_is_byte_identical_across_worker_counts() {
        let (nl, faults) = rc_fixture();
        let canonical = |workers: usize| {
            let report = run_campaign_with(
                &nl,
                &faults,
                &CampaignConfig::new(0.05).workers(workers),
                transient_extract,
            )
            .unwrap();
            let mut run = obs::RunReport::new();
            run.push(report.to_section("campaign.rc"));
            run.canonical_json_string()
        };
        let serial = canonical(1);
        assert_eq!(serial, canonical(4));
        let parsed = obs::json::parse(&serial).unwrap();
        let summary = parsed.get("summary").unwrap();
        assert!(summary.get("coverage").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            summary
                .get("newton_iterations")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn recorder_sees_campaign_spans_and_counters() {
        let (nl, faults) = rc_fixture();
        let recorder = Arc::new(obs::AggregatingRecorder::new());
        let config = CampaignConfig::new(0.05)
            .workers(2)
            .recorder(recorder.clone());
        let report = run_campaign_with(&nl, &faults, &config, transient_extract).unwrap();
        let agg = recorder.snapshot();
        assert_eq!(agg.spans["campaign.golden"].count(), 1);
        assert_eq!(agg.spans["campaign.fault"].count(), faults.len());
        assert_eq!(agg.counters["campaign.faults"], faults.len() as u64);
        assert_eq!(
            agg.counters["solver.newton_iterations"],
            report.stats.total_solver().newton_iterations
        );
        // The rung histogram reaches the recorder as indexed counters.
        let rungs: u64 = (0..report.stats.rung_histogram().len())
            .map(|i| agg.counters[&format!("campaign.rung.{i}")])
            .sum();
        assert_eq!(
            rungs,
            report.stats.per_fault.iter().filter(|t| t.rung.is_some()).count() as u64
        );
    }

    #[test]
    fn campaign_section_carries_solver_and_rung_telemetry() {
        let (nl, faults) = rc_fixture();
        let report = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05),
            transient_extract,
        )
        .unwrap();
        let section = report.to_section("campaign.rc");
        assert_eq!(section.counters["faults"], faults.len() as u64);
        assert_eq!(
            section.counters["solver.newton_iterations"],
            report.stats.total_solver().newton_iterations
        );
        assert_eq!(
            section.histograms["escalation_rungs"].iter().sum::<u64>() as usize,
            report.stats.per_fault.iter().filter(|t| t.rung.is_some()).count()
        );
        assert_eq!(
            section.timings["campaign.fault"].count(),
            faults.len()
        );
        let cov = section.values["coverage"];
        assert!((0.0..=100.0).contains(&cov));
    }

    /// A fixture whose fault is *deterministically* unsolvable: the
    /// golden circuit is a mild divider with a reverse-biased diode
    /// (nonlinear, so no linear fast path, but trivially convergent),
    /// while the stuck-at-1 fault demands the injected 5 V generator
    /// node travel further than Newton can move under the tight
    /// `max_iterations × vstep_limit` product below. A `Uic` start
    /// keeps the DC homotopies (which would rescue the clamp by source
    /// stepping) out of the picture, and `min_dt = dt` forbids the
    /// halving rescue — so every escalation rung fails the same way.
    fn divergent_fixture() -> (Netlist, Vec<Fault>) {
        let mut nl = Netlist::new();
        let a = nl.node("in");
        let b = nl.node("out");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(0.2));
        nl.resistor("R1", a, b, 1e3);
        nl.resistor("R2", b, Netlist::GROUND, 1e3);
        nl.diode(
            "D1",
            Netlist::GROUND,
            b,
            anasim::devices::DiodeParams::default(),
        );
        // Both stuck-at-1 clamps demand an unreachable 5 V generator
        // node; two faults make the parallel byte-stability test use
        // more than one worker for real.
        let faults = vec![
            Fault::stuck_at_1("diverge", b),
            Fault::stuck_at_1("diverge-in", a),
        ];
        (nl, faults)
    }

    fn tight_extract(
        nl: &Netlist,
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        use anasim::mna::NewtonOptions;
        use anasim::transient::StartCondition;
        let out = nl.find_node("out").expect("node out");
        let newton = NewtonOptions {
            max_iterations: 6,
            vstep_limit: 0.25,
            ..NewtonOptions::default()
        };
        let result = TransientAnalysis::new(1e-5, 1e-6)
            .start_condition(StartCondition::Uic)
            .newton_options(newton)
            .min_dt(1e-6)
            .with_settings(settings)
            .run(nl)?;
        let w = result.voltage(out);
        Ok((0..10).map(|k| w.value_at(k as f64 * 1e-6)).collect())
    }

    #[test]
    fn divergent_fault_freezes_a_postmortem() {
        let (nl, faults) = divergent_fixture();
        let config = CampaignConfig::new(0.05).flight(64);
        let report = run_campaign_with(&nl, &faults, &config, tight_extract).unwrap();

        // Every rung failed; the hard-fault convention detects it.
        assert!(matches!(
            report.outcomes[0].status,
            FaultStatus::SimFailed { rungs_tried: 4, .. }
        ));
        assert!(report.outcomes[0].is_detected(50.0));

        let pm = report.stats.per_fault[0]
            .postmortem
            .as_ref()
            .expect("terminal failure with armed flight freezes a postmortem");
        assert_eq!(pm.label, "diverge");
        assert!(!pm.trace.is_empty(), "iteration trace must not be empty");
        assert!(pm.total_iterations > 0);
        assert!(pm.residual.is_finite() && pm.residual > 0.0);
        // The worst node resolves to a real netlist name, not a
        // positional fallback.
        let (worst, count) = &pm.worst_nodes[0];
        assert!(!worst.is_empty() && !worst.starts_with("x["), "worst {worst}");
        assert_eq!(*worst, "fault:diverge:gen");
        assert!(*count > 0);
        for it in &pm.trace {
            assert!(!it.worst_node.starts_with("x["));
            assert_eq!(it.phase, "transient");
        }
        // The full ladder path is on record, each rung non-convergent.
        assert_eq!(pm.ladder.len(), 4);
        for step in &pm.ladder {
            assert_eq!(step.outcome, "no-convergence");
        }
        // And the campaign rollup surfaces the same offender.
        let top = report.top_offending_nodes();
        assert!(top.iter().any(|(n, _)| n == "fault:diverge:gen"), "{top:?}");
        assert!(top.iter().all(|(_, c)| *c > 0));
        let pms: Vec<_> = report.postmortems().collect();
        assert_eq!(pms.len(), 2);
        assert_eq!(pms[0].0, "diverge");
        assert_eq!(pms[1].0, "diverge-in");
    }

    #[test]
    fn postmortem_reports_are_byte_identical_across_worker_counts() {
        let (nl, faults) = divergent_fixture();
        let canonical = |workers: usize| {
            let config = CampaignConfig::new(0.05).flight(64).workers(workers);
            let report = run_campaign_with(&nl, &faults, &config, tight_extract).unwrap();
            let mut run = obs::RunReport::new();
            run.push(report.to_section("campaign.diverge"));
            run.canonical_json_string()
        };
        let serial = canonical(1);
        assert_eq!(serial, canonical(4));
        // The canonical bytes actually contain the postmortem.
        assert!(serial.contains("\"postmortems\""));
        assert!(serial.contains("fault:diverge:gen"));
        // The section counter rollup carries the top offender too.
        assert!(serial.contains("worst_node.fault:diverge:gen"));
    }

    #[test]
    fn canonical_text_names_the_worst_node_when_flight_is_armed() {
        let (nl, faults) = divergent_fixture();
        let config = CampaignConfig::new(0.05).flight(64);
        let report = run_campaign_with(&nl, &faults, &config, tight_extract).unwrap();
        let text = report.canonical_text();
        assert!(text.contains("[worst fault:diverge:gen]"), "{text}");
    }

    /// Wraps [`transient_extract`] with a panic on one named fault — the
    /// shape of a solver bug tripped by a pathological fault circuit.
    fn panicking_extract(
        nl: &Netlist,
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        if nl.find_device("fault:b-sa1:V").is_some() {
            panic!("solver invariant violated for b-sa1");
        }
        transient_extract(nl, settings)
    }

    #[test]
    fn panic_in_one_fault_is_isolated() {
        let (nl, faults) = rc_fixture();
        // Hide the panic backtraces this test deliberately provokes.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let config = CampaignConfig::new(0.05).workers(4);
        let report = run_campaign_with(&nl, &faults, &config, panicking_extract);
        std::panic::set_hook(prev_hook);
        let report = report.unwrap();

        // The panicking fault got a typed terminal outcome...
        let idx = faults.iter().position(|f| f.name() == "b-sa1").unwrap();
        match &report.outcomes[idx].status {
            FaultStatus::Panicked { payload } => {
                assert!(payload.contains("solver invariant violated"), "{payload}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // ...that counts as detected (hard-fault convention)...
        assert!(report.outcomes[idx].is_detected(50.0));
        assert_eq!(report.outcomes[idx].figure_pct(), 100.0);
        // ...while every other fault completed normally.
        for (i, o) in report.outcomes.iter().enumerate() {
            if i != idx {
                assert!(!matches!(o.status, FaultStatus::Panicked { .. }));
            }
        }
        assert_eq!(report.stats.panicked, 1);
        // The canonical text carries the [panic ...] marker and the
        // section carries the counter.
        let text = report.canonical_text();
        assert!(
            text.contains("b-sa1: panicked"),
            "missing panicked status: {text}"
        );
        assert!(
            text.contains("[panic solver invariant violated for b-sa1]"),
            "missing panic marker: {text}"
        );
        let section = report.to_section("campaign.panic");
        assert_eq!(section.counters["panicked.faults"], 1);
    }

    #[test]
    fn panicked_fault_freezes_a_postmortem_when_flight_is_armed() {
        let (nl, faults) = rc_fixture();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let config = CampaignConfig::new(0.05).flight(64);
        let report = run_campaign_with(&nl, &faults, &config, panicking_extract);
        std::panic::set_hook(prev_hook);
        let report = report.unwrap();
        let idx = faults.iter().position(|f| f.name() == "b-sa1").unwrap();
        let pm = report.stats.per_fault[idx]
            .postmortem
            .as_ref()
            .expect("panicked fault freezes a postmortem");
        assert_eq!(pm.label, "b-sa1");
        assert!(pm.error.starts_with("panic:"), "{}", pm.error);
        // The panic fired before the first Newton iteration, so the
        // trace is empty — but the escalation path records the rung
        // that died, tagged "panic".
        assert_eq!(pm.ladder.len(), 1);
        assert_eq!(pm.ladder[0].outcome, "panic");
    }

    #[test]
    fn section_counter_key_set_is_stable_without_panics() {
        let (nl, faults) = rc_fixture();
        let report = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05),
            transient_extract,
        )
        .unwrap();
        // Zero panics still emits the counter, so canonical diffs
        // between clean and panicky runs stay structural.
        let section = report.to_section("campaign.rc");
        assert_eq!(section.counters["panicked.faults"], 0);
        assert!(section.timings.contains_key("campaign.wall"));
        assert!(report.stats.campaign_wall > Duration::ZERO);
        // Serial campaign: elapsed time covers the summed per-fault
        // times (no overlap to double-count).
        assert!(report.stats.campaign_wall >= report.stats.golden_wall);
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("faultsim-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn cancellation_stops_at_the_fault_boundary_with_a_clean_journal() {
        let (nl, faults) = rc_fixture();
        let path = temp_journal("cancel.jsonl");
        let token = CancelToken::new();
        let config = CampaignConfig::new(0.05)
            .journal(JournalConfig::fresh(&path, "rc"))
            .cancel(token.clone());
        // Cancel while simulating c-sa0 (universe index 2): the two
        // faults before it complete and are journaled, c-sa0 itself is
        // abandoned, everything after is never claimed.
        let err = run_campaign_with(&nl, &faults, &config, |n, settings| {
            if n.find_device("fault:c-sa0:V").is_some() {
                token.cancel();
                return Err(AnalysisError::Cancelled);
            }
            transient_extract(n, settings)
        })
        .unwrap_err();
        assert_eq!(err, AnalysisError::Cancelled);

        // The journal is valid, replayable, and records the partial run.
        let replayed = journal::load(&path).unwrap();
        let campaign = replayed.campaign("rc").expect("campaign journaled");
        assert!(campaign.cancelled);
        assert!(!campaign.complete);
        assert_eq!(campaign.faults.len(), 2);
        assert!(campaign.faults.contains_key(&0));
        assert!(campaign.faults.contains_key(&1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumed_campaign_is_byte_identical_to_uninterrupted() {
        let (nl, faults) = rc_fixture();
        let reference = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05),
            transient_extract,
        )
        .unwrap();

        let path = temp_journal("resume.jsonl");
        let token = CancelToken::new();
        let config = CampaignConfig::new(0.05)
            .journal(JournalConfig::fresh(&path, "rc"))
            .cancel(token.clone());
        let err = run_campaign_with(&nl, &faults, &config, |n, settings| {
            if n.find_device("fault:c-sa0:V").is_some() {
                token.cancel();
                return Err(AnalysisError::Cancelled);
            }
            transient_extract(n, settings)
        })
        .unwrap_err();
        assert_eq!(err, AnalysisError::Cancelled);

        // Resume with a counting extractor: only the four faults that
        // never completed are re-simulated.
        let fault_calls = AtomicUsize::new(0);
        let config = CampaignConfig::new(0.05).journal(JournalConfig::fresh(&path, "rc"));
        let resumed = run_campaign_resumed(&nl, &faults, &config, |n, settings| {
            if n.devices().any(|(_, name, _)| name.starts_with("fault:")) {
                fault_calls.fetch_add(1, Ordering::Relaxed);
            }
            transient_extract(n, settings)
        })
        .unwrap();
        assert_eq!(fault_calls.load(Ordering::Relaxed), 4);

        assert_eq!(resumed.canonical_text(), reference.canonical_text());
        let canonical = |report: &CampaignReport| {
            let mut run = obs::RunReport::new();
            run.push(report.to_section("campaign.rc"));
            run.canonical_json_string()
        };
        assert_eq!(canonical(&resumed), canonical(&reference));

        // The journal now ends complete; a second resume replays
        // everything without simulating a single fault.
        let replayed = journal::load(&path).unwrap();
        assert!(replayed.campaign("rc").unwrap().complete);
        let again_calls = AtomicUsize::new(0);
        let again = run_campaign_resumed(&nl, &faults, &config, |n, settings| {
            if n.devices().any(|(_, name, _)| name.starts_with("fault:")) {
                again_calls.fetch_add(1, Ordering::Relaxed);
            }
            transient_extract(n, settings)
        })
        .unwrap();
        assert_eq!(again_calls.load(Ordering::Relaxed), 0);
        assert_eq!(again.canonical_text(), reference.canonical_text());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_foreign_journal() {
        let (nl, faults) = rc_fixture();
        let path = temp_journal("foreign.jsonl");
        // Journal a campaign over a different universe under the same
        // label.
        let config = CampaignConfig::new(0.05).journal(JournalConfig::fresh(&path, "rc"));
        run_campaign_with(&nl, &faults[..2], &config, transient_extract).unwrap();
        // Resuming the full universe from it must refuse.
        let err = run_campaign_resumed(&nl, &faults, &config, transient_extract).unwrap_err();
        assert!(
            matches!(&err, AnalysisError::InvalidParameter(msg)
                if msg.contains("different fault universe")),
            "{err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_missing_journal_runs_fresh() {
        let (nl, faults) = rc_fixture();
        let path = temp_journal("fresh-on-missing.jsonl");
        let config = CampaignConfig::new(0.05).journal(JournalConfig::resume(&path, "rc"));
        let report = run_campaign_with(&nl, &faults, &config, transient_extract).unwrap();
        assert_eq!(report.outcomes.len(), faults.len());
        assert!(journal::load(&path).unwrap().campaign("rc").unwrap().complete);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_campaign_resumed_requires_a_journal() {
        let (nl, faults) = rc_fixture();
        let err = run_campaign_resumed(
            &nl,
            &faults,
            &CampaignConfig::new(0.05),
            transient_extract,
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::InvalidParameter(_)));
    }

    #[test]
    fn linear_bridge_faults_reuse_golden_factorisations() {
        use obs::profile::Phase;
        // rc_fixture is linear, so its bridge faults are rank-1
        // perturbations of the golden matrix: their solves should go
        // through the golden factorisations via Sherman–Morrison
        // instead of factorising the faulty matrix per timestep.
        let (nl, faults) = rc_fixture();
        let config = CampaignConfig::new(0.05).profile(true);
        let report = run_campaign_with(&nl, &faults, &config, transient_extract).unwrap();
        let idx = faults.iter().position(|f| f.name() == "b-c-br").unwrap();
        let t = &report.stats.per_fault[idx];
        assert!(
            t.solver.factor_reuse_hits > 0,
            "bridge fault never reused a factorisation: {:?}",
            t.solver
        );
        assert!(
            t.solver.phases.calls(Phase::Rank1Update) > 0,
            "no Sherman–Morrison updates attributed: {:?}",
            t.solver.phases
        );
        // Reuse must far outnumber factorisations: the whole point is
        // that a faulty timestep costs back-substitutions, not LU.
        assert!(
            t.solver.factor_reuse_hits > t.solver.factor_reuse_misses,
            "hits {} vs misses {}",
            t.solver.factor_reuse_hits,
            t.solver.factor_reuse_misses
        );
        // The bridge outcome is unchanged by the reuse path: same
        // detection verdict the direct-solve tests established.
        assert!(matches!(
            report.outcomes[idx].status,
            FaultStatus::Detected { .. }
        ));
    }

    #[test]
    fn dense_and_sparse_backends_produce_identical_reports() {
        use anasim::solver::Backend;
        // The sparse LU replicates the dense pivoting and arithmetic,
        // so campaign reports — canonical text *and* canonical JSON —
        // must be byte-identical across backends.
        let (nl, faults) = rc_fixture();
        let run = |backend: Backend| {
            run_campaign_with(
                &nl,
                &faults,
                &CampaignConfig::new(0.05).backend(backend),
                transient_extract,
            )
            .unwrap()
        };
        let sparse = run(Backend::Sparse);
        let dense = run(Backend::Dense);
        assert_eq!(sparse.canonical_text(), dense.canonical_text());
        let canonical_json = |report: &CampaignReport| {
            let mut run = obs::RunReport::new();
            run.push(report.to_section("campaign.backend"));
            run.canonical_json_string()
        };
        assert_eq!(canonical_json(&sparse), canonical_json(&dense));
        // And the solutions themselves, not just the rendered reports:
        // every signature sample is bit-identical.
        for (s, d) in sparse.outcomes.iter().zip(&dense.outcomes) {
            match (&s.signature, &d.signature) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (va, vb) in a.iter().zip(b) {
                        assert_eq!(va.to_bits(), vb.to_bits(), "{va} vs {vb}");
                    }
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn numeric_chaos_sweep_yields_typed_outcomes_and_hazard_counters() {
        // Every chaos site armed at once: a forced pivot breakdown on
        // the first factorisation, a corrupted pivot on the second, a
        // poisoned solution on the third, and a degenerate rank-1
        // denominator on the first Sherman–Morrison attempt. The
        // campaign must absorb all of it through the demotion ladder:
        // typed statuses only, no panic, no NaN anywhere in the report.
        let (nl, faults) = rc_fixture();
        let plan =
            obs::NumericChaosPlan::parse("pivot@0,perturb@1,nan@2,denom@0").expect("valid spec");
        let report = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05).numeric_chaos(plan).flight(64),
            transient_extract,
        )
        .unwrap();
        let total = report.stats.total_solver();
        let hazards: u64 = total.hazards().iter().map(|(_, n)| n).sum();
        let demotions: u64 = total.demotions().iter().map(|(_, n)| n).sum();
        assert!(hazards > 0, "injected hazards must be counted: {total:?}");
        assert!(demotions > 0, "recovery must demote: {total:?}");
        for o in &report.outcomes {
            assert!(
                !matches!(o.status, FaultStatus::Panicked { .. }),
                "chaos must never panic: {:?}",
                o.status
            );
            if let Some(sig) = &o.signature {
                assert!(
                    sig.iter().all(|v| v.is_finite()),
                    "NaN leaked into a signature"
                );
            }
        }
        let text = report.canonical_text();
        assert!(!text.contains("NaN"), "NaN leaked into the report:\n{text}");
        assert!(
            text.contains("[hazard "),
            "hazard marker missing from canonical text:\n{text}"
        );
        assert!(
            text.contains("demote "),
            "demotion marker missing from canonical text:\n{text}"
        );
    }

    #[test]
    fn numeric_chaos_report_is_worker_count_deterministic() {
        // Injection is keyed to each fault's own solve sequence (a
        // fresh firing state per fault), so scheduling must not shift
        // which solves get hit.
        let (nl, faults) = rc_fixture();
        let run = |workers: usize| {
            let plan = obs::NumericChaosPlan::parse("pivot@0,nan@3").expect("valid spec");
            run_campaign_with(
                &nl,
                &faults,
                &CampaignConfig::new(0.05).numeric_chaos(plan).workers(workers),
                transient_extract,
            )
            .unwrap()
        };
        assert_eq!(run(1).canonical_text(), run(4).canonical_text());
    }

    #[test]
    fn disarmed_numeric_chaos_is_byte_identical_to_none() {
        // A plan whose windows never fire must not perturb a single
        // byte of the canonical report — the probes themselves (gate
        // checks, counters) are exercised but observe nothing.
        let (nl, faults) = rc_fixture();
        let plain = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05),
            transient_extract,
        )
        .unwrap();
        let inert = obs::NumericChaosPlan::parse("pivot@99999999").expect("valid spec");
        let armed = run_campaign_with(
            &nl,
            &faults,
            &CampaignConfig::new(0.05).numeric_chaos(inert),
            transient_extract,
        )
        .unwrap();
        assert_eq!(plain.canonical_text(), armed.canonical_text());
        let total = armed.stats.total_solver();
        assert!(
            total.hazards().iter().all(|(_, n)| *n == 0)
                && total.demotions().iter().all(|(_, n)| *n == 0)
                && total.refinement_rounds == 0,
            "healthy run must keep every resilience counter at zero: {total:?}"
        );
    }
}
