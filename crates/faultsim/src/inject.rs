//! Netlist transformation: adding fault hardware.

use anasim::netlist::Netlist;
use anasim::source::SourceWaveform;

use crate::model::{Fault, FaultKind, ParamChange};

/// Returns a copy of `golden` with the fault's hardware added.
///
/// Stuck-at faults become a DC voltage generator (0 V or the fault rail)
/// in series with the fault impedance to the affected node — exactly the
/// paper's injection mechanism. Bridges become a resistor of the fault
/// impedance between the two nodes.
///
/// Injected elements are named `fault:{name}:...`, so they never collide
/// with circuit elements.
pub fn inject(golden: &Netlist, fault: &Fault) -> Netlist {
    let mut faulty = golden.clone();
    let name = fault.name();
    match fault.kind() {
        FaultKind::StuckAt0 { node } => {
            let gen = faulty.node(&format!("fault:{name}:gen"));
            faulty.vsource(
                &format!("fault:{name}:V"),
                gen,
                Netlist::GROUND,
                SourceWaveform::dc(0.0),
            );
            faulty.resistor(&format!("fault:{name}:R"), gen, node, fault.impedance());
        }
        FaultKind::StuckAt1 { node } => {
            let gen = faulty.node(&format!("fault:{name}:gen"));
            faulty.vsource(
                &format!("fault:{name}:V"),
                gen,
                Netlist::GROUND,
                SourceWaveform::dc(fault.rail()),
            );
            faulty.resistor(&format!("fault:{name}:R"), gen, node, fault.impedance());
        }
        FaultKind::Bridge { a, b } => {
            faulty.resistor(&format!("fault:{name}:R"), a, b, fault.impedance());
        }
        FaultKind::Parametric { device, change } => {
            use anasim::devices::Device;
            match (faulty.device_mut(device), change) {
                (Device::Resistor { ohms, .. }, ParamChange::ScaleResistor(k)) => *ohms *= k,
                (Device::Capacitor { farads, .. }, ParamChange::ScaleCapacitor(k)) => {
                    *farads *= k
                }
                (Device::Mosfet { params, .. }, ParamChange::ScaleBeta(k)) => {
                    params.beta *= k
                }
                (Device::Mosfet { params, .. }, ParamChange::ShiftVt(dv)) => {
                    params.vt0 += dv
                }
                (dev, change) => panic!(
                    "parametric change {change:?} does not apply to {dev:?}"
                ),
            }
        }
        FaultKind::DoubleStuck { a, b, high } => {
            let level = if high { fault.rail() } else { 0.0 };
            let gen = faulty.node(&format!("fault:{name}:gen"));
            faulty.vsource(
                &format!("fault:{name}:V"),
                gen,
                Netlist::GROUND,
                SourceWaveform::dc(level),
            );
            faulty.resistor(&format!("fault:{name}:RA"), gen, a, fault.impedance());
            faulty.resistor(&format!("fault:{name}:RB"), gen, b, fault.impedance());
        }
    }
    faulty
}

/// Injects several faults at once (multiple simultaneous defects).
pub fn inject_all(golden: &Netlist, faults: &[Fault]) -> Netlist {
    let mut nl = golden.clone();
    for f in faults {
        nl = inject(&nl, f);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;

    fn divider() -> (Netlist, anasim::netlist::NodeId) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", a, b, 10e3);
        nl.resistor("R2", b, Netlist::GROUND, 10e3);
        (nl, b)
    }

    #[test]
    fn golden_netlist_is_untouched() {
        let (nl, b) = divider();
        let count = nl.device_count();
        let _ = inject(&nl, &Fault::stuck_at_0("f", b));
        assert_eq!(nl.device_count(), count);
    }

    #[test]
    fn stuck_at_0_pulls_node_low() {
        let (nl, b) = divider();
        let faulty = inject(&nl, &Fault::stuck_at_0("f", b));
        let op = dc_operating_point(&faulty).unwrap();
        // 100 ohm clamp against 10k divider: node collapses near 0.
        assert!(op.voltage(b) < 0.1);
    }

    #[test]
    fn stuck_at_1_pulls_node_high() {
        let (nl, b) = divider();
        let faulty = inject(&nl, &Fault::stuck_at_1("f", b));
        let op = dc_operating_point(&faulty).unwrap();
        assert!(op.voltage(b) > 4.8);
    }

    #[test]
    fn bridge_ties_nodes_together() {
        let (nl, b) = divider();
        let a = nl.find_node("a").unwrap();
        let faulty = inject(&nl, &Fault::bridge("f", a, b));
        let op = dc_operating_point(&faulty).unwrap();
        // 100 ohms across R1 (10k): v(b) rises to nearly v(a).
        assert!((op.voltage(b) - op.voltage(a)).abs() < 0.2);
    }

    #[test]
    fn impedance_controls_clamp_strength() {
        let (nl, b) = divider();
        let weak = inject(&nl, &Fault::stuck_at_0("f", b).with_impedance(10e3));
        let op = dc_operating_point(&weak).unwrap();
        // 10k clamp against the 10k||10k divider: only partial pull.
        let v = op.voltage(b);
        assert!(v > 1.0 && v < 2.5, "partial clamp gave {v}");
    }

    #[test]
    fn double_stuck_clamps_both_nodes() {
        // Three-stage divider so both clamped nodes are high impedance.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let c = nl.node("c");
        nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(5.0));
        nl.resistor("R1", a, b, 10e3);
        nl.resistor("R2", b, c, 10e3);
        nl.resistor("R3", c, Netlist::GROUND, 10e3);
        let faulty = inject(&nl, &Fault::double_stuck("f", b, c, true));
        let op = dc_operating_point(&faulty).unwrap();
        assert!(op.voltage(b) > 4.5, "b = {}", op.voltage(b));
        assert!(op.voltage(c) > 4.5, "c = {}", op.voltage(c));
    }

    #[test]
    fn parametric_resistor_drift_moves_divider() {
        let (nl, b) = divider();
        let r2 = nl.find_device("R2").unwrap();
        let faulty = inject(
            &nl,
            &Fault::parametric("r2-drift", r2, crate::model::ParamChange::ScaleResistor(3.0)),
        );
        let op = dc_operating_point(&faulty).unwrap();
        // R2 tripled: v(b) = 5 * 30k/40k = 3.75.
        assert!((op.voltage(b) - 3.75).abs() < 1e-3);
        // Parametric faults add no hardware.
        assert_eq!(faulty.device_count(), nl.device_count());
    }

    #[test]
    fn parametric_vt_shift_applies_to_mosfet() {
        let mut nl = Netlist::new();
        let d = nl.node("d");
        nl.vsource("V1", d, Netlist::GROUND, SourceWaveform::dc(5.0));
        let m = nl.mosfet(
            "M1",
            d,
            d,
            Netlist::GROUND,
            anasim::devices::MosPolarity::Nmos,
            anasim::devices::MosParams::nmos_5um(),
        );
        let faulty = inject(
            &nl,
            &Fault::parametric("vt-shift", m, crate::model::ParamChange::ShiftVt(0.3)),
        );
        match faulty.device(m) {
            anasim::devices::Device::Mosfet { params, .. } => {
                assert!((params.vt0 - 1.3).abs() < 1e-12)
            }
            _ => panic!("expected mosfet"),
        }
    }

    #[test]
    #[should_panic(expected = "does not apply")]
    fn mismatched_parametric_change_panics() {
        let (nl, _) = divider();
        let r1 = nl.find_device("R1").unwrap();
        let _ = inject(
            &nl,
            &Fault::parametric("bad", r1, crate::model::ParamChange::ShiftVt(0.1)),
        );
    }

    #[test]
    fn multiple_faults_compose() {
        let (nl, b) = divider();
        let a = nl.find_node("a").unwrap();
        let faulty = inject_all(
            &nl,
            &[Fault::stuck_at_0("f0", b), Fault::bridge("f1", a, b)],
        );
        // Both fault elements present.
        assert!(faulty.find_device("fault:f0:V").is_some());
        assert!(faulty.find_device("fault:f1:R").is_some());
    }
}
