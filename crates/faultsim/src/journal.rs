//! The campaign checkpoint journal: schema `mixsig.campaign-journal/1`.
//!
//! A journal is an append-only JSONL file (written through
//! [`obs::journal::JournalWriter`], one fsync'd line per record) that
//! checkpoints a fault campaign as it runs, so a crash, kill or
//! cancellation loses at most the faults that were in flight. The
//! record stream is:
//!
//! * `start` — one per campaign (re)launch: label, fault universe
//!   (names in order), detection threshold and golden-signature length,
//!   so a resume can refuse a journal that belongs to a different
//!   campaign;
//! * `fault` — one per *completed* fault, appended from whichever
//!   worker finished it (completion order, not universe order; the
//!   `index` field restores universe order on replay). Carries the full
//!   [`FaultStatus`], the signature, and the per-fault telemetry
//!   including any frozen postmortem;
//! * `complete` / `cancelled` — the terminal record. A journal with no
//!   terminal record for a label was hard-killed mid-campaign.
//!
//! Several campaigns may share one journal file (the experiment harness
//! runs six per invocation); records are tagged with their campaign
//! label and [`replay`] groups them. A resumed campaign appends a fresh
//! `start` for the same label; replay merges fault records for a label
//! across segments by index, later wins.
//!
//! Every float crosses the file through [`float_to_json`] /
//! [`float_from_json`]: finite values use the shortest-roundtrip
//! formatting of `obs::json` (exact `f64` round trip), non-finite
//! values are encoded as the strings `"nan"` / `"inf"` / `"-inf"`
//! rather than JSON `null`, so a replayed record is *bit-identical* to
//! the one that was journaled — the foundation of the resume
//! byte-identity guarantee.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use anasim::metrics::SolverSnapshot;
use anasim::{AnalysisError, BudgetKind};
use obs::json::JsonValue;
use obs::journal::{read_journal, JournalContents};
use obs::Postmortem;

use crate::campaign::{FaultStatus, FaultTelemetry};
use crate::model::Fault;

/// Schema identifier stamped into every `start` record.
pub const SCHEMA: &str = "mixsig.campaign-journal/1";

// ---------------------------------------------------------------------
// Exact float round trip
// ---------------------------------------------------------------------

/// Encodes an `f64` for the journal: finite values as JSON numbers
/// (shortest-roundtrip, exact), non-finite as `"nan"`/`"inf"`/`"-inf"`
/// strings (JSON `null` would erase the sign and NaN-ness). Negative
/// zero gets its own `"-0"` marker — the integer fast path of the JSON
/// number writer would drop its sign.
pub fn float_to_json(v: f64) -> JsonValue {
    if v == 0.0 && v.is_sign_negative() {
        JsonValue::Str("-0".into())
    } else if v.is_finite() {
        JsonValue::Num(v)
    } else if v.is_nan() {
        JsonValue::Str("nan".into())
    } else if v > 0.0 {
        JsonValue::Str("inf".into())
    } else {
        JsonValue::Str("-inf".into())
    }
}

/// Decodes a [`float_to_json`] value.
///
/// # Errors
///
/// Anything that is neither a number nor one of the non-finite markers.
pub fn float_from_json(v: &JsonValue) -> Result<f64, String> {
    match v {
        JsonValue::Num(n) => Ok(*n),
        JsonValue::Str(s) => match s.as_str() {
            "nan" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "-0" => Ok(-0.0),
            other => Err(format!("not a float: {other:?}")),
        },
        other => Err(format!("not a float: {other:?}")),
    }
}

fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    float_from_json(get(v, key)?)
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    let n = get(v, key)?
        .as_f64()
        .ok_or_else(|| format!("key {key:?} is not a number"))?;
    Ok(n as usize)
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| format!("key {key:?} is not a string"))
}

// ---------------------------------------------------------------------
// AnalysisError codec (needed by FaultStatus::SimFailed)
// ---------------------------------------------------------------------

fn error_to_json(err: &AnalysisError) -> JsonValue {
    let mut obj = JsonValue::object();
    match err {
        AnalysisError::NoConvergence {
            time,
            residual,
            iterations,
        } => {
            obj.push("kind", JsonValue::Str("no-convergence".into()));
            obj.push("time", float_to_json(*time));
            obj.push("residual", float_to_json(*residual));
            obj.push("iterations", JsonValue::Num(*iterations as f64));
        }
        AnalysisError::SingularMatrix { row } => {
            obj.push("kind", JsonValue::Str("singular-matrix".into()));
            obj.push("row", JsonValue::Num(*row as f64));
        }
        AnalysisError::InvalidParameter(msg) => {
            obj.push("kind", JsonValue::Str("invalid-parameter".into()));
            obj.push("message", JsonValue::Str(msg.clone()));
        }
        AnalysisError::UnknownElement(name) => {
            obj.push("kind", JsonValue::Str("unknown-element".into()));
            obj.push("message", JsonValue::Str(name.clone()));
        }
        AnalysisError::BudgetExceeded { time, steps, kind } => {
            obj.push("kind", JsonValue::Str("budget-exceeded".into()));
            obj.push("time", float_to_json(*time));
            obj.push("steps", JsonValue::Num(*steps as f64));
            obj.push(
                "budget",
                JsonValue::Str(
                    match kind {
                        BudgetKind::Steps => "steps",
                        BudgetKind::WallClock => "wall-clock",
                    }
                    .into(),
                ),
            );
        }
        AnalysisError::Cancelled => {
            obj.push("kind", JsonValue::Str("cancelled".into()));
        }
        AnalysisError::Numerical { hazard, time } => {
            obj.push("kind", JsonValue::Str("numerical".into()));
            obj.push("hazard", JsonValue::Str(hazard.label().into()));
            obj.push("time", float_to_json(*time));
        }
    }
    obj
}

fn error_from_json(v: &JsonValue) -> Result<AnalysisError, String> {
    Ok(match get_str(v, "kind")? {
        "no-convergence" => AnalysisError::NoConvergence {
            time: get_f64(v, "time")?,
            residual: get_f64(v, "residual")?,
            iterations: get_usize(v, "iterations")?,
        },
        "singular-matrix" => AnalysisError::SingularMatrix {
            row: get_usize(v, "row")?,
        },
        "invalid-parameter" => AnalysisError::InvalidParameter(get_str(v, "message")?.to_owned()),
        "unknown-element" => AnalysisError::UnknownElement(get_str(v, "message")?.to_owned()),
        "budget-exceeded" => AnalysisError::BudgetExceeded {
            time: get_f64(v, "time")?,
            steps: get_usize(v, "steps")?,
            kind: match get_str(v, "budget")? {
                "steps" => BudgetKind::Steps,
                "wall-clock" => BudgetKind::WallClock,
                other => return Err(format!("unknown budget kind {other:?}")),
            },
        },
        "cancelled" => AnalysisError::Cancelled,
        "numerical" => {
            let label = get_str(v, "hazard")?;
            AnalysisError::Numerical {
                hazard: linsys::NumericalHazard::from_label(label)
                    .ok_or_else(|| format!("unknown hazard label {label:?}"))?,
                time: get_f64(v, "time")?,
            }
        }
        other => return Err(format!("unknown error kind {other:?}")),
    })
}

// ---------------------------------------------------------------------
// FaultStatus codec
// ---------------------------------------------------------------------

/// Encodes a [`FaultStatus`] as a tagged JSON object.
pub fn status_to_json(status: &FaultStatus) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("tag", JsonValue::Str(status.tag().into()));
    match status {
        FaultStatus::Detected { pct } | FaultStatus::Undetected { pct } => {
            obj.push("pct", float_to_json(*pct));
        }
        FaultStatus::SimFailed { error, rungs_tried } => {
            obj.push("error", error_to_json(error));
            obj.push("rungs_tried", JsonValue::Num(*rungs_tried as f64));
        }
        FaultStatus::BudgetExceeded { rungs_tried } => {
            obj.push("rungs_tried", JsonValue::Num(*rungs_tried as f64));
        }
        FaultStatus::SignatureMismatch { got, want } => {
            obj.push("got", JsonValue::Num(*got as f64));
            obj.push("want", JsonValue::Num(*want as f64));
        }
        FaultStatus::Panicked { payload } => {
            obj.push("payload", JsonValue::Str(payload.clone()));
        }
    }
    obj
}

/// Decodes a [`status_to_json`] object.
///
/// # Errors
///
/// Unknown tags or missing/mistyped fields.
pub fn status_from_json(v: &JsonValue) -> Result<FaultStatus, String> {
    Ok(match get_str(v, "tag")? {
        "detected" => FaultStatus::Detected {
            pct: get_f64(v, "pct")?,
        },
        "undetected" => FaultStatus::Undetected {
            pct: get_f64(v, "pct")?,
        },
        "sim-failed" => FaultStatus::SimFailed {
            error: error_from_json(get(v, "error")?)?,
            rungs_tried: get_usize(v, "rungs_tried")?,
        },
        "budget-exceeded" => FaultStatus::BudgetExceeded {
            rungs_tried: get_usize(v, "rungs_tried")?,
        },
        "signature-mismatch" => FaultStatus::SignatureMismatch {
            got: get_usize(v, "got")?,
            want: get_usize(v, "want")?,
        },
        "panicked" => FaultStatus::Panicked {
            payload: get_str(v, "payload")?.to_owned(),
        },
        other => Err(format!("unknown status tag {other:?}"))?,
    })
}

// ---------------------------------------------------------------------
// Telemetry codec
// ---------------------------------------------------------------------

/// Encodes a [`FaultTelemetry`] (solver counters by field name, rung
/// indices, wall milliseconds, optional postmortem).
pub fn telemetry_to_json(t: &FaultTelemetry) -> JsonValue {
    let mut solver = JsonValue::object();
    for (field, value) in SolverSnapshot::FIELDS.iter().zip(t.solver.as_array()) {
        solver.push(field, JsonValue::Num(value as f64));
    }
    let mut obj = JsonValue::object();
    obj.push("solver", solver);
    obj.push(
        "rung",
        t.rung.map_or(JsonValue::Null, |r| JsonValue::Num(r as f64)),
    );
    obj.push("rungs_tried", JsonValue::Num(t.rungs_tried as f64));
    obj.push("wall_ms", float_to_json(t.wall.as_secs_f64() * 1e3));
    obj.push(
        "postmortem",
        t.postmortem
            .as_ref()
            .map_or(JsonValue::Null, Postmortem::to_json),
    );
    obj
}

/// Decodes a [`telemetry_to_json`] object.
///
/// # Errors
///
/// Missing or mistyped fields.
pub fn telemetry_from_json(v: &JsonValue) -> Result<FaultTelemetry, String> {
    let solver_obj = get(v, "solver")?;
    let mut solver = SolverSnapshot::default();
    let fields: [&mut u64; 19] = [
        &mut solver.newton_iterations,
        &mut solver.steps_accepted,
        &mut solver.steps_rejected,
        &mut solver.dt_shrinks,
        &mut solver.dc_gmin_steps,
        &mut solver.dc_source_steps,
        &mut solver.factor_reuse_hits,
        &mut solver.factor_reuse_misses,
        &mut solver.hazard_near_singular_pivot,
        &mut solver.hazard_pivot_growth,
        &mut solver.hazard_rank1_breakdown,
        &mut solver.hazard_nonfinite,
        &mut solver.hazard_refinement_stall,
        &mut solver.hazard_ill_conditioned,
        &mut solver.demote_stale,
        &mut solver.demote_refactor,
        &mut solver.demote_symbolic,
        &mut solver.demote_dense,
        &mut solver.refinement_rounds,
    ];
    for (field, slot) in SolverSnapshot::FIELDS.iter().zip(fields) {
        // Counters absent from the record default to zero, so journals
        // written before a counter existed keep replaying.
        *slot = match get(solver_obj, field) {
            Ok(value) => value
                .as_f64()
                .ok_or_else(|| format!("solver counter {field:?} is not a number"))?
                as u64,
            Err(_) => 0,
        };
    }
    let rung = match get(v, "rung")? {
        JsonValue::Null => None,
        other => Some(
            other
                .as_f64()
                .ok_or_else(|| "rung is not a number".to_owned())? as usize,
        ),
    };
    let postmortem = match get(v, "postmortem")? {
        JsonValue::Null => None,
        other => Some(Postmortem::from_json(other)?),
    };
    // Worker lane, start offset and solver phase times are live
    // wall-clock measurements, not campaign semantics: they are never
    // journaled, so replayed telemetry carries the defaults (lane 0,
    // zero offset, zero phases).
    Ok(FaultTelemetry {
        solver,
        rung,
        rungs_tried: get_usize(v, "rungs_tried")?,
        wall: Duration::from_secs_f64(get_f64(v, "wall_ms")?.max(0.0) / 1e3),
        postmortem,
        ..FaultTelemetry::default()
    })
}

// ---------------------------------------------------------------------
// Record constructors
// ---------------------------------------------------------------------

/// Builds the `start` record for a campaign (re)launch.
pub fn start_record(label: &str, faults: &[Fault], threshold: f64, golden_len: usize) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("record", JsonValue::Str("start".into()));
    obj.push("schema", JsonValue::Str(SCHEMA.into()));
    obj.push("label", JsonValue::Str(label.into()));
    obj.push("faults", JsonValue::Num(faults.len() as f64));
    obj.push(
        "names",
        JsonValue::Arr(
            faults
                .iter()
                .map(|f| JsonValue::Str(f.name().to_owned()))
                .collect(),
        ),
    );
    obj.push("threshold", float_to_json(threshold));
    obj.push("golden_len", JsonValue::Num(golden_len as f64));
    obj
}

/// Builds the per-completed-fault `fault` record.
pub fn fault_record(
    label: &str,
    index: usize,
    name: &str,
    signature: Option<&[f64]>,
    status: &FaultStatus,
    telemetry: &FaultTelemetry,
) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("record", JsonValue::Str("fault".into()));
    obj.push("label", JsonValue::Str(label.into()));
    obj.push("index", JsonValue::Num(index as f64));
    obj.push("name", JsonValue::Str(name.into()));
    obj.push(
        "signature",
        signature.map_or(JsonValue::Null, |sig| {
            JsonValue::Arr(sig.iter().map(|&v| float_to_json(v)).collect())
        }),
    );
    obj.push("status", status_to_json(status));
    obj.push("telemetry", telemetry_to_json(telemetry));
    obj
}

/// Builds the clean-completion terminal record.
pub fn complete_record(label: &str) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("record", JsonValue::Str("complete".into()));
    obj.push("label", JsonValue::Str(label.into()));
    obj
}

/// Builds the cooperative-cancellation terminal record. `completed` is
/// the number of faults with journaled outcomes at the point of
/// cancellation (including replayed ones).
pub fn cancelled_record(label: &str, completed: usize) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("record", JsonValue::Str("cancelled".into()));
    obj.push("label", JsonValue::Str(label.into()));
    obj.push("completed", JsonValue::Num(completed as f64));
    obj
}

/// Builds the journal-degradation terminal record: the campaign kept
/// running after persistent journal failures, so `unjournaled` fault
/// outcomes exist only in the in-memory report. Appending this record
/// is itself best-effort — the write path is the thing that failed —
/// but a bounded outage (ENOSPC that clears, a transient mount hiccup)
/// lets it land, making the journal self-describing about its own gap.
pub fn degraded_record(label: &str, journaled: usize, unjournaled: usize, reason: &str) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("record", JsonValue::Str("degraded".into()));
    obj.push("label", JsonValue::Str(label.into()));
    obj.push("journaled", JsonValue::Num(journaled as f64));
    obj.push("unjournaled", JsonValue::Num(unjournaled as f64));
    obj.push("reason", JsonValue::Str(reason.into()));
    obj
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// One journaled, completed fault, decoded.
#[derive(Debug, Clone)]
pub struct ReplayedFault {
    /// Universe index of the fault.
    pub index: usize,
    /// Fault name (validated against the universe on resume).
    pub name: String,
    /// The extracted signature, when any rung produced one.
    pub signature: Option<Vec<f64>>,
    /// How the simulation ended.
    pub status: FaultStatus,
    /// Per-fault telemetry, including any frozen postmortem.
    pub telemetry: FaultTelemetry,
}

/// A decoded `degraded` terminal record: how much of the campaign the
/// journal is missing, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedDegradation {
    /// Fault outcomes that made it into the journal.
    pub journaled: usize,
    /// Fault outcomes completed after journaling stopped.
    pub unjournaled: usize,
    /// The terminal journal error that triggered degradation.
    pub reason: String,
}

/// Everything the journal knows about one campaign label, merged across
/// every `start` segment for that label (a resume appends a fresh
/// segment; fault records union by index, later records win).
#[derive(Debug, Clone, Default)]
pub struct ReplayedCampaign {
    /// Fault-universe names from the most recent `start` record.
    pub names: Vec<String>,
    /// Detection threshold from the most recent `start` record.
    pub threshold: f64,
    /// Golden-signature length from the most recent `start` record.
    pub golden_len: usize,
    /// Completed faults by universe index.
    pub faults: BTreeMap<usize, ReplayedFault>,
    /// True when a `complete` terminal record was seen.
    pub complete: bool,
    /// True when a `cancelled` terminal record was seen (a later resume
    /// segment clears it).
    pub cancelled: bool,
    /// Set when a `degraded` terminal record was seen: the journal is
    /// known-incomplete for this segment (a later resume segment, which
    /// re-runs the missing faults, clears it).
    pub degraded: Option<ReplayedDegradation>,
}

/// A decoded journal: campaigns by label, plus whether the file ended
/// in a torn line (the signature of a hard kill).
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// Campaigns keyed by label, each merged across its segments.
    pub campaigns: BTreeMap<String, ReplayedCampaign>,
    /// True when the underlying file had a torn trailing line.
    pub torn_tail: bool,
}

impl JournalReplay {
    /// The replayed campaign for `label`, if the journal has one.
    pub fn campaign(&self, label: &str) -> Option<&ReplayedCampaign> {
        self.campaigns.get(label)
    }
}

/// Decodes parsed journal contents into per-label campaign state.
///
/// # Errors
///
/// Structurally invalid records (unknown record type, missing fields,
/// bad schema, or a `fault` record for a label with no `start`).
pub fn replay(contents: &JournalContents) -> Result<JournalReplay, String> {
    let mut campaigns: BTreeMap<String, ReplayedCampaign> = BTreeMap::new();
    for (n, record) in contents.records.iter().enumerate() {
        let line = || format!("record {}", n + 1);
        let kind = get_str(record, "record").map_err(|e| format!("{}: {e}", line()))?;
        let label = get_str(record, "label")
            .map_err(|e| format!("{}: {e}", line()))?
            .to_owned();
        match kind {
            "start" => {
                let schema = get_str(record, "schema").map_err(|e| format!("{}: {e}", line()))?;
                if schema != SCHEMA {
                    return Err(format!("{}: unsupported schema {schema:?}", line()));
                }
                let names = get(record, "names")
                    .and_then(|v| {
                        v.as_array().ok_or_else(|| "names is not an array".into())
                    })
                    .map_err(|e| format!("{}: {e}", line()))?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| format!("{}: fault name is not a string", line()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let threshold =
                    get_f64(record, "threshold").map_err(|e| format!("{}: {e}", line()))?;
                let golden_len =
                    get_usize(record, "golden_len").map_err(|e| format!("{}: {e}", line()))?;
                let campaign = campaigns.entry(label).or_default();
                campaign.names = names;
                campaign.threshold = threshold;
                campaign.golden_len = golden_len;
                // A fresh segment reopens a previously cancelled (or
                // even completed) campaign; it also re-runs whatever a
                // degraded segment failed to journal.
                campaign.complete = false;
                campaign.cancelled = false;
                campaign.degraded = None;
            }
            "fault" => {
                let campaign = campaigns
                    .get_mut(&label)
                    .ok_or_else(|| format!("{}: fault record before start for {label:?}", line()))?;
                let signature = match get(record, "signature")
                    .map_err(|e| format!("{}: {e}", line()))?
                {
                    JsonValue::Null => None,
                    other => Some(
                        other
                            .as_array()
                            .ok_or_else(|| format!("{}: signature is not an array", line()))?
                            .iter()
                            .map(float_from_json)
                            .collect::<Result<Vec<_>, _>>()
                            .map_err(|e| format!("{}: {e}", line()))?,
                    ),
                };
                let fault = ReplayedFault {
                    index: get_usize(record, "index").map_err(|e| format!("{}: {e}", line()))?,
                    name: get_str(record, "name")
                        .map_err(|e| format!("{}: {e}", line()))?
                        .to_owned(),
                    signature,
                    status: status_from_json(
                        get(record, "status").map_err(|e| format!("{}: {e}", line()))?,
                    )
                    .map_err(|e| format!("{}: {e}", line()))?,
                    telemetry: telemetry_from_json(
                        get(record, "telemetry").map_err(|e| format!("{}: {e}", line()))?,
                    )
                    .map_err(|e| format!("{}: {e}", line()))?,
                };
                campaign.faults.insert(fault.index, fault);
            }
            "complete" => {
                let campaign = campaigns.get_mut(&label).ok_or_else(|| {
                    format!("{}: complete record before start for {label:?}", line())
                })?;
                campaign.complete = true;
            }
            "cancelled" => {
                let campaign = campaigns.get_mut(&label).ok_or_else(|| {
                    format!("{}: cancelled record before start for {label:?}", line())
                })?;
                campaign.cancelled = true;
            }
            "degraded" => {
                let campaign = campaigns.get_mut(&label).ok_or_else(|| {
                    format!("{}: degraded record before start for {label:?}", line())
                })?;
                campaign.degraded = Some(ReplayedDegradation {
                    journaled: get_usize(record, "journaled")
                        .map_err(|e| format!("{}: {e}", line()))?,
                    unjournaled: get_usize(record, "unjournaled")
                        .map_err(|e| format!("{}: {e}", line()))?,
                    reason: get_str(record, "reason")
                        .map_err(|e| format!("{}: {e}", line()))?
                        .to_owned(),
                });
            }
            // Heartbeats are advisory telemetry (crate::telemetry);
            // they live in their own sidecar file, but a replayer that
            // encounters one anyway must skip it, not fail — the
            // canonical replay contract ignores telemetry entirely.
            "heartbeat" => {}
            other => return Err(format!("{}: unknown record type {other:?}", line())),
        }
    }
    Ok(JournalReplay {
        campaigns,
        torn_tail: contents.torn_tail,
    })
}

/// Reads and decodes a journal file: [`obs::journal::read_journal`]
/// (torn-tail tolerant) followed by [`replay`].
///
/// # Errors
///
/// I/O errors, corruption before the final line, or structurally
/// invalid records.
pub fn load(path: &Path) -> Result<JournalReplay, String> {
    replay(&read_journal(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::journal::parse_journal;

    fn two_faults() -> Vec<Fault> {
        let mut nl = anasim::netlist::Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        vec![Fault::stuck_at_0("f0", a), Fault::stuck_at_0("f1", b)]
    }

    fn sample_telemetry() -> FaultTelemetry {
        FaultTelemetry {
            solver: SolverSnapshot {
                newton_iterations: 42,
                steps_accepted: 17,
                steps_rejected: 3,
                dt_shrinks: 2,
                dc_gmin_steps: 1,
                dc_source_steps: 0,
                hazard_near_singular_pivot: 2,
                hazard_rank1_breakdown: 1,
                hazard_nonfinite: 4,
                demote_symbolic: 2,
                demote_dense: 1,
                refinement_rounds: 5,
                ..SolverSnapshot::default()
            },
            rung: Some(1),
            rungs_tried: 2,
            wall: Duration::from_millis(12),
            postmortem: None,
            ..FaultTelemetry::default()
        }
    }

    #[test]
    fn status_round_trips_every_variant() {
        let statuses = vec![
            FaultStatus::Detected { pct: 87.5 },
            FaultStatus::Undetected { pct: 0.1 + 0.2 },
            FaultStatus::SimFailed {
                error: AnalysisError::NoConvergence {
                    time: 1.25e-6,
                    residual: f64::NAN,
                    iterations: 99,
                },
                rungs_tried: 4,
            },
            FaultStatus::SimFailed {
                error: AnalysisError::BudgetExceeded {
                    time: 2e-3,
                    steps: 100,
                    kind: BudgetKind::WallClock,
                },
                rungs_tried: 1,
            },
            FaultStatus::SimFailed {
                error: AnalysisError::SingularMatrix { row: 7 },
                rungs_tried: 2,
            },
            FaultStatus::SimFailed {
                error: AnalysisError::Numerical {
                    hazard: linsys::NumericalHazard::RefinementStall,
                    time: 3.5e-6,
                },
                rungs_tried: 3,
            },
            FaultStatus::SimFailed {
                error: AnalysisError::InvalidParameter("dt \"quoted\"\n".into()),
                rungs_tried: 1,
            },
            FaultStatus::SimFailed {
                error: AnalysisError::Cancelled,
                rungs_tried: 1,
            },
            FaultStatus::BudgetExceeded { rungs_tried: 3 },
            FaultStatus::SignatureMismatch { got: 10, want: 20 },
            FaultStatus::Panicked {
                payload: "index out of bounds: the len is 3".into(),
            },
        ];
        for status in statuses {
            let json = status_to_json(&status);
            let text = json.to_json();
            let parsed = obs::json::parse(&text).unwrap();
            let back = status_from_json(&parsed).unwrap();
            // NAN != NAN under PartialEq, so compare through the
            // canonical encoding instead.
            assert_eq!(status_to_json(&back).to_json(), text, "{status:?}");
        }
    }

    #[test]
    fn telemetry_round_trips_exactly() {
        let t = sample_telemetry();
        let text = telemetry_to_json(&t).to_json();
        let back = telemetry_from_json(&obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.solver, t.solver);
        assert_eq!(back.rung, t.rung);
        assert_eq!(back.rungs_tried, t.rungs_tried);
        assert!(back.postmortem.is_none());
        assert_eq!(telemetry_to_json(&back).to_json(), text);
    }

    #[test]
    fn non_finite_floats_survive_the_journal() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.1 + 0.2, -0.0] {
            let json = float_to_json(v);
            let back = float_from_json(&obs::json::parse(&json.to_json()).unwrap()).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
    }

    #[test]
    fn replay_merges_resume_segments_by_index() {
        let faults = two_faults();
        let status = FaultStatus::Detected { pct: 100.0 };
        let t = sample_telemetry();
        let mut text = String::new();
        text += &start_record("c1", &faults, 0.5, 4).to_json();
        text += "\n";
        text += &fault_record("c1", 0, "f0", Some(&[1.0, 2.0]), &status, &t).to_json();
        text += "\n";
        // Hard kill here; resume appends a fresh segment.
        text += &start_record("c1", &faults, 0.5, 4).to_json();
        text += "\n";
        text += &fault_record("c1", 1, "f1", None, &status, &t).to_json();
        text += "\n";
        text += &complete_record("c1").to_json();
        text += "\n";
        let replayed = replay(&parse_journal(&text).unwrap()).unwrap();
        let c1 = replayed.campaign("c1").unwrap();
        assert_eq!(c1.faults.len(), 2);
        assert_eq!(c1.faults[&0].signature.as_deref(), Some(&[1.0, 2.0][..]));
        assert!(c1.faults[&1].signature.is_none());
        assert!(c1.complete);
        assert!(!c1.cancelled);
        assert_eq!(c1.names, vec!["f0", "f1"]);
    }

    #[test]
    fn cancelled_terminal_is_replayed_and_cleared_by_resume() {
        let faults = two_faults();
        let mut text = String::new();
        text += &start_record("c", &faults, 0.5, 1).to_json();
        text += "\n";
        text += &cancelled_record("c", 0).to_json();
        text += "\n";
        let replayed = replay(&parse_journal(&text).unwrap()).unwrap();
        assert!(replayed.campaign("c").unwrap().cancelled);

        text += &start_record("c", &faults, 0.5, 1).to_json();
        text += "\n";
        let replayed = replay(&parse_journal(&text).unwrap()).unwrap();
        assert!(!replayed.campaign("c").unwrap().cancelled);
    }

    #[test]
    fn degraded_terminal_is_replayed_and_cleared_by_resume() {
        let faults = two_faults();
        let mut text = String::new();
        text += &start_record("c", &faults, 0.5, 1).to_json();
        text += "\n";
        text += &degraded_record("c", 1, 3, "journal sync failed: disk full").to_json();
        text += "\n";
        let replayed = replay(&parse_journal(&text).unwrap()).unwrap();
        let degraded = replayed.campaign("c").unwrap().degraded.clone().unwrap();
        assert_eq!(degraded.journaled, 1);
        assert_eq!(degraded.unjournaled, 3);
        assert!(degraded.reason.contains("disk full"));

        // A resume segment re-runs the unjournaled faults, so it clears
        // the degradation flag.
        text += &start_record("c", &faults, 0.5, 1).to_json();
        text += "\n";
        let replayed = replay(&parse_journal(&text).unwrap()).unwrap();
        assert!(replayed.campaign("c").unwrap().degraded.is_none());
    }

    #[test]
    fn fault_record_without_start_is_an_error() {
        let status = FaultStatus::Detected { pct: 100.0 };
        let t = sample_telemetry();
        let text = format!(
            "{}\n",
            fault_record("orphan", 0, "f0", None, &status, &t).to_json()
        );
        let err = replay(&parse_journal(&text).unwrap()).unwrap_err();
        assert!(err.contains("before start"), "{err}");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let faults = two_faults();
        let mut record = start_record("c", &faults, 0.5, 1);
        // Rewrite the schema member.
        if let JsonValue::Obj(members) = &mut record {
            for (k, v) in members.iter_mut() {
                if k == "schema" {
                    *v = JsonValue::Str("mixsig.campaign-journal/999".into());
                }
            }
        }
        let err = replay(&parse_journal(&format!("{}\n", record.to_json())).unwrap()).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }
}
