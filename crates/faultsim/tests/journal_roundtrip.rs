//! Crash-safety integration tests for the campaign journal.
//!
//! The unit tests in `campaign.rs` cover cooperative cancellation; this
//! file covers the *hard-kill* path: a journal whose final line was torn
//! mid-write (the process died between `write` and the newline reaching
//! disk) must resume to a `CampaignReport` byte-identical to an
//! uninterrupted run. The property tests drive the JSONL codecs with
//! arbitrary statuses, telemetry and cut points.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use anasim::metrics::SolverSnapshot;
use anasim::netlist::Netlist;
use anasim::robust::SolveSettings;
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use anasim::{AnalysisError, BudgetKind};
use faultsim::campaign::{
    run_campaign_resumed, run_campaign_with, CampaignConfig, CampaignReport, FaultStatus,
    FaultTelemetry, JournalConfig,
};
use faultsim::journal::{
    self, fault_record, float_from_json, float_to_json, start_record, status_from_json,
    status_to_json, telemetry_from_json, telemetry_to_json,
};
use faultsim::model::Fault;
use obs::journal::parse_journal;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Shared fixture (mirrors the campaign unit tests: an RC ladder whose
// transient response at node c is the 20-sample signature)
// ---------------------------------------------------------------------

fn rc_fixture() -> (Netlist, Vec<Fault>) {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    let c = nl.node("c");
    nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::step(5.0, 1e-5));
    nl.resistor("R1", a, b, 10e3);
    nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
    nl.resistor("R2", b, c, 10e3);
    nl.capacitor("C2", c, Netlist::GROUND, 1e-9);
    let faults = vec![
        Fault::stuck_at_0("b-sa0", b),
        Fault::stuck_at_1("b-sa1", b),
        Fault::stuck_at_0("c-sa0", c),
        Fault::stuck_at_1("c-sa1", c),
        Fault::bridge("b-c-br", b, c),
        Fault::bridge("a-c-br", a, c).with_impedance(1e9),
    ];
    (nl, faults)
}

fn transient_extract(nl: &Netlist, settings: &SolveSettings) -> Result<Vec<f64>, AnalysisError> {
    let c = nl.find_node("c").expect("node c");
    let result = TransientAnalysis::new(2e-4, 2e-6)
        .with_settings(settings)
        .run(nl)?;
    let w = result.voltage(c);
    Ok((0..20).map(|k| w.value_at(k as f64 * 1e-5)).collect())
}

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("faultsim-journal-roundtrip");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    path
}

/// Simulates a hard kill: drops the terminal `complete` line and leaves
/// the last fault record torn mid-line (no trailing newline), exactly
/// the state `fsync`-per-record leaves behind when the process dies
/// mid-append. Returns the number of fault records that survive intact.
fn hard_kill(complete_journal: &str) -> (String, usize) {
    let mut lines: Vec<&str> = complete_journal.lines().collect();
    let terminal = lines.pop().expect("terminal record");
    assert!(terminal.contains("\"complete\""), "expected complete record");
    let torn = lines.pop().expect("a fault record to tear");
    assert!(torn.contains("\"fault\""), "expected a fault record");
    let survivors = lines.iter().filter(|l| l.contains("\"fault\"")).count();
    let mut killed = lines.join("\n");
    killed.push('\n');
    killed.push_str(&torn[..torn.len() / 2]);
    (killed, survivors)
}

fn canonical_report(report: &CampaignReport) -> String {
    let mut run = obs::RunReport::new();
    run.push(report.to_section("campaign.rc"));
    run.canonical_json_string()
}

// ---------------------------------------------------------------------
// Kill-and-resume integration tests
// ---------------------------------------------------------------------

#[test]
fn hard_killed_journal_resumes_byte_identical() {
    let (nl, faults) = rc_fixture();
    let reference =
        run_campaign_with(&nl, &faults, &CampaignConfig::new(0.05), transient_extract).unwrap();

    // Journal a full run serially, so fault records land in universe
    // order and the torn record is the last fault (a-c-br, index 5).
    let path = temp_journal("hard-kill.jsonl");
    let config = CampaignConfig::new(0.05)
        .workers(1)
        .journal(JournalConfig::fresh(&path, "rc"));
    run_campaign_with(&nl, &faults, &config, transient_extract).unwrap();

    let complete = fs::read_to_string(&path).unwrap();
    let (killed, survivors) = hard_kill(&complete);
    assert_eq!(survivors, faults.len() - 1);

    // The torn journal is readable: the partial line is dropped, the
    // prefix replays cleanly, and nothing is marked terminal.
    fs::write(&path, &killed).unwrap();
    let replayed = journal::load(&path).unwrap();
    assert!(replayed.torn_tail);
    let campaign = replayed.campaign("rc").expect("campaign survives the kill");
    assert!(!campaign.complete && !campaign.cancelled);
    assert_eq!(campaign.faults.len(), survivors);
    assert!(!campaign.faults.contains_key(&5), "torn record is dropped");

    // Resume re-simulates only the torn fault and lands byte-identical
    // to the uninterrupted reference.
    let fault_sims = AtomicUsize::new(0);
    let resumed = run_campaign_resumed(&nl, &faults, &config, |n, settings| {
        if n.devices().any(|(_, name, _)| name.starts_with("fault:")) {
            fault_sims.fetch_add(1, Ordering::Relaxed);
        }
        transient_extract(n, settings)
    })
    .unwrap();
    assert_eq!(fault_sims.load(Ordering::Relaxed), 1);
    assert_eq!(resumed.canonical_text(), reference.canonical_text());
    assert_eq!(canonical_report(&resumed), canonical_report(&reference));
    assert!(journal::load(&path).unwrap().campaign("rc").unwrap().complete);
    let _ = fs::remove_file(&path);
}

#[test]
fn parallel_resume_of_a_killed_journal_is_byte_identical() {
    let (nl, faults) = rc_fixture();
    let reference =
        run_campaign_with(&nl, &faults, &CampaignConfig::new(0.05), transient_extract).unwrap();

    let path = temp_journal("hard-kill-parallel.jsonl");
    let serial = CampaignConfig::new(0.05)
        .workers(1)
        .journal(JournalConfig::fresh(&path, "rc"));
    run_campaign_with(&nl, &faults, &serial, transient_extract).unwrap();
    let (killed, _) = hard_kill(&fs::read_to_string(&path).unwrap());
    fs::write(&path, &killed).unwrap();

    // Resume with a full worker pool: replayed records keep their
    // journaled bytes, re-simulated ones are deterministic, so worker
    // count cannot leak into the report.
    let parallel = CampaignConfig::new(0.05)
        .workers(4)
        .journal(JournalConfig::fresh(&path, "rc"));
    let resumed = run_campaign_resumed(&nl, &faults, &parallel, transient_extract).unwrap();
    assert_eq!(resumed.canonical_text(), reference.canonical_text());
    assert_eq!(canonical_report(&resumed), canonical_report(&reference));
    let _ = fs::remove_file(&path);
}

#[test]
fn postmortem_bearing_records_replay_exactly() {
    let (nl, faults) = rc_fixture();
    // b-sa1 fails every rung with the flight recorder armed, so its
    // journaled record carries a frozen postmortem.
    let failing = |n: &Netlist, settings: &SolveSettings| {
        if n.find_device("fault:b-sa1:V").is_some() {
            return Err(AnalysisError::NoConvergence {
                time: 1e-5,
                residual: 42.0,
                iterations: 7,
            });
        }
        transient_extract(n, settings)
    };
    let reference = run_campaign_with(
        &nl,
        &faults,
        &CampaignConfig::new(0.05).flight(16),
        failing,
    )
    .unwrap();
    assert!(
        reference.postmortems().count() > 0,
        "fixture must freeze a postmortem"
    );

    let path = temp_journal("postmortem-kill.jsonl");
    let config = CampaignConfig::new(0.05)
        .workers(1)
        .flight(16)
        .journal(JournalConfig::fresh(&path, "rc"));
    run_campaign_with(&nl, &faults, &config, failing).unwrap();
    let (killed, _) = hard_kill(&fs::read_to_string(&path).unwrap());
    fs::write(&path, &killed).unwrap();

    // The postmortem rides the replayed record (index 1 is not the torn
    // line), so the resumed report embeds it byte-for-byte.
    let resumed = run_campaign_resumed(&nl, &faults, &config, failing).unwrap();
    assert_eq!(resumed.canonical_text(), reference.canonical_text());
    assert_eq!(canonical_report(&resumed), canonical_report(&reference));
    let _ = fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Property tests: arbitrary records survive JSONL encode -> decode
// ---------------------------------------------------------------------

fn arb_float() -> impl Strategy<Value = f64> {
    (0u8..8, -1.0e12..1.0e12f64).prop_map(|(kind, v)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => v * 1e-300, // deep into the subnormal range
        6 => 5e-324,     // smallest positive subnormal
        _ => v,
    })
}

/// Strings that stress the JSON escaper: quotes, backslashes, newlines.
const MESSY_TEXT: &str = "[a-z0-9 \\n\\\\\\\"]{0,16}";

fn arb_error() -> impl Strategy<Value = AnalysisError> {
    (
        0u8..6,
        (arb_float(), arb_float()),
        (0usize..1000, 0usize..1_000_000),
        MESSY_TEXT,
    )
        .prop_map(|(kind, (time, residual), (row, steps), msg)| match kind {
            0 => AnalysisError::NoConvergence {
                time,
                residual,
                iterations: steps,
            },
            1 => AnalysisError::SingularMatrix { row },
            2 => AnalysisError::InvalidParameter(msg),
            3 => AnalysisError::UnknownElement(msg),
            4 => AnalysisError::BudgetExceeded {
                time,
                steps,
                kind: if row % 2 == 0 {
                    BudgetKind::Steps
                } else {
                    BudgetKind::WallClock
                },
            },
            _ => AnalysisError::Cancelled,
        })
}

fn arb_status() -> impl Strategy<Value = FaultStatus> {
    (
        (0u8..6, arb_float()),
        arb_error(),
        (1usize..5, (0usize..64, 0usize..64)),
        MESSY_TEXT,
    )
        .prop_map(
            |((kind, pct), error, (rungs_tried, (got, want)), payload)| match kind {
                0 => FaultStatus::Detected { pct },
                1 => FaultStatus::Undetected { pct },
                2 => FaultStatus::SimFailed { error, rungs_tried },
                3 => FaultStatus::BudgetExceeded { rungs_tried },
                4 => FaultStatus::SignatureMismatch { got, want },
                _ => FaultStatus::Panicked { payload },
            },
        )
}

fn arb_telemetry() -> impl Strategy<Value = FaultTelemetry> {
    (
        proptest::collection::vec(0u64..100_000, 6),
        (any::<bool>(), 0usize..4),
        1usize..5,
        0u64..60_000,
    )
        .prop_map(
            |(counters, (has_rung, rung), rungs_tried, wall_ms)| FaultTelemetry {
                solver: SolverSnapshot {
                    newton_iterations: counters[0],
                    steps_accepted: counters[1],
                    steps_rejected: counters[2],
                    dt_shrinks: counters[3],
                    dc_gmin_steps: counters[4],
                    dc_source_steps: counters[5],
                    ..SolverSnapshot::default()
                },
                rung: if has_rung { Some(rung) } else { None },
                rungs_tried,
                wall: Duration::from_millis(wall_ms),
                postmortem: None,
                ..FaultTelemetry::default()
            },
        )
}

fn arb_signature() -> impl Strategy<Value = Option<Vec<f64>>> {
    (any::<bool>(), proptest::collection::vec(arb_float(), 0..12))
        .prop_map(|(present, sig)| if present { Some(sig) } else { None })
}

fn bits(sig: &Option<Vec<f64>>) -> Option<Vec<u64>> {
    sig.as_ref()
        .map(|v| v.iter().map(|f| f.to_bits()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn floats_round_trip_bit_exact(v in arb_float()) {
        let text = float_to_json(v).to_json();
        let back = float_from_json(&obs::json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(v.to_bits(), back.to_bits(), "{} -> {}", v, text);
    }

    #[test]
    fn statuses_survive_jsonl_encode_decode(status in arb_status()) {
        let text = status_to_json(&status).to_json();
        let parsed = obs::json::parse(&text).unwrap();
        let back = status_from_json(&parsed).unwrap();
        // NaN != NaN under PartialEq: compare through the canonical
        // encoding, which is bit-exact for every float.
        prop_assert_eq!(status_to_json(&back).to_json(), text);
    }

    #[test]
    fn telemetry_survives_jsonl_encode_decode(t in arb_telemetry()) {
        let text = telemetry_to_json(&t).to_json();
        let back = telemetry_from_json(&obs::json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back.solver, &t.solver);
        prop_assert_eq!(back.rung, t.rung);
        prop_assert_eq!(back.rungs_tried, t.rungs_tried);
        prop_assert!(back.postmortem.is_none());
        // Wall-clock is excluded from the canonical byte-identity
        // guarantee (reports zero it); the codec keeps it to within a
        // microsecond over the full generated range.
        let drift = (back.wall.as_secs_f64() - t.wall.as_secs_f64()).abs();
        prop_assert!(drift < 1e-6, "wall drifted {drift}s");
    }

    #[test]
    fn fault_records_survive_journal_replay(
        status in arb_status(),
        telemetry in arb_telemetry(),
        signature in arb_signature(),
        index in 0usize..2,
    ) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let faults = [Fault::stuck_at_0("f0", a), Fault::stuck_at_0("f1", b)];
        let name = faults[index].name().to_owned();

        let mut text = start_record("p", &faults, 0.05, 20).to_json();
        text.push('\n');
        text += &fault_record("p", index, &name, signature.as_deref(), &status, &telemetry)
            .to_json();
        text.push('\n');

        let replayed = journal::replay(&parse_journal(&text).unwrap()).unwrap();
        let campaign = replayed.campaign("p").unwrap();
        prop_assert!(!campaign.complete);
        let fault = campaign.faults.get(&index).unwrap();
        prop_assert_eq!(&fault.name, &name);
        prop_assert_eq!(bits(&fault.signature), bits(&signature));
        prop_assert_eq!(
            status_to_json(&fault.status).to_json(),
            status_to_json(&status).to_json()
        );
        prop_assert_eq!(&fault.telemetry.solver, &telemetry.solver);
        prop_assert_eq!(fault.telemetry.rung, telemetry.rung);
        prop_assert_eq!(fault.telemetry.rungs_tried, telemetry.rungs_tried);
    }

    #[test]
    fn any_truncation_of_a_journal_replays_a_clean_prefix(
        statuses in proptest::collection::vec(arb_status(), 2..5),
        seed in 0usize..100_000,
    ) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let faults = [Fault::stuck_at_0("f0", a), Fault::stuck_at_0("f1", b)];
        let telemetry = FaultTelemetry {
            solver: SolverSnapshot::default(),
            rung: Some(0),
            rungs_tried: 1,
            wall: Duration::from_millis(1),
            postmortem: None,
            ..FaultTelemetry::default()
        };
        let mut text = start_record("p", &faults, 0.05, 20).to_json();
        text.push('\n');
        for (i, status) in statuses.iter().enumerate() {
            let index = i % faults.len();
            text += &fault_record(
                "p",
                index,
                faults[index].name(),
                Some(&[1.5, -0.0]),
                status,
                &telemetry,
            )
            .to_json();
            text.push('\n');
        }

        // Kill the writer at an arbitrary byte: every journal prefix
        // must stay readable (torn tail dropped, full lines replayed).
        // Journal text is pure ASCII, so any byte index is a char
        // boundary.
        let cut = 1 + seed % (text.len() - 1);
        let contents = parse_journal(&text[..cut]).unwrap();
        let replayed = journal::replay(&contents).unwrap();
        let whole_lines = text[..cut].matches('\n').count();
        if whole_lines == 0 {
            prop_assert!(replayed.campaigns.is_empty());
        } else {
            let campaign = replayed.campaign("p").unwrap();
            // Fault records merge by index, later wins: the replayed
            // count is the number of distinct indices among survivors.
            let survivors = whole_lines - 1;
            let distinct = survivors.min(faults.len());
            prop_assert_eq!(campaign.faults.len(), distinct);
        }
        prop_assert_eq!(replayed.torn_tail, !text[..cut].ends_with('\n'));
    }
}
