//! Chaos suite: fault campaigns against a journal whose storage layer
//! fails on a deterministic, seeded schedule (`obs::chaos`).
//!
//! The invariants under test, per ISSUE 6:
//!
//! * a fault outcome the journal acked is never lost;
//! * interior journal records are never corrupted — the file always
//!   loads (at worst with a torn tail);
//! * after any injected failure, resuming the campaign produces a
//!   report byte-identical to an uninterrupted run (transient faults),
//!   or the run cleanly degrades with a `[journal degraded …]` marker
//!   and an accounting of what the journal is missing (persistent
//!   faults under `DegradePolicy::Continue`).
//!
//! Every schedule here is reproducible: scripted windows or a seeded
//! splitmix64 plan, never wall-clock or OS randomness.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use anasim::netlist::Netlist;
use anasim::robust::{CancelToken, SolveSettings};
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use anasim::AnalysisError;
use faultsim::campaign::{
    run_campaign_resumed, run_campaign_with, CampaignConfig, CampaignReport, DegradePolicy,
    JournalConfig,
};
use faultsim::journal;
use faultsim::model::Fault;
use obs::chaos::FaultPlan;
use obs::journal::RetryPolicy;

// ---------------------------------------------------------------------
// Fixture: an RC ladder whose transient response at node c is the
// 20-sample signature (mirrors the campaign/journal test fixtures).
// ---------------------------------------------------------------------

fn rc_fixture() -> (Netlist, Vec<Fault>) {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    let c = nl.node("c");
    nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::step(5.0, 1e-5));
    nl.resistor("R1", a, b, 10e3);
    nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
    nl.resistor("R2", b, c, 10e3);
    nl.capacitor("C2", c, Netlist::GROUND, 1e-9);
    let faults = vec![
        Fault::stuck_at_0("b-sa0", b),
        Fault::stuck_at_1("b-sa1", b),
        Fault::stuck_at_0("c-sa0", c),
        Fault::stuck_at_1("c-sa1", c),
        Fault::bridge("b-c-br", b, c),
        Fault::bridge("a-c-br", a, c).with_impedance(1e9),
    ];
    (nl, faults)
}

fn transient_extract(nl: &Netlist, settings: &SolveSettings) -> Result<Vec<f64>, AnalysisError> {
    let c = nl.find_node("c").expect("node c");
    let result = TransientAnalysis::new(2e-4, 2e-6)
        .with_settings(settings)
        .run(nl)?;
    let w = result.voltage(c);
    Ok((0..20).map(|k| w.value_at(k as f64 * 1e-5)).collect())
}

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("faultsim-chaos");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    path
}

/// Retries with no wall-clock cost: chaos tests exercise the loop, not
/// the backoff.
fn quiet_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy::attempts(attempts).with_sleep(|_| {})
}

fn config(journal: JournalConfig) -> CampaignConfig {
    CampaignConfig::new(0.5).journal(journal)
}

/// The uninterrupted, chaos-free baseline for a given label.
fn clean_report(label: &str) -> CampaignReport {
    let (nl, faults) = rc_fixture();
    let path = temp_journal(&format!("{label}-clean.jsonl"));
    let report = run_campaign_with(
        &nl,
        &faults,
        &config(JournalConfig::fresh(&path, label)),
        transient_extract,
    )
    .unwrap();
    assert!(report.degradation.is_none());
    report
}

// ---------------------------------------------------------------------
// Transient faults: absorbed by the retry policy, invisible to callers.
// ---------------------------------------------------------------------

#[test]
fn transient_faults_are_absorbed_and_the_report_is_byte_identical() {
    let (nl, faults) = rc_fixture();
    let path = temp_journal("transient.jsonl");
    // One scripted write failure and one scripted sync failure, each
    // comfortably inside a 3-attempt retry budget.
    let plan = FaultPlan::parse("write@2,sync@4,trunc@6:3").unwrap();
    let jc = JournalConfig::fresh(&path, "chaos")
        .retry(quiet_retry(3))
        .chaos(plan);
    let report = run_campaign_with(&nl, &faults, &config(jc), transient_extract).unwrap();

    assert!(report.degradation.is_none(), "transient faults must not degrade");
    assert!(
        report.stats.journal_retries >= 3,
        "three injected faults → at least three retries, got {}",
        report.stats.journal_retries
    );
    assert_eq!(report.canonical_text(), clean_report("chaos").canonical_text());

    // Acked-never-lost: the journal replays complete, with every fault.
    let replay = journal::load(&path).unwrap();
    let campaign = replay.campaign("chaos").unwrap();
    assert!(campaign.complete);
    assert_eq!(campaign.faults.len(), faults.len());
    assert!(campaign.degraded.is_none());
}

// ---------------------------------------------------------------------
// Persistent faults, DegradePolicy::Abort (the default).
// ---------------------------------------------------------------------

#[test]
fn persistent_failure_aborts_at_a_fault_boundary_and_resume_recovers() {
    let (nl, faults) = rc_fixture();
    let path = temp_journal("abort.jsonl");
    // Every write from index 3 on fails: the start record and first two
    // fault records land, then the journal dies for good.
    let jc = JournalConfig::fresh(&path, "chaos")
        .retry(quiet_retry(2))
        .chaos(FaultPlan::parse("write@3..").unwrap());
    let err = run_campaign_with(&nl, &faults, &config(jc), transient_extract).unwrap_err();
    let msg = match &err {
        AnalysisError::InvalidParameter(msg) => msg.clone(),
        other => panic!("expected InvalidParameter, got {other:?}"),
    };
    assert!(msg.contains("campaign journal"), "{msg}");
    assert!(msg.contains("abort.jsonl"), "error must name the file: {msg}");
    assert!(msg.contains("after 2 attempts"), "error must count attempts: {msg}");

    // Interior-never-corrupted: the file still loads (the failed append
    // left at most a torn tail) and holds exactly the acked records.
    let replay = journal::load(&path).unwrap();
    let campaign = replay.campaign("chaos").unwrap();
    assert!(!campaign.complete);
    let acked = campaign.faults.len();
    assert!(acked < faults.len(), "the outage must have dropped outcomes");

    // Acked-never-lost + resume: with the fault cleared, a resume
    // replays the acked outcomes, simulates the rest, and the final
    // report is byte-identical to an uninterrupted run.
    let jc = JournalConfig::resume(&path, "chaos");
    let resumed =
        run_campaign_resumed(&nl, &faults, &config(jc), transient_extract).unwrap();
    assert!(resumed.degradation.is_none());
    assert_eq!(resumed.canonical_text(), clean_report("chaos").canonical_text());
    let replay = journal::load(&path).unwrap();
    assert!(replay.campaign("chaos").unwrap().complete);
}

// ---------------------------------------------------------------------
// Persistent faults, DegradePolicy::Continue.
// ---------------------------------------------------------------------

#[test]
fn continue_policy_finishes_journal_less_with_a_degradation_marker() {
    let (nl, faults) = rc_fixture();
    let path = temp_journal("continue.jsonl");
    // Write 2 fails once (no retry budget to absorb it), write 3 — the
    // degraded terminal record — succeeds: a bounded outage whose
    // journal self-describes its gap.
    let jc = JournalConfig::fresh(&path, "chaos")
        .retry(RetryPolicy::none())
        .chaos(FaultPlan::parse("write@2").unwrap());
    let cfg = config(jc).degrade(DegradePolicy::Continue);
    let report = run_campaign_with(&nl, &faults, &cfg, transient_extract).unwrap();

    // The campaign itself is complete: every fault has an outcome.
    assert_eq!(report.outcomes.len(), faults.len());
    let degradation = report.degradation.as_ref().expect("must degrade");
    assert_eq!(degradation.journaled, 1, "only the first fault was acked");
    assert_eq!(degradation.unjournaled, faults.len() - 1);
    assert!(degradation.reason.contains("injected"), "{}", degradation.reason);

    // The canonical marker and the section counter both surface it.
    let text = report.canonical_text();
    assert!(text.contains("[journal degraded: 5 unjournaled of 6 faults"), "{text}");
    let section = report.to_section("campaign");
    assert_eq!(section.counters.get("journal_degraded.faults"), Some(&5));

    // The journal replays, knows it is degraded, and a resume re-runs
    // the unjournaled faults to a byte-identical clean report.
    let replay = journal::load(&path).unwrap();
    let campaign = replay.campaign("chaos").unwrap();
    assert!(!campaign.complete);
    let replayed_degradation = campaign.degraded.as_ref().expect("degraded record");
    assert_eq!(replayed_degradation.journaled, 1);
    assert_eq!(replayed_degradation.unjournaled, 5);
    let resumed = run_campaign_resumed(
        &nl,
        &faults,
        &config(JournalConfig::resume(&path, "chaos")),
        transient_extract,
    )
    .unwrap();
    assert!(resumed.degradation.is_none());
    assert_eq!(resumed.canonical_text(), clean_report("chaos").canonical_text());
}

#[test]
fn canonical_reports_without_chaos_are_unchanged_by_the_new_counters() {
    // The new always-emitted counters must be zero on a healthy run so
    // existing byte-identity guarantees (across worker counts, resumes)
    // keep holding.
    let report = clean_report("chaos-baseline");
    let section = report.to_section("campaign");
    assert_eq!(section.counters.get("journal_degraded.faults"), Some(&0));
    assert_eq!(section.counters.get("journal.retries"), Some(&0));
    assert!(!report.canonical_text().contains("journal degraded"));
}

// ---------------------------------------------------------------------
// Cancellation during journal replay (satellite).
// ---------------------------------------------------------------------

#[test]
fn cancellation_during_replay_stops_promptly_with_a_clean_record() {
    let (nl, faults) = rc_fixture();
    let path = temp_journal("replay-cancel.jsonl");
    // A complete journal to replay.
    run_campaign_with(
        &nl,
        &faults,
        &config(JournalConfig::fresh(&path, "chaos")),
        transient_extract,
    )
    .unwrap();

    // The token trips while the golden extraction returns — i.e. after
    // validation but before the replay loop touches its first record —
    // so a replay loop that honours cancellation stops with zero
    // simulations, while one that replays to completion would return a
    // full (complete-journal) report.
    let cancel = CancelToken::new();
    let calls = AtomicUsize::new(0);
    let extract = |nl: &Netlist, settings: &SolveSettings| {
        let sig = transient_extract(nl, settings)?;
        if calls.fetch_add(1, Ordering::SeqCst) == 0 {
            cancel.cancel();
        }
        Ok(sig)
    };
    let cfg = config(JournalConfig::resume(&path, "chaos")).cancel(cancel.clone());
    let err = run_campaign_resumed(&nl, &faults, &cfg, extract).unwrap_err();
    assert!(matches!(err, AnalysisError::Cancelled), "{err:?}");
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "only the golden extraction may run before replay sees the token"
    );

    // The fresh segment terminated cleanly: the journal replays and the
    // campaign is marked cancelled, with all prior outcomes preserved.
    let replay = journal::load(&path).unwrap();
    let campaign = replay.campaign("chaos").unwrap();
    assert!(campaign.cancelled);
    assert_eq!(campaign.faults.len(), faults.len());
}

// ---------------------------------------------------------------------
// Seeded sweep: randomized-but-reproducible schedules, all invariants.
// ---------------------------------------------------------------------

#[test]
fn seeded_injection_sweep_never_corrupts_and_always_recovers() {
    let (nl, faults) = rc_fixture();
    let clean = clean_report("chaos").canonical_text();
    for seed in 0..12u64 {
        let path = temp_journal(&format!("sweep-{seed}.jsonl"));
        let plan = FaultPlan::seeded(seed, 0.20, 0.15);
        let jc = JournalConfig::fresh(&path, "chaos")
            .retry(quiet_retry(3))
            .chaos(plan);
        let cfg = config(jc).degrade(DegradePolicy::Continue);
        let result = run_campaign_with(&nl, &faults, &cfg, transient_extract);

        match &result {
            Ok(report) => {
                // Interior-never-corrupted: whatever the schedule did,
                // the journal file still loads.
                let replay = journal::load(&path).unwrap();
                let campaign = replay.campaign("chaos").unwrap();
                if let Some(d) = &report.degradation {
                    // Cleanly degraded: the acked outcomes plus the
                    // reported gap cover the whole universe. The file
                    // may hold one *extra* fault record beyond the
                    // acked count — a record whose bytes landed but
                    // whose fsync failed (the documented caveat); it is
                    // a valid outcome, never a corrupt or missing one.
                    assert!(
                        campaign.faults.len() >= d.journaled
                            && campaign.faults.len() <= d.journaled + 1,
                        "seed {seed}: {} journaled, {} in file",
                        d.journaled,
                        campaign.faults.len()
                    );
                    assert_eq!(d.journaled + d.unjournaled, faults.len(), "seed {seed}");
                } else {
                    assert!(campaign.complete, "seed {seed}");
                    assert_eq!(campaign.faults.len(), faults.len(), "seed {seed}");
                }
                // Resume (chaos cleared) must converge to the clean
                // baseline byte-for-byte, degraded or not.
                let resumed = run_campaign_resumed(
                    &nl,
                    &faults,
                    &config(JournalConfig::resume(&path, "chaos")),
                    transient_extract,
                )
                .unwrap();
                assert_eq!(resumed.canonical_text(), clean, "seed {seed}");
            }
            Err(AnalysisError::InvalidParameter(msg)) => {
                // Only the campaign prologue (opening the journal or
                // the start record) may fail this way — and even then
                // the file must still load.
                assert!(msg.contains("campaign journal"), "seed {seed}: {msg}");
                if path.exists() {
                    journal::load(&path).unwrap();
                }
            }
            Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
        }
    }
}
