//! Integration tests for live campaign telemetry, per ISSUE 9:
//!
//! * a watcher polling `status.json` while the campaign runs sees
//!   monotonically non-decreasing progress that converges on the final
//!   report's counts;
//! * a hung worker (extraction sleeping far past the stall threshold)
//!   is flagged `stalled` in a live snapshot while its fault is in
//!   flight;
//! * canonical reports are byte-identical with telemetry armed or
//!   disarmed — the wall-clock quarantine holds end to end;
//! * chaos-injected heartbeat failures are counted in the snapshot and
//!   change nothing else;
//! * a resumed campaign seeds the progress rollup with the replayed
//!   outcomes.
//!
//! The fixture mirrors the chaos suite: an RC ladder whose node-c
//! transient response is the 20-sample signature.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use anasim::netlist::Netlist;
use anasim::robust::{SolveBudget, SolveSettings};
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use anasim::AnalysisError;
use faultsim::campaign::{run_campaign_resumed, run_campaign_with, CampaignConfig, JournalConfig};
use faultsim::model::Fault;
use faultsim::telemetry::TelemetryConfig;
use obs::chaos::FaultPlan;
use obs::journal::RetryPolicy;
use obs::status::{self, CampaignStatus};

fn rc_fixture() -> (Netlist, Vec<Fault>) {
    let mut nl = Netlist::new();
    let a = nl.node("a");
    let b = nl.node("b");
    let c = nl.node("c");
    nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::step(5.0, 1e-5));
    nl.resistor("R1", a, b, 10e3);
    nl.capacitor("C1", b, Netlist::GROUND, 1e-9);
    nl.resistor("R2", b, c, 10e3);
    nl.capacitor("C2", c, Netlist::GROUND, 1e-9);
    let faults = vec![
        Fault::stuck_at_0("b-sa0", b),
        Fault::stuck_at_1("b-sa1", b),
        Fault::stuck_at_0("c-sa0", c),
        Fault::stuck_at_1("c-sa1", c),
        Fault::bridge("b-c-br", b, c),
        Fault::bridge("a-c-br", a, c).with_impedance(1e9),
    ];
    (nl, faults)
}

fn transient_extract(nl: &Netlist, settings: &SolveSettings) -> Result<Vec<f64>, AnalysisError> {
    let c = nl.find_node("c").expect("node c");
    let result = TransientAnalysis::new(2e-4, 2e-6)
        .with_settings(settings)
        .run(nl)?;
    let w = result.voltage(c);
    Ok((0..20).map(|k| w.value_at(k as f64 * 1e-5)).collect())
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("faultsim-telemetry-int").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls `status.json` until `stop` accepts a snapshot or the deadline
/// passes, returning every successfully read snapshot in order.
fn poll_status(
    dir: &std::path::Path,
    deadline: Duration,
    stop: impl Fn(&CampaignStatus) -> bool,
) -> Vec<CampaignStatus> {
    let started = std::time::Instant::now();
    let path = dir.join(status::STATUS_FILE);
    let mut seen = Vec::new();
    while started.elapsed() < deadline {
        if let Ok(Some(snapshot)) = status::read_status(&path) {
            let done = stop(&snapshot);
            seen.push(snapshot);
            if done {
                return seen;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    seen
}

#[test]
fn watcher_sees_monotone_progress_converging_on_the_report() {
    let (nl, faults) = rc_fixture();
    let dir = temp_dir("monotone");
    let config = CampaignConfig::new(0.5)
        .workers(2)
        .telemetry(TelemetryConfig::new(&dir).interval(Duration::from_millis(5)));
    let (report, seen) = std::thread::scope(|scope| {
        let campaign = scope.spawn(|| {
            run_campaign_with(&nl, &faults, &config, |n, settings| {
                // A little artificial latency so the monitor thread gets
                // to publish mid-campaign snapshots.
                std::thread::sleep(Duration::from_millis(15));
                transient_extract(n, settings)
            })
            .unwrap()
        });
        let seen = poll_status(&dir, Duration::from_secs(30), CampaignStatus::is_terminal);
        (campaign.join().unwrap(), seen)
    });

    assert!(!seen.is_empty(), "watcher never read a snapshot");
    // Progress only ever moves forward, even though the watcher raced
    // the atomic snapshot replacement the whole way.
    for pair in seen.windows(2) {
        assert!(
            pair[1].done >= pair[0].done,
            "done went backwards: {} then {}",
            pair[0].done,
            pair[1].done
        );
        assert_eq!(pair[1].total, pair[0].total);
    }
    // The terminal snapshot agrees with the report, field for field.
    let last = seen.last().unwrap();
    assert_eq!(last.state, "complete");
    assert_eq!(last.label, "campaign", "un-journaled campaigns use the default label");
    assert_eq!(last.total, faults.len() as u64);
    assert_eq!(last.done, faults.len() as u64);
    assert_eq!(last.detected, report.detected_count() as u64);
    assert_eq!(
        last.detected + last.undetected + last.failed,
        faults.len() as u64
    );
    assert_eq!(last.eta_ms, Some(0.0), "nothing remains at completion");
    assert!(last.faults_per_sec > 0.0, "throughput must be nonzero: {last:?}");
    assert_eq!(last.workers.len(), 2);
    // The heartbeat sidecar recorded the per-lane claim/done stream.
    let beats = obs::journal::read_journal(&dir.join(status::HEARTBEAT_FILE)).unwrap();
    let events: Vec<&str> = beats
        .records
        .iter()
        .filter_map(|r| r.get("event").and_then(obs::json::JsonValue::as_str))
        .collect();
    assert!(events.contains(&"claim") && events.contains(&"done"), "{events:?}");
    assert_eq!(events.first(), Some(&"armed"));
    assert_eq!(events.last(), Some(&"complete"));
}

#[test]
fn hung_workers_are_flagged_stalled_while_the_fault_is_in_flight() {
    let (nl, faults) = rc_fixture();
    let faults = &faults[..2];
    let dir = temp_dir("stall");
    // A 5 ms wall budget puts the stall threshold at 4 × 5 ms = 20 ms;
    // an extraction sleeping 400 ms is unmistakably hung by then.
    let config = CampaignConfig::new(0.5)
        .workers(1)
        .budget(SolveBudget::unlimited().wall(Duration::from_millis(5)))
        .telemetry(TelemetryConfig::new(&dir).interval(Duration::from_millis(5)));
    std::thread::scope(|scope| {
        let campaign = scope.spawn(|| {
            run_campaign_with(&nl, faults, &config, |n, settings| {
                std::thread::sleep(Duration::from_millis(400));
                transient_extract(n, settings)
            })
        });
        let seen = poll_status(&dir, Duration::from_secs(30), |s| {
            s.workers.iter().any(|w| w.stalled)
        });
        let stalled = seen
            .last()
            .filter(|s| s.workers.iter().any(|w| w.stalled))
            .unwrap_or_else(|| panic!("no snapshot ever flagged a stall: {seen:?}"));
        let lane = stalled.workers.iter().find(|w| w.stalled).unwrap();
        assert!(lane.fault.is_some(), "a stalled lane has a fault in flight");
        assert!(
            lane.heartbeat_age_ms > stalled.stall_after_ms.unwrap(),
            "{lane:?} vs {:?}",
            stalled.stall_after_ms
        );
        // The campaign itself still finishes; the flag is advisory.
        campaign.join().unwrap().unwrap();
    });
    let last = status::read_status(&dir.join(status::STATUS_FILE))
        .unwrap()
        .unwrap();
    assert_eq!(last.state, "complete");
}

#[test]
fn canonical_reports_are_byte_identical_with_telemetry_armed() {
    let (nl, faults) = rc_fixture();
    let config = CampaignConfig::new(0.5).workers(2);
    let bare = run_campaign_with(&nl, &faults, &config, transient_extract).unwrap();

    let dir = temp_dir("quarantine");
    let armed_config = config
        .clone()
        .telemetry(TelemetryConfig::new(&dir).interval(Duration::from_millis(1)));
    let armed = run_campaign_with(&nl, &faults, &armed_config, transient_extract).unwrap();

    // Telemetry wrote real sidecars...
    assert!(dir.join(status::STATUS_FILE).is_file());
    assert!(dir.join(status::HEARTBEAT_FILE).is_file());
    // ...and changed nothing the campaign is accountable for.
    assert_eq!(armed.canonical_text(), bare.canonical_text());
}

#[test]
fn heartbeat_chaos_is_counted_in_the_snapshot_and_nowhere_else() {
    let (nl, faults) = rc_fixture();
    let bare = run_campaign_with(&nl, &faults, &CampaignConfig::new(0.5), transient_extract)
        .unwrap();

    let dir = temp_dir("hb-chaos");
    let telemetry = TelemetryConfig::new(&dir)
        .retry(RetryPolicy::none())
        .chaos(FaultPlan::parse("write@0..").unwrap());
    let config = CampaignConfig::new(0.5).telemetry(telemetry);
    let report = run_campaign_with(&nl, &faults, &config, transient_extract).unwrap();

    assert_eq!(report.canonical_text(), bare.canonical_text());
    let last = status::read_status(&dir.join(status::STATUS_FILE))
        .unwrap()
        .unwrap();
    assert_eq!(last.state, "complete");
    let drops = last
        .counters
        .iter()
        .find(|(name, _)| name == "heartbeat_drops")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(drops > 0, "every heartbeat write was chaos-failed: {last:?}");
}

#[test]
fn resumed_campaigns_seed_the_replayed_rollup() {
    let (nl, faults) = rc_fixture();
    let dir = temp_dir("resume");
    let journal = dir.join("campaign.jsonl");
    let first = run_campaign_with(
        &nl,
        &faults,
        &CampaignConfig::new(0.5).journal(JournalConfig::fresh(&journal, "rc")),
        transient_extract,
    )
    .unwrap();

    let config = CampaignConfig::new(0.5)
        .journal(JournalConfig::resume(&journal, "rc"))
        .telemetry(TelemetryConfig::new(&dir));
    let resumed = run_campaign_resumed(&nl, &faults, &config, transient_extract).unwrap();
    assert_eq!(resumed.canonical_text(), first.canonical_text());

    let last = status::read_status(&dir.join(status::STATUS_FILE))
        .unwrap()
        .unwrap();
    assert_eq!(last.state, "complete");
    assert_eq!(last.label, "rc");
    assert_eq!(last.journal.as_deref(), Some(journal.to_str().unwrap()));
    // Every fault came back from the journal: done == replayed, and the
    // outcome split matches the report without simulating anything.
    assert_eq!(last.done, faults.len() as u64);
    assert_eq!(last.replayed, faults.len() as u64);
    assert_eq!(last.detected, resumed.detected_count() as u64);
}
