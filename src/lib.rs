//! `mixsig` — facade crate for the on-chip mixed-signal testing workspace.
//!
//! Re-exports every crate in the workspace so examples and integration
//! tests can use a single dependency. See the individual crates for the
//! real APIs:
//!
//! * [`anasim`] — SPICE-class analogue circuit simulator,
//! * [`linsys`] — linear systems toolbox (transfer functions, state space),
//! * [`sigproc`] — signal processing (PRBS, FFT, correlation, measures),
//! * [`digisim`] — event-driven digital logic simulator,
//! * [`macrolib`] — 5 µm CMOS analogue macro library,
//! * [`faultsim`] — fault models and campaigns,
//! * [`obs`] — instrumentation: counters, spans, histograms, run reports,
//! * [`msbist`] — the paper's contribution: ADC BIST and transient-response
//!   testing.

pub use anasim;
pub use digisim;
pub use faultsim;
pub use linsys;
pub use macrolib;
pub use msbist;
pub use obs;
pub use sigproc;
